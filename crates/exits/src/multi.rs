//! Joint training of a full exit *placement* — the paper's actual training
//! procedure (§IV-B.2): all candidate exit heads train **simultaneously**
//! against a frozen backbone with the hybrid loss of eq. (4), each head
//! combining its own cross-entropy with distillation from the final
//! classifier.

use crate::{ExitError, ExitHead, ExitPlacement, FeatureSimulator, TrainReport};
use hadas_dataset::DifficultyDistribution;
use hadas_nn::{accuracy, hybrid_exit_loss, Sgd};
use hadas_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A multi-exit training setup: one [`FeatureSimulator`] and one
/// [`ExitHead`] per exit position of a placement, trained jointly.
#[derive(Debug)]
pub struct MultiExitTrainer {
    classes: usize,
    difficulty: DifficultyDistribution,
    final_capability: f64,
    capabilities: Vec<f64>,
    simulators: Vec<FeatureSimulator>,
    heads: Vec<ExitHead>,
    kd_temp: f32,
    lr: f32,
}

/// Per-exit outcome of a joint training run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiExitReport {
    /// One report per exit, in placement order.
    pub per_exit: Vec<TrainReport>,
    /// Mean hybrid loss over the final epoch (all exits combined).
    pub final_loss: f32,
}

impl MultiExitTrainer {
    /// Builds heads and feature simulators for every position of
    /// `placement`, where `capabilities[i]` is the capability of the
    /// backbone prefix feeding exit `i` (from the accuracy surrogate).
    ///
    /// # Errors
    ///
    /// Returns [`ExitError::InvalidPlacement`] if capability count and
    /// placement length disagree, or propagates head-construction errors.
    pub fn new(
        placement: &ExitPlacement,
        capabilities: Vec<f64>,
        classes: usize,
        difficulty: DifficultyDistribution,
        final_capability: f64,
        seed: u64,
    ) -> Result<Self, ExitError> {
        if capabilities.len() != placement.len() {
            return Err(ExitError::InvalidPlacement(format!(
                "{} capabilities for {} exits",
                capabilities.len(),
                placement.len()
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let channels = 12usize;
        let size = 5usize;
        let mut simulators = Vec::with_capacity(placement.len());
        let mut heads = Vec::with_capacity(placement.len());
        for (k, &cap) in capabilities.iter().enumerate() {
            simulators.push(FeatureSimulator::new(
                seed ^ (k as u64 + 1),
                classes,
                channels,
                size,
                cap,
            ));
            heads.push(ExitHead::new(&mut rng, channels, size, classes)?);
        }
        Ok(MultiExitTrainer {
            classes,
            difficulty,
            final_capability: final_capability.clamp(0.0, 1.0),
            capabilities,
            simulators,
            heads,
            kd_temp: 4.0,
            lr: 0.05,
        })
    }

    /// Number of exits being trained.
    pub fn num_exits(&self) -> usize {
        self.heads.len()
    }

    /// The trained heads (after [`MultiExitTrainer::train`]).
    pub fn heads(&self) -> &[ExitHead] {
        &self.heads
    }

    fn teacher_logits<R: Rng>(
        &self,
        rng: &mut R,
        samples: &[(usize, f64)],
    ) -> Result<Tensor, ExitError> {
        let mut data = vec![0.0f32; samples.len() * self.classes];
        for (i, &(label, d)) in samples.iter().enumerate() {
            let winner = if d <= self.final_capability {
                label
            } else {
                let w = rng.gen_range(0..self.classes.max(2) - 1);
                if w >= label {
                    w + 1
                } else {
                    w
                }
            };
            data[i * self.classes + winner] = 6.0;
        }
        Tensor::from_vec(data, &[samples.len(), self.classes])
            .map_err(|e| ExitError::Nn(hadas_nn::NnError::Tensor(e)))
    }

    /// Trains every head jointly for `epochs` × `batches` steps of batch
    /// size `batch`, per eq. (4): each batch's hybrid loss sums NLL and KD
    /// terms across **all** exits before the optimizers step.
    ///
    /// # Errors
    ///
    /// Propagates NN framework errors.
    pub fn train(
        &mut self,
        epochs: usize,
        batches: usize,
        batch: usize,
        seed: u64,
    ) -> Result<MultiExitReport, ExitError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opts: Vec<Sgd> = self.heads.iter().map(|_| Sgd::new(self.lr, 0.9, 1e-4)).collect();
        let mut last_epoch_loss = 0.0f32;
        let mut steps = 0usize;
        for head in &mut self.heads {
            head.set_training(true);
        }
        for _epoch in 0..epochs {
            let mut epoch_loss = 0.0f32;
            for _b in 0..batches {
                let samples: Vec<(usize, f64)> = (0..batch)
                    .map(|_| (rng.gen_range(0..self.classes), self.difficulty.sample(&mut rng)))
                    .collect();
                let teacher = self.teacher_logits(&mut rng, &samples)?;
                // Forward every exit on its own prefix features.
                let mut all_logits = Vec::with_capacity(self.heads.len());
                let mut all_feats = Vec::with_capacity(self.heads.len());
                for (head, sim) in self.heads.iter_mut().zip(&self.simulators) {
                    let (feats, _) = sim.batch(&mut rng, &samples)?;
                    all_logits.push(head.forward(&feats)?);
                    all_feats.push(feats);
                }
                let labels: Vec<usize> = samples.iter().map(|&(l, _)| l).collect();
                let (loss, grads) = hybrid_exit_loss(&all_logits, &teacher, &labels, self.kd_temp)?;
                for ((head, grad), opt) in self.heads.iter_mut().zip(&grads).zip(&mut opts) {
                    head.net_mut().zero_grad();
                    head.backward(grad)?;
                    opt.step(head.net_mut().params_mut());
                }
                epoch_loss += loss;
                steps += 1;
            }
            last_epoch_loss = epoch_loss / batches as f32;
        }

        // Held-out evaluation per exit.
        let mut per_exit = Vec::with_capacity(self.heads.len());
        for (head, sim) in self.heads.iter_mut().zip(&self.simulators) {
            head.set_training(false);
            let samples: Vec<(usize, f64)> = (0..batch * 4)
                .map(|_| (rng.gen_range(0..self.classes), self.difficulty.sample(&mut rng)))
                .collect();
            let (feats, labels) = sim.batch(&mut rng, &samples)?;
            let logits = head.forward(&feats)?;
            per_exit.push(TrainReport {
                final_loss: last_epoch_loss,
                test_accuracy: accuracy(&logits, &labels)?,
                steps,
            });
            head.set_training(true);
        }
        Ok(MultiExitReport { per_exit, final_loss: last_epoch_loss })
    }

    /// The capability each exit's features were generated with.
    pub fn capabilities(&self) -> &[f64] {
        &self.capabilities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement() -> ExitPlacement {
        ExitPlacement::new(vec![6, 12, 20], 20).expect("valid placement")
    }

    #[test]
    fn joint_training_improves_all_exits() {
        let mut trainer = MultiExitTrainer::new(
            &placement(),
            vec![0.35, 0.6, 0.9],
            6,
            DifficultyDistribution::default(),
            0.9,
            4,
        )
        .expect("valid setup");
        let report = trainer.train(4, 10, 16, 9).expect("training runs");
        assert_eq!(report.per_exit.len(), 3);
        // Every exit must decisively beat 1/6 chance.
        for (k, r) in report.per_exit.iter().enumerate() {
            assert!(r.test_accuracy > 0.35, "exit {k} accuracy {}", r.test_accuracy);
        }
        // Deeper exits see cleaner features and should rank accordingly.
        assert!(
            report.per_exit[2].test_accuracy > report.per_exit[0].test_accuracy,
            "{:?}",
            report.per_exit
        );
    }

    #[test]
    fn capability_count_is_validated() {
        let err = MultiExitTrainer::new(
            &placement(),
            vec![0.5],
            6,
            DifficultyDistribution::default(),
            0.9,
            0,
        )
        .unwrap_err();
        assert!(matches!(err, ExitError::InvalidPlacement(_)));
    }

    #[test]
    fn joint_training_is_deterministic() {
        let run = |seed| {
            let mut t = MultiExitTrainer::new(
                &placement(),
                vec![0.4, 0.7, 0.9],
                5,
                DifficultyDistribution::default(),
                0.85,
                seed,
            )
            .expect("valid setup");
            t.train(2, 6, 12, seed + 1).expect("training runs")
        };
        assert_eq!(run(11), run(11));
    }
}
