use crate::{ExitError, MIN_EXIT_POSITION};
use rand::Rng;

/// A validated set of early-exit positions over a backbone with a known
/// number of MBConv layers.
///
/// Positions are 1-based layer indices, strictly increasing, each in
/// `[MIN_EXIT_POSITION, total_layers]`, and the exit *count* respects the
/// paper's Table II bound `nX ∈ [1, Σlᵢ − 5]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExitPlacement {
    positions: Vec<usize>,
    total_layers: usize,
}

impl ExitPlacement {
    /// Validates and wraps a set of positions for a backbone with
    /// `total_layers` MBConv layers.
    ///
    /// # Errors
    ///
    /// Returns [`ExitError::InvalidPlacement`] if positions are empty,
    /// unsorted, duplicated, out of range, or too numerous.
    pub fn new(positions: Vec<usize>, total_layers: usize) -> Result<Self, ExitError> {
        if positions.is_empty() {
            return Err(ExitError::InvalidPlacement("at least one exit required".into()));
        }
        let max_count = total_layers.saturating_sub(MIN_EXIT_POSITION);
        if positions.len() > max_count {
            return Err(ExitError::InvalidPlacement(format!(
                "{} exits exceed the nX bound of {max_count}",
                positions.len()
            )));
        }
        for w in positions.windows(2) {
            if w[1] <= w[0] {
                return Err(ExitError::InvalidPlacement(format!(
                    "positions must be strictly increasing, got {} then {}",
                    w[0], w[1]
                )));
            }
        }
        for &p in &positions {
            if p < MIN_EXIT_POSITION || p > total_layers {
                return Err(ExitError::InvalidPlacement(format!(
                    "position {p} outside [{MIN_EXIT_POSITION}, {total_layers}]"
                )));
            }
        }
        Ok(ExitPlacement { positions, total_layers })
    }

    /// Builds a placement from the paper's indicator encoding
    /// `[I_1 … I_{M−1}]`, where index `k` corresponds to candidate
    /// position `MIN_EXIT_POSITION + k`.
    ///
    /// # Errors
    ///
    /// Returns [`ExitError::InvalidPlacement`] if no indicator is set or
    /// the indicator length disagrees with `total_layers`.
    pub fn from_indicators(indicators: &[bool], total_layers: usize) -> Result<Self, ExitError> {
        let expected = Self::candidate_count(total_layers);
        if indicators.len() != expected {
            return Err(ExitError::InvalidPlacement(format!(
                "expected {expected} indicators for {total_layers} layers, got {}",
                indicators.len()
            )));
        }
        let positions: Vec<usize> = indicators
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(k, _)| MIN_EXIT_POSITION + k)
            .collect();
        Self::new(positions, total_layers)
    }

    /// Number of candidate exit positions for a backbone with
    /// `total_layers` MBConv layers (positions `5..=total_layers`).
    pub fn candidate_count(total_layers: usize) -> usize {
        total_layers.saturating_sub(MIN_EXIT_POSITION - 1)
    }

    /// All candidate positions for a backbone of `total_layers` layers.
    pub fn candidates(total_layers: usize) -> Vec<usize> {
        (MIN_EXIT_POSITION..=total_layers).collect()
    }

    /// Draws a random valid placement (each candidate kept with
    /// probability `density`, with a fallback single exit if none stick).
    pub fn sample<R: Rng>(rng: &mut R, total_layers: usize, density: f64) -> Self {
        let max_count = total_layers.saturating_sub(MIN_EXIT_POSITION);
        let mut positions: Vec<usize> = Self::candidates(total_layers)
            .into_iter()
            .filter(|_| rng.gen_bool(density.clamp(0.0, 1.0)))
            .collect();
        while positions.len() > max_count {
            let idx = rng.gen_range(0..positions.len());
            positions.remove(idx);
        }
        if positions.is_empty() {
            let p = rng.gen_range(MIN_EXIT_POSITION..=total_layers);
            positions.push(p);
        }
        ExitPlacement { positions, total_layers }
    }

    /// The exit positions, ascending and 1-based.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The backbone's MBConv layer count this placement was validated for.
    pub fn total_layers(&self) -> usize {
        self.total_layers
    }

    /// Number of exits.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the placement is empty (never true for a validated value).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The indicator encoding `[I_1 … I_{M−1}]` over candidate positions.
    pub fn to_indicators(&self) -> Vec<bool> {
        let mut out = vec![false; Self::candidate_count(self.total_layers)];
        for &p in &self.positions {
            out[p - MIN_EXIT_POSITION] = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_empty_and_out_of_range() {
        assert!(ExitPlacement::new(vec![], 20).is_err());
        assert!(ExitPlacement::new(vec![4], 20).is_err());
        assert!(ExitPlacement::new(vec![21], 20).is_err());
    }

    #[test]
    fn rejects_unsorted_or_duplicate() {
        assert!(ExitPlacement::new(vec![9, 7], 20).is_err());
        assert!(ExitPlacement::new(vec![7, 7], 20).is_err());
    }

    #[test]
    fn count_bound_matches_table_ii() {
        // nX ≤ Σl − 5: for 20 layers, at most 15 exits.
        let too_many: Vec<usize> = (5..=20).collect(); // 16 positions
        assert!(ExitPlacement::new(too_many, 20).is_err());
        let ok: Vec<usize> = (5..20).collect(); // 15 positions
        assert!(ExitPlacement::new(ok, 20).is_ok());
    }

    #[test]
    fn indicator_round_trip() {
        let p = ExitPlacement::new(vec![5, 8, 20], 20).unwrap();
        let ind = p.to_indicators();
        assert_eq!(ind.len(), 16);
        let q = ExitPlacement::from_indicators(&ind, 20).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn from_indicators_rejects_all_false() {
        let ind = vec![false; 16];
        assert!(ExitPlacement::from_indicators(&ind, 20).is_err());
    }

    #[test]
    fn sampled_placements_are_valid() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let p = ExitPlacement::sample(&mut rng, 24, 0.3);
            assert!(ExitPlacement::new(p.positions().to_vec(), 24).is_ok());
        }
    }

    #[test]
    fn sample_with_zero_density_still_yields_one_exit() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ExitPlacement::sample(&mut rng, 18, 0.0);
        assert_eq!(p.len(), 1);
    }
}
