use std::error::Error;
use std::fmt;

/// Errors produced by exit placement and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExitError {
    /// A placement violated the paper's position rules.
    InvalidPlacement(String),
    /// The NN framework failed during exit-head training.
    Nn(hadas_nn::NnError),
    /// Dataset access failed during training.
    Dataset(hadas_dataset::DatasetError),
}

impl fmt::Display for ExitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitError::InvalidPlacement(msg) => write!(f, "invalid exit placement: {msg}"),
            ExitError::Nn(e) => write!(f, "exit head training failed: {e}"),
            ExitError::Dataset(e) => write!(f, "dataset access failed: {e}"),
        }
    }
}

impl Error for ExitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExitError::Nn(e) => Some(e),
            ExitError::Dataset(e) => Some(e),
            ExitError::InvalidPlacement(_) => None,
        }
    }
}

impl From<hadas_nn::NnError> for ExitError {
    fn from(e: hadas_nn::NnError) -> Self {
        ExitError::Nn(e)
    }
}

impl From<hadas_dataset::DatasetError> for ExitError {
    fn from(e: hadas_dataset::DatasetError) -> Self {
        ExitError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain() {
        let e = ExitError::from(hadas_nn::NnError::LabelMismatch { batch: 1, labels: 2 });
        assert!(e.source().is_some());
    }
}
