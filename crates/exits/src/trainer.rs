use crate::{ExitError, ExitHead, FeatureSimulator};
use hadas_dataset::DifficultyDistribution;
use hadas_nn::{accuracy, hybrid_exit_loss, Sgd};
use hadas_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Outcome of one exit-head training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Mean hybrid loss over the final epoch.
    pub final_loss: f32,
    /// Top-1 accuracy on the held-out feature batch.
    pub test_accuracy: f32,
    /// Number of optimizer steps taken.
    pub steps: usize,
}

/// Trains exit heads against a frozen-backbone feature simulator with the
/// paper's hybrid loss (eq. (4)): per-exit negative log-likelihood plus
/// knowledge distillation against the final classifier's logits.
///
/// The backbone is frozen by construction — only the [`ExitHead`]'s
/// parameters receive gradients, mirroring the paper's choice to protect
/// the backbone's static accuracy.
#[derive(Debug, Clone)]
pub struct ExitTrainer {
    classes: usize,
    difficulty: DifficultyDistribution,
    final_capability: f64,
    kd_temp: f32,
    lr: f32,
    epochs: usize,
    batch_size: usize,
    train_batches: usize,
}

impl ExitTrainer {
    /// Creates a trainer over `classes` classes where the backbone's final
    /// classifier has capability `final_capability` (the difficulty below
    /// which it is correct).
    pub fn new(classes: usize, difficulty: DifficultyDistribution, final_capability: f64) -> Self {
        ExitTrainer {
            classes,
            difficulty,
            final_capability: final_capability.clamp(0.0, 1.0),
            kd_temp: 4.0,
            lr: 0.05,
            epochs: 3,
            batch_size: 16,
            train_batches: 12,
        }
    }

    /// Overrides the training schedule (epochs, batches per epoch, batch
    /// size) — tests use tiny schedules.
    pub fn with_schedule(mut self, epochs: usize, train_batches: usize, batch_size: usize) -> Self {
        self.epochs = epochs;
        self.train_batches = train_batches;
        self.batch_size = batch_size;
        self
    }

    fn draw_samples<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<(usize, f64)> {
        (0..n).map(|_| (rng.gen_range(0..self.classes), self.difficulty.sample(rng))).collect()
    }

    /// Simulated final-classifier logits for a sample: confidently correct
    /// below the final capability, confidently *wrong* above it (the
    /// teacher also fails on the hardest inputs).
    fn teacher_logits<R: Rng>(&self, rng: &mut R, samples: &[(usize, f64)]) -> Tensor {
        let mut data = vec![0.0f32; samples.len() * self.classes];
        for (i, &(label, d)) in samples.iter().enumerate() {
            let winner = if d <= self.final_capability {
                label
            } else {
                // A wrong class, chosen reproducibly from the row RNG.
                let w = rng.gen_range(0..self.classes.max(2) - 1);
                if w >= label {
                    w + 1
                } else {
                    w
                }
            };
            for c in 0..self.classes {
                data[i * self.classes + c] = if c == winner { 6.0 } else { 0.0 };
            }
        }
        Tensor::from_vec(data, &[samples.len(), self.classes])
            .expect("teacher logits are shape-consistent")
    }

    /// Trains `head` against features from `sim`, returning the report.
    ///
    /// # Errors
    ///
    /// Propagates NN framework errors (shape mismatches are construction
    /// bugs surfaced early).
    pub fn train(
        &self,
        head: &mut ExitHead,
        sim: &FeatureSimulator,
        seed: u64,
    ) -> Result<TrainReport, ExitError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Sgd::new(self.lr, 0.9, 1e-4);
        let mut steps = 0usize;
        let mut last_epoch_loss = 0.0f32;
        head.set_training(true);
        for _epoch in 0..self.epochs {
            let mut epoch_loss = 0.0f32;
            for _b in 0..self.train_batches {
                let samples = self.draw_samples(&mut rng, self.batch_size);
                let (feats, labels) = sim.batch(&mut rng, &samples);
                let teacher = self.teacher_logits(&mut rng, &samples);
                let logits = head.forward(&feats)?;
                let (loss, grads) = hybrid_exit_loss(&[logits], &teacher, &labels, self.kd_temp)?;
                head.net_mut().zero_grad();
                head.backward(&grads[0])?;
                opt.step(head.net_mut().params_mut());
                epoch_loss += loss;
                steps += 1;
            }
            last_epoch_loss = epoch_loss / self.train_batches as f32;
        }
        // Held-out evaluation.
        head.set_training(false);
        let samples = self.draw_samples(&mut rng, self.batch_size * 4);
        let (feats, labels) = sim.batch(&mut rng, &samples);
        let logits = head.forward(&feats)?;
        let test_accuracy = accuracy(&logits, &labels)?;
        head.set_training(true);
        Ok(TrainReport { final_loss: last_epoch_loss, test_accuracy, steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_train(capability: f64, seed: u64) -> TrainReport {
        let classes = 6;
        let sim = FeatureSimulator::new(seed, classes, 8, 4, capability);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let mut head = ExitHead::new(&mut rng, 8, 4, classes).unwrap();
        let trainer = ExitTrainer::new(classes, DifficultyDistribution::default(), 0.85)
            .with_schedule(4, 10, 16);
        trainer.train(&mut head, &sim, seed + 2).unwrap()
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let report = quick_train(0.7, 10);
        // Chance on 6 classes is ~16.7%; a capable prefix should do far better.
        assert!(
            report.test_accuracy > 0.4,
            "accuracy {} should beat chance decisively",
            report.test_accuracy
        );
        assert!(report.steps == 40);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn deeper_prefix_trains_better_exits() {
        let shallow = quick_train(0.25, 20);
        let deep = quick_train(0.9, 20);
        assert!(
            deep.test_accuracy > shallow.test_accuracy + 0.1,
            "deep {} vs shallow {}",
            deep.test_accuracy,
            shallow.test_accuracy
        );
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let a = quick_train(0.6, 30);
        let b = quick_train(0.6, 30);
        assert_eq!(a, b);
    }
}
