use crate::{ExitError, ExitHead, FeatureSimulator};
use hadas_dataset::DifficultyDistribution;
use hadas_nn::{
    accuracy, hybrid_exit_loss, GuardConfig, NnError, Sgd, TrainCheckpoint, TrainGuard,
    TrainTelemetry,
};
use hadas_tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

/// Outcome of one exit-head training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Mean hybrid loss over the final epoch.
    pub final_loss: f32,
    /// Top-1 accuracy on the held-out feature batch.
    pub test_accuracy: f32,
    /// Number of optimizer steps taken.
    pub steps: usize,
}

/// Trains exit heads against a frozen-backbone feature simulator with the
/// paper's hybrid loss (eq. (4)): per-exit negative log-likelihood plus
/// knowledge distillation against the final classifier's logits.
///
/// The backbone is frozen by construction — only the [`ExitHead`]'s
/// parameters receive gradients, mirroring the paper's choice to protect
/// the backbone's static accuracy.
#[derive(Debug, Clone)]
pub struct ExitTrainer {
    classes: usize,
    difficulty: DifficultyDistribution,
    final_capability: f64,
    kd_temp: f32,
    lr: f32,
    epochs: usize,
    batch_size: usize,
    train_batches: usize,
}

impl ExitTrainer {
    /// Creates a trainer over `classes` classes where the backbone's final
    /// classifier has capability `final_capability` (the difficulty below
    /// which it is correct).
    pub fn new(classes: usize, difficulty: DifficultyDistribution, final_capability: f64) -> Self {
        ExitTrainer {
            classes,
            difficulty,
            final_capability: final_capability.clamp(0.0, 1.0),
            kd_temp: 4.0,
            lr: 0.05,
            epochs: 3,
            batch_size: 16,
            train_batches: 12,
        }
    }

    /// Overrides the training schedule (epochs, batches per epoch, batch
    /// size) — tests use tiny schedules.
    pub fn with_schedule(mut self, epochs: usize, train_batches: usize, batch_size: usize) -> Self {
        self.epochs = epochs;
        self.train_batches = train_batches;
        self.batch_size = batch_size;
        self
    }

    fn draw_samples<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<(usize, f64)> {
        (0..n).map(|_| (rng.gen_range(0..self.classes), self.difficulty.sample(rng))).collect()
    }

    /// Simulated final-classifier logits for a sample: confidently correct
    /// below the final capability, confidently *wrong* above it (the
    /// teacher also fails on the hardest inputs).
    fn teacher_logits<R: Rng>(
        &self,
        rng: &mut R,
        samples: &[(usize, f64)],
    ) -> Result<Tensor, ExitError> {
        let mut data = vec![0.0f32; samples.len() * self.classes];
        for (i, &(label, d)) in samples.iter().enumerate() {
            let winner = if d <= self.final_capability {
                label
            } else {
                // A wrong class, chosen reproducibly from the row RNG.
                let w = rng.gen_range(0..self.classes.max(2) - 1);
                if w >= label {
                    w + 1
                } else {
                    w
                }
            };
            for c in 0..self.classes {
                data[i * self.classes + c] = if c == winner { 6.0 } else { 0.0 };
            }
        }
        Tensor::from_vec(data, &[samples.len(), self.classes])
            .map_err(|e| ExitError::Nn(NnError::Tensor(e)))
    }

    /// Trains `head` against features from `sim`, returning the report.
    ///
    /// Equivalent to [`ExitTrainer::train_with`] under monitor-only
    /// defaults — bit-identical to the historical unguarded loop on
    /// healthy training.
    ///
    /// # Errors
    ///
    /// Propagates NN framework errors (shape mismatches are construction
    /// bugs surfaced early).
    pub fn train(
        &self,
        head: &mut ExitHead,
        sim: &FeatureSimulator,
        seed: u64,
    ) -> Result<TrainReport, ExitError> {
        self.train_with(head, sim, seed, &ExitTrainOptions::default()).map(|(r, _)| r)
    }

    /// Fingerprint of everything shaping the exit-head trajectory:
    /// trainer schedule and loss parameters, simulator, seed, guard
    /// thresholds, and rollback policy. Checkpoints from a different
    /// fingerprint are refused on resume.
    fn fingerprint(&self, sim: &FeatureSimulator, seed: u64, opts: &ExitTrainOptions) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{self:?}").hash(&mut h);
        format!("{sim:?}").hash(&mut h);
        seed.hash(&mut h);
        format!("{:?}", opts.guard).hash(&mut h);
        opts.max_rollbacks.hash(&mut h);
        opts.lr_backoff.to_bits().hash(&mut h);
        h.finish()
    }

    /// Divergence-guarded exit-head training: a [`TrainGuard`] checks
    /// every hybrid loss and gradient, epoch boundaries snapshot the
    /// resumable state (head params, SGD velocity, RNG stream, learning
    /// rate — to disk when `opts.checkpoint` is set), and a tripped
    /// guard rolls back to the last good epoch with the learning rate
    /// backed off, up to `opts.max_rollbacks` times.
    ///
    /// Kill/resume contract: a run stopped at epoch `k` via
    /// `opts.stop_after_epochs` and resumed with `opts.resume` produces
    /// a **byte-identical** [`TrainReport`] to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Propagates NN and checkpoint errors; returns
    /// [`ExitError::Nn`] wrapping [`NnError::Numeric`] once the
    /// rollback budget is exhausted.
    pub fn train_with(
        &self,
        head: &mut ExitHead,
        sim: &FeatureSimulator,
        seed: u64,
        opts: &ExitTrainOptions,
    ) -> Result<(TrainReport, TrainTelemetry), ExitError> {
        let mut telemetry = TrainTelemetry::default();
        let fingerprint = self.fingerprint(sim, seed, opts);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Sgd::new(self.lr, 0.9, 1e-4);
        let mut guard = TrainGuard::new(opts.guard.clone());
        let mut steps = 0usize;
        let mut epoch = 0usize;
        let mut rollbacks = 0u32;
        let mut last_epoch_loss = 0.0f32;
        head.set_training(true);

        if opts.resume {
            if let Some(path) = &opts.checkpoint {
                if path.exists() {
                    let ckpt = TrainCheckpoint::load(path)?;
                    ckpt.validate_against(fingerprint)?;
                    let mut params = head.net_mut().params_mut();
                    ckpt.restore(&mut params, &mut opt)?;
                    drop(params);
                    head.net_mut().load_state_buffers(&ckpt.buffers)?;
                    rng = StdRng::from_state(ckpt.rng_state);
                    epoch = ckpt.epoch;
                    steps = ckpt.steps;
                    rollbacks = ckpt.rollbacks;
                    telemetry.resumed_from_epoch = Some(ckpt.epoch);
                }
            }
        }

        let mut last_good = {
            let buffers = head.net_mut().state_buffers();
            let params = head.net_mut().params_mut();
            TrainCheckpoint::capture(
                fingerprint,
                epoch,
                steps,
                rollbacks,
                rng.state(),
                &params,
                &opt,
            )
            .with_buffers(buffers)
        };

        'training: while epoch < self.epochs {
            let mut epoch_loss = 0.0f32;
            for _b in 0..self.train_batches {
                let samples = self.draw_samples(&mut rng, self.batch_size);
                let (feats, labels) = sim.batch(&mut rng, &samples)?;
                let teacher = self.teacher_logits(&mut rng, &samples)?;
                let logits = head.forward(&feats)?;
                let (loss, grads) = hybrid_exit_loss(&[logits], &teacher, &labels, self.kd_temp)?;
                head.net_mut().zero_grad();
                head.backward(&grads[0])?;
                let guarded = guard.observe_loss(loss).and_then(|()| {
                    let mut params = head.net_mut().params_mut();
                    guard.clip_gradients(&mut params).map(|_| ())
                });
                if let Err(anomaly) = guarded {
                    telemetry.anomalies.push(anomaly.to_string());
                    if rollbacks >= opts.max_rollbacks {
                        return Err(ExitError::Nn(NnError::Numeric(anomaly)));
                    }
                    rollbacks += 1;
                    telemetry.rollbacks = rollbacks;
                    let mut params = head.net_mut().params_mut();
                    last_good.restore(&mut params, &mut opt)?;
                    drop(params);
                    head.net_mut().load_state_buffers(&last_good.buffers)?;
                    let new_lr = (opt.lr() / opts.lr_backoff).max(1e-6);
                    opt.set_lr(new_lr);
                    rng = StdRng::from_state(last_good.rng_state);
                    epoch = last_good.epoch;
                    steps = last_good.steps;
                    guard.reset_window();
                    last_good.lr = new_lr;
                    last_good.rollbacks = rollbacks;
                    continue 'training;
                }
                opt.step(head.net_mut().params_mut());
                epoch_loss += loss;
                steps += 1;
            }
            last_epoch_loss = epoch_loss / self.train_batches as f32;
            epoch += 1;
            last_good = {
                let buffers = head.net_mut().state_buffers();
                let params = head.net_mut().params_mut();
                TrainCheckpoint::capture(
                    fingerprint,
                    epoch,
                    steps,
                    rollbacks,
                    rng.state(),
                    &params,
                    &opt,
                )
                .with_buffers(buffers)
            };
            if let Some(path) = &opts.checkpoint {
                last_good.write(path)?;
                telemetry.checkpoints_written += 1;
            }
            if let Some(stop) = opts.stop_after_epochs {
                if epoch >= stop && epoch < self.epochs {
                    telemetry.interrupted = true;
                    break 'training;
                }
            }
        }
        telemetry.clipped_steps = guard.clipped_steps();
        // Held-out evaluation.
        head.set_training(false);
        let samples = self.draw_samples(&mut rng, self.batch_size * 4);
        let (feats, labels) = sim.batch(&mut rng, &samples)?;
        let logits = head.forward(&feats)?;
        let test_accuracy = accuracy(&logits, &labels)?;
        head.set_training(true);
        Ok((TrainReport { final_loss: last_epoch_loss, test_accuracy, steps }, telemetry))
    }
}

/// Options for divergence-guarded exit-head training
/// ([`ExitTrainer::train_with`]). The defaults are monitor-only and
/// bit-identical to the historical unguarded loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ExitTrainOptions {
    /// Numeric-guard thresholds.
    pub guard: GuardConfig,
    /// Epoch-boundary checkpoint file, if any.
    pub checkpoint: Option<PathBuf>,
    /// Resume from `checkpoint` when it exists.
    pub resume: bool,
    /// Stop gracefully after this many completed epochs (chaos kill
    /// point); the final checkpoint is written first.
    pub stop_after_epochs: Option<usize>,
    /// Divergence rollbacks allowed before the run fails.
    pub max_rollbacks: u32,
    /// Factor the learning rate is divided by on each rollback.
    pub lr_backoff: f32,
}

impl Default for ExitTrainOptions {
    fn default() -> Self {
        ExitTrainOptions {
            guard: GuardConfig::monitor_only(),
            checkpoint: None,
            resume: false,
            stop_after_epochs: None,
            max_rollbacks: 3,
            lr_backoff: 2.0,
        }
    }
}

impl ExitTrainOptions {
    /// Enables epoch-boundary checkpoints at `path`; `resume` restores
    /// from an existing checkpoint first.
    #[must_use]
    pub fn with_checkpoint(mut self, path: PathBuf, resume: bool) -> Self {
        self.checkpoint = Some(path);
        self.resume = resume;
        self
    }

    /// Sets the graceful kill point (chaos harness).
    #[must_use]
    pub fn stop_after(mut self, epochs: usize) -> Self {
        self.stop_after_epochs = Some(epochs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_train(capability: f64, seed: u64) -> TrainReport {
        let classes = 6;
        let sim = FeatureSimulator::new(seed, classes, 8, 4, capability);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let mut head = ExitHead::new(&mut rng, 8, 4, classes).unwrap();
        let trainer = ExitTrainer::new(classes, DifficultyDistribution::default(), 0.85)
            .with_schedule(4, 10, 16);
        trainer.train(&mut head, &sim, seed + 2).unwrap()
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let report = quick_train(0.7, 10);
        // Chance on 6 classes is ~16.7%; a capable prefix should do far better.
        assert!(
            report.test_accuracy > 0.4,
            "accuracy {} should beat chance decisively",
            report.test_accuracy
        );
        assert!(report.steps == 40);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn deeper_prefix_trains_better_exits() {
        let shallow = quick_train(0.25, 20);
        let deep = quick_train(0.9, 20);
        assert!(
            deep.test_accuracy > shallow.test_accuracy + 0.1,
            "deep {} vs shallow {}",
            deep.test_accuracy,
            shallow.test_accuracy
        );
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let a = quick_train(0.6, 30);
        let b = quick_train(0.6, 30);
        assert_eq!(a, b);
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hadas-exit-train-{tag}-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn fixture(seed: u64) -> (ExitTrainer, FeatureSimulator, ExitHead) {
        let classes = 6;
        let sim = FeatureSimulator::new(seed, classes, 8, 4, 0.7);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let head = ExitHead::new(&mut rng, 8, 4, classes).unwrap();
        let trainer = ExitTrainer::new(classes, DifficultyDistribution::default(), 0.85)
            .with_schedule(4, 10, 16);
        (trainer, sim, head)
    }

    #[test]
    fn kill_at_epoch_and_resume_is_byte_identical() {
        let seed = 41;
        let (trainer, sim, mut straight) = fixture(seed);
        let (full, _) = trainer
            .train_with(&mut straight, &sim, seed + 2, &ExitTrainOptions::default())
            .unwrap();

        let path = scratch("kill-resume");
        let (_, _, mut killed) = fixture(seed);
        let opts = ExitTrainOptions::default().with_checkpoint(path.clone(), false).stop_after(2);
        let (_, t1) = trainer.train_with(&mut killed, &sim, seed + 2, &opts).unwrap();
        assert!(t1.interrupted, "kill point should interrupt the run");
        assert_eq!(t1.checkpoints_written, 2);

        // Resume in a *fresh* head — everything must come from the checkpoint.
        let (_, _, mut resumed) = fixture(seed + 7);
        let opts = ExitTrainOptions::default().with_checkpoint(path.clone(), true);
        let (resumed_report, t2) = trainer.train_with(&mut resumed, &sim, seed + 2, &opts).unwrap();
        assert_eq!(t2.resumed_from_epoch, Some(2));
        assert_eq!(resumed_report.final_loss.to_bits(), full.final_loss.to_bits());
        assert_eq!(resumed_report.test_accuracy.to_bits(), full.test_accuracy.to_bits());
        assert_eq!(resumed_report.steps, full.steps);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_refuses_a_mismatched_fingerprint() {
        let seed = 47;
        let path = scratch("fingerprint");
        let (trainer, sim, mut head) = fixture(seed);
        let opts = ExitTrainOptions::default().with_checkpoint(path.clone(), false).stop_after(1);
        trainer.train_with(&mut head, &sim, seed + 2, &opts).unwrap();

        // Different seed ⇒ different trajectory ⇒ refuse the checkpoint.
        let opts = ExitTrainOptions::default().with_checkpoint(path.clone(), true);
        let err = trainer.train_with(&mut head, &sim, seed + 3, &opts);
        assert!(
            matches!(err, Err(ExitError::Nn(NnError::Checkpoint(_)))),
            "expected a checkpoint refusal, got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
