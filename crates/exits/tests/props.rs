//! Property-based tests for exit placements and head costs over random
//! backbones.

use hadas_exits::{exit_head_cost, ExitPlacement, MIN_EXIT_POSITION};
use hadas_space::{Genome, SearchSpace};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn genome_strategy() -> impl Strategy<Value = Genome> {
    SearchSpace::attentive_nas()
        .gene_cardinalities()
        .into_iter()
        .map(|c| (0..c).boxed())
        .collect::<Vec<_>>()
        .prop_map(Genome::from_genes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random placements are always valid and respect the paper's rules.
    #[test]
    fn sampled_placements_are_valid(
        total in 17usize..38,
        density in 0.0f64..0.9,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = ExitPlacement::sample(&mut rng, total, density);
        prop_assert!(!p.is_empty());
        prop_assert!(p.len() <= total - MIN_EXIT_POSITION || p.len() == 1);
        prop_assert!(p.positions().windows(2).all(|w| w[1] > w[0]));
        prop_assert!(p.positions().iter().all(|&x| (MIN_EXIT_POSITION..=total).contains(&x)));
        // Round-trip through indicators.
        let q = ExitPlacement::from_indicators(&p.to_indicators(), total).expect("round-trips");
        prop_assert_eq!(p, q);
    }

    /// Exit-head cost is positive and cheap relative to the backbone, for
    /// every position of every random backbone.
    #[test]
    fn exit_head_cost_is_sane(genome in genome_strategy()) {
        let space = SearchSpace::attentive_nas();
        let net = space.decode(&genome).expect("valid genome");
        let total_flops = net.total_flops();
        for pos in (MIN_EXIT_POSITION..=net.num_mbconv_layers()).step_by(3) {
            let head = exit_head_cost(&net, pos);
            prop_assert!(head.flops > 0.0 && head.params > 0.0);
            prop_assert!(head.flops < 0.3 * total_flops, "position {pos} head too expensive");
            prop_assert_eq!(head.c_out, 100);
        }
    }

    /// Head cost falls (weakly) with depth within a stage run: deeper
    /// positions see smaller or equal feature maps.
    #[test]
    fn deeper_heads_see_smaller_maps(genome in genome_strategy()) {
        let space = SearchSpace::attentive_nas();
        let net = space.decode(&genome).expect("valid genome");
        let mut prev_size = usize::MAX;
        for pos in 1..=net.num_mbconv_layers() {
            let head = exit_head_cost(&net, pos);
            prop_assert!(head.in_size <= prev_size);
            prev_size = head.in_size;
        }
    }
}
