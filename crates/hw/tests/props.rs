//! Property-based tests of the hardware simulator: roofline monotonicity,
//! cost positivity, and DVFS-ladder consistency over random layers and
//! settings.

use hadas_hw::{DeviceModel, DvfsSetting, HwTarget};
use hadas_space::{LayerInfo, LayerKind};
use proptest::prelude::*;

fn layer_strategy() -> impl Strategy<Value = LayerInfo> {
    (
        1usize..512, // c_in
        1usize..512, // c_out
        prop_oneof![Just(3usize), Just(5usize)],
        1usize..3,       // stride
        4usize..128,     // in_size
        1.0e4f64..5.0e8, // flops
        1.0e3f64..1.0e7, // params
        1.0e3f64..1.0e8, // act_bytes
    )
        .prop_map(|(c_in, c_out, kernel, stride, in_size, flops, params, act_bytes)| {
            LayerInfo {
                kind: LayerKind::MbConv { stage: 0, layer: 0 },
                c_in,
                c_out,
                kernel,
                stride,
                expand: 4,
                in_size,
                out_size: in_size / stride,
                flops,
                params,
                act_bytes,
                weight_bytes: 4.0 * params,
            }
        })
}

fn target_strategy() -> impl Strategy<Value = HwTarget> {
    prop_oneof![
        Just(HwTarget::AgxVoltaGpu),
        Just(HwTarget::AgxCarmelCpu),
        Just(HwTarget::Tx2PascalGpu),
        Just(HwTarget::Tx2DenverCpu),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Costs are strictly positive and finite on every target for every
    /// valid setting.
    #[test]
    fn layer_costs_are_positive(
        layer in layer_strategy(),
        target in target_strategy(),
        c_frac in 0.0f64..1.0,
        m_frac in 0.0f64..1.0,
    ) {
        let dev = DeviceModel::for_target(target);
        let c = ((dev.ladder().compute_steps() - 1) as f64 * c_frac) as usize;
        let m = ((dev.ladder().emc_steps() - 1) as f64 * m_frac) as usize;
        let r = dev.layer_cost(&layer, &DvfsSetting::new(c, m)).expect("valid setting");
        prop_assert!(r.latency_s > 0.0 && r.latency_s.is_finite());
        prop_assert!(r.energy_j > 0.0 && r.energy_j.is_finite());
        prop_assert!(r.avg_power_w() > 0.0);
    }

    /// Latency never increases when the compute frequency steps up
    /// (memory frequency held at max).
    #[test]
    fn latency_is_monotone_in_compute_frequency(
        layer in layer_strategy(),
        target in target_strategy(),
    ) {
        let dev = DeviceModel::for_target(target);
        let emc = dev.ladder().emc_steps() - 1;
        let mut prev = f64::INFINITY;
        for c in 0..dev.ladder().compute_steps() {
            let r = dev.layer_cost(&layer, &DvfsSetting::new(c, emc)).expect("valid");
            prop_assert!(r.latency_s <= prev + 1e-15);
            prev = r.latency_s;
        }
    }

    /// Latency never increases when the EMC frequency steps up (compute
    /// held at max).
    #[test]
    fn latency_is_monotone_in_emc_frequency(
        layer in layer_strategy(),
        target in target_strategy(),
    ) {
        let dev = DeviceModel::for_target(target);
        let c = dev.ladder().compute_steps() - 1;
        let mut prev = f64::INFINITY;
        for m in 0..dev.ladder().emc_steps() {
            let r = dev.layer_cost(&layer, &DvfsSetting::new(c, m)).expect("valid");
            prop_assert!(r.latency_s <= prev + 1e-15);
            prev = r.latency_s;
        }
    }

    /// More work (a strictly larger layer) never costs less at the same
    /// setting.
    #[test]
    fn more_flops_cost_more(
        layer in layer_strategy(),
        target in target_strategy(),
        factor in 1.1f64..10.0,
    ) {
        let dev = DeviceModel::for_target(target);
        let dvfs = dev.default_dvfs();
        let small = dev.layer_cost(&layer, &dvfs).expect("valid");
        let mut bigger = layer;
        bigger.flops *= factor;
        bigger.act_bytes *= factor;
        bigger.weight_bytes *= factor;
        let big = dev.layer_cost(&bigger, &dvfs).expect("valid");
        prop_assert!(big.latency_s >= small.latency_s);
        prop_assert!(big.energy_j >= small.energy_j);
    }

    /// The invocation cost shrinks (in latency) as the compute ladder
    /// climbs and is always positive.
    #[test]
    fn invoke_cost_scales_with_frequency(target in target_strategy()) {
        let dev = DeviceModel::for_target(target);
        let emc = dev.ladder().emc_steps() - 1;
        let mut prev = f64::INFINITY;
        for c in 0..dev.ladder().compute_steps() {
            let r = dev.invoke_cost(&DvfsSetting::new(c, emc)).expect("valid");
            prop_assert!(r.latency_s > 0.0 && r.latency_s <= prev);
            prev = r.latency_s;
        }
    }

    /// Ladder resolution round-trips: resolved frequencies are ascending
    /// and within the declared bounds.
    #[test]
    fn ladder_resolution_is_consistent(target in target_strategy()) {
        let dev = DeviceModel::for_target(target);
        let ladder = dev.ladder();
        let mut prev = 0.0;
        for c in 0..ladder.compute_steps() {
            let (fc, fm) = ladder.resolve(&DvfsSetting::new(c, 0)).expect("valid");
            prop_assert!(fc > prev);
            prop_assert!((fm - ladder.emc_ghz()[0]).abs() < 1e-12);
            prev = fc;
        }
    }
}
