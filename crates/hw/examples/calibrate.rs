//! Calibration probe: prints baseline costs per target at default clocks.
//! Used to tune the device constants against the paper's anchors
//! (a0 = 173.78 mJ, a6 = 335.48 mJ on the TX2 Pascal GPU).

use hadas_hw::{DeviceModel, HwTarget};
use hadas_space::{baselines, SearchSpace};

fn main() {
    let space = SearchSpace::attentive_nas();
    let nets = baselines::attentive_nas_baselines(&space).expect("baselines decode");
    for target in HwTarget::ALL {
        let dev = DeviceModel::for_target(target);
        let dvfs = dev.default_dvfs();
        println!("== {} ==", target.name());
        for (name, net) in &nets {
            let r = dev.subnet_cost(net, &dvfs).expect("valid dvfs");
            println!(
                "  {name}: {:>8.2} mJ  {:>7.2} ms  {:>5.2} W  (GMACs {:.2}, MB {:.1}, layers {})",
                r.energy_mj(),
                r.latency_ms(),
                r.avg_power_w(),
                net.total_flops() / 1e9,
                net.total_bytes() / 1e6,
                net.layers().len()
            );
        }
    }
}
