use crate::{CostReport, DvfsLadder, DvfsSetting, HwError, HwTarget};
use hadas_space::{LayerInfo, Subnet};
use serde::{Deserialize, Serialize};

/// An analytical model of one edge compute target (compute unit + memory
/// subsystem) with DVFS.
///
/// # Model
///
/// **Latency** per layer is a roofline with a size-dependent utilisation
/// factor:
///
/// ```text
/// util(L)   = floor + (1 − floor) · flops(L) / (flops(L) + sat)
/// t_compute = flops(L) / (macs_per_cycle · f_c · util(L))
/// t_mem     = bytes(L) / (bytes_per_cycle · f_m)
/// t(L)      = max(t_compute, t_mem) + overhead
/// ```
///
/// **Power** is CMOS-style, `P = P_static + k·V(f)²·f` per subsystem, with
/// a linear voltage–frequency curve, weighted by each subsystem's busy
/// fraction. Energy is `P · t`. The resulting energy–frequency curve is
/// convex (slow ⇒ static-dominated, fast ⇒ dynamic-dominated), so optimal
/// DVFS settings are workload-dependent and interior — the property the
/// **F** subspace search exploits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    target: HwTarget,
    ladder: DvfsLadder,
    /// Peak multiply–accumulates per compute-unit cycle at full utilisation.
    macs_per_cycle: f64,
    /// Memory bytes transferred per EMC cycle at full bandwidth.
    bytes_per_cycle: f64,
    /// Utilisation floor for tiny kernels.
    util_floor: f64,
    /// MAC count at which utilisation reaches half of its headroom.
    util_sat: f64,
    /// Fixed per-layer dispatch overhead in seconds.
    overhead_s: f64,
    /// Fixed per-inference invocation overhead in seconds (host↔device
    /// copies, driver setup) at the top compute frequency; scales inversely
    /// with the compute frequency like the rest of the pipeline.
    invoke_overhead_s: f64,
    /// Fraction of compute dynamic power drawn during the invocation
    /// overhead window.
    invoke_busy: f64,
    /// Static (leakage + always-on rail) power in watts.
    static_w: f64,
    /// Compute dynamic-power coefficient: watts at V = 1, f = 1 GHz.
    dyn_compute: f64,
    /// Memory dynamic-power coefficient: watts at V = 1, f = 1 GHz.
    dyn_mem: f64,
    /// Voltage at the lowest frequency step (normalised).
    v_min: f64,
    /// Voltage at the highest frequency step (normalised).
    v_max: f64,
}

impl DeviceModel {
    /// Builds the calibrated model for one of the paper's four targets.
    ///
    /// Constants are set so the published anchors hold at default (max)
    /// clocks on the TX2 Pascal GPU — a0 ≈ 174 mJ, a6 ≈ 335 mJ — and so
    /// relative behaviour across targets (GPUs faster than CPUs, AGX
    /// faster than TX2) matches the boards.
    pub fn for_target(target: HwTarget) -> Self {
        match target {
            HwTarget::AgxVoltaGpu => DeviceModel {
                target,
                ladder: DvfsLadder::linspace(14, 0.1, 1.4, 9, 0.2, 2.1),
                macs_per_cycle: 1024.0,
                bytes_per_cycle: 64.0,
                util_floor: 0.001,
                util_sat: 4.0e8,
                overhead_s: 1.2e-4,
                invoke_overhead_s: 2.5e-3,
                invoke_busy: 0.8,
                static_w: 2.2,
                dyn_compute: 7.8,
                dyn_mem: 1.6,
                v_min: 0.55,
                v_max: 1.05,
            },
            HwTarget::AgxCarmelCpu => DeviceModel {
                target,
                ladder: DvfsLadder::linspace(29, 0.1, 2.3, 9, 0.2, 2.1),
                macs_per_cycle: 64.0,
                bytes_per_cycle: 48.0,
                util_floor: 0.02,
                util_sat: 6.0e7,
                overhead_s: 8.0e-6,
                invoke_overhead_s: 1.5e-3,
                invoke_busy: 0.7,
                static_w: 1.1,
                dyn_compute: 2.4,
                dyn_mem: 1.2,
                v_min: 0.55,
                v_max: 1.1,
            },
            HwTarget::Tx2PascalGpu => DeviceModel {
                target,
                ladder: DvfsLadder::linspace(13, 0.1, 1.4, 11, 0.2, 1.8),
                macs_per_cycle: 512.0,
                bytes_per_cycle: 32.0,
                util_floor: 0.001,
                util_sat: 5.0e8,
                overhead_s: 1.5e-4,
                invoke_overhead_s: 4.0e-3,
                invoke_busy: 0.8,
                static_w: 1.3,
                dyn_compute: 4.9,
                dyn_mem: 1.1,
                v_min: 0.6,
                v_max: 1.1,
            },
            HwTarget::Tx2DenverCpu => DeviceModel {
                target,
                ladder: DvfsLadder::linspace(12, 0.3, 2.1, 11, 0.2, 1.8),
                macs_per_cycle: 20.0,
                bytes_per_cycle: 16.0,
                util_floor: 0.03,
                util_sat: 3.0e7,
                overhead_s: 6.0e-6,
                invoke_overhead_s: 1.5e-3,
                invoke_busy: 0.7,
                static_w: 0.8,
                dyn_compute: 2.0,
                dyn_mem: 0.9,
                v_min: 0.6,
                v_max: 1.15,
            },
        }
    }

    /// The target this model simulates.
    pub fn target(&self) -> HwTarget {
        self.target
    }

    /// The device's DVFS ladder.
    pub fn ladder(&self) -> &DvfsLadder {
        &self.ladder
    }

    /// The paper's *default HW setting* (maximum clocks), used for all
    /// static (OOE) evaluations.
    pub fn default_dvfs(&self) -> DvfsSetting {
        self.ladder.max_setting()
    }

    fn voltage(&self, f_ghz: f64, f_lo: f64, f_hi: f64) -> f64 {
        if f_hi <= f_lo {
            return self.v_max;
        }
        self.v_min + (self.v_max - self.v_min) * (f_ghz - f_lo) / (f_hi - f_lo)
    }

    /// First and last rungs of one clock ladder. Ladders from the public
    /// constructors are never empty; a degenerate empty slice folds to
    /// `(0, 0)`, which [`DeviceModel::voltage`] maps to `v_max` instead of
    /// panicking mid-pricing.
    fn clock_bounds(ghz: &[f64]) -> (f64, f64) {
        (ghz.first().copied().unwrap_or(0.0), ghz.last().copied().unwrap_or(0.0))
    }

    /// Latency and energy of one layer at `setting`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::DvfsOutOfRange`] for invalid settings.
    pub fn layer_cost(
        &self,
        layer: &LayerInfo,
        setting: &DvfsSetting,
    ) -> Result<CostReport, HwError> {
        let (f_c, f_m) = self.ladder.resolve(setting)?;
        let util =
            self.util_floor + (1.0 - self.util_floor) * layer.flops / (layer.flops + self.util_sat);
        let t_compute = layer.flops / (self.macs_per_cycle * f_c * 1e9 * util);
        let bytes = layer.act_bytes + layer.weight_bytes;
        let t_mem = bytes / (self.bytes_per_cycle * f_m * 1e9);
        let t = t_compute.max(t_mem) + self.overhead_s;

        let (c_lo, c_hi) = Self::clock_bounds(self.ladder.compute_ghz());
        let (m_lo, m_hi) = Self::clock_bounds(self.ladder.emc_ghz());
        let v_c = self.voltage(f_c, c_lo, c_hi);
        let v_m = self.voltage(f_m, m_lo, m_hi);
        let busy_c = (t_compute / t).min(1.0);
        let busy_m = (t_mem / t).min(1.0);
        let p = self.static_w
            + self.dyn_compute * v_c * v_c * f_c * busy_c
            + self.dyn_mem * v_m * v_m * f_m * busy_m;
        Ok(CostReport { latency_s: t, energy_j: p * t })
    }

    /// The fixed per-inference invocation cost (host↔device transfers and
    /// driver setup) at `setting`. Paid exactly once per inference, whether
    /// the input exits early or runs the full backbone.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::DvfsOutOfRange`] for invalid settings.
    pub fn invoke_cost(&self, setting: &DvfsSetting) -> Result<CostReport, HwError> {
        let (f_c, _) = self.ladder.resolve(setting)?;
        let (c_lo, c_hi) = Self::clock_bounds(self.ladder.compute_ghz());
        let t = self.invoke_overhead_s * c_hi / f_c;
        let v_c = self.voltage(f_c, c_lo, c_hi);
        let p = self.static_w + self.invoke_busy * self.dyn_compute * v_c * v_c * f_c;
        Ok(CostReport { latency_s: t, energy_j: p * t })
    }

    /// Latency and energy of a full-backbone inference at `setting`,
    /// including the per-inference invocation cost.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::DvfsOutOfRange`] for invalid settings.
    pub fn subnet_cost(
        &self,
        subnet: &Subnet,
        setting: &DvfsSetting,
    ) -> Result<CostReport, HwError> {
        let mut acc = self.invoke_cost(setting)?;
        for layer in subnet.layers() {
            acc = acc + self.layer_cost(layer, setting)?;
        }
        Ok(acc)
    }

    /// Latency and energy of the backbone *prefix* ending after MBConv
    /// layer `position` (1-based): the stem plus the first `position`
    /// MBConv layers. This is what an input exiting at `position` pays for
    /// the backbone (the exit head's own cost is added separately).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::ExitPositionOutOfRange`] for invalid positions or
    /// [`HwError::DvfsOutOfRange`] for invalid settings.
    pub fn prefix_cost(
        &self,
        subnet: &Subnet,
        position: usize,
        setting: &DvfsSetting,
    ) -> Result<CostReport, HwError> {
        let total = subnet.num_mbconv_layers();
        if position == 0 || position > total {
            return Err(HwError::ExitPositionOutOfRange { position, layers: total });
        }
        let mut acc = self.invoke_cost(setting)?;
        let mut seen = 0usize;
        for layer in subnet.layers() {
            acc = acc + self.layer_cost(layer, setting)?;
            if layer.kind.is_exitable() {
                seen += 1;
                if seen == position {
                    return Ok(acc);
                }
            }
        }
        // `position <= total` was validated above, so the loop always
        // returns for well-formed subnets; a subnet whose exitable-layer
        // count disagrees with `num_mbconv_layers` surfaces as an error
        // instead of a panic.
        Err(HwError::ExitPositionOutOfRange { position, layers: total })
    }
}

impl crate::CostModel for DeviceModel {
    fn target(&self) -> HwTarget {
        DeviceModel::target(self)
    }

    fn ladder(&self) -> &DvfsLadder {
        DeviceModel::ladder(self)
    }

    fn layer_cost(&self, layer: &LayerInfo, setting: &DvfsSetting) -> Result<CostReport, HwError> {
        DeviceModel::layer_cost(self, layer, setting)
    }

    fn invoke_cost(&self, setting: &DvfsSetting) -> Result<CostReport, HwError> {
        DeviceModel::invoke_cost(self, setting)
    }

    // The inherent implementations are used directly so trait-object and
    // concrete callers price workloads identically.
    fn subnet_cost(&self, subnet: &Subnet, setting: &DvfsSetting) -> Result<CostReport, HwError> {
        DeviceModel::subnet_cost(self, subnet, setting)
    }

    fn prefix_cost(
        &self,
        subnet: &Subnet,
        position: usize,
        setting: &DvfsSetting,
    ) -> Result<CostReport, HwError> {
        DeviceModel::prefix_cost(self, subnet, position, setting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadas_space::{baselines, SearchSpace};

    fn subnets() -> Vec<(String, Subnet)> {
        baselines::attentive_nas_baselines(&SearchSpace::attentive_nas()).unwrap()
    }

    #[test]
    fn ladders_match_table_ii_cardinalities() {
        assert_eq!(DeviceModel::for_target(HwTarget::AgxVoltaGpu).ladder().compute_steps(), 14);
        assert_eq!(DeviceModel::for_target(HwTarget::AgxCarmelCpu).ladder().compute_steps(), 29);
        assert_eq!(DeviceModel::for_target(HwTarget::Tx2PascalGpu).ladder().compute_steps(), 13);
        assert_eq!(DeviceModel::for_target(HwTarget::Tx2DenverCpu).ladder().compute_steps(), 12);
        assert_eq!(DeviceModel::for_target(HwTarget::AgxVoltaGpu).ladder().emc_steps(), 9);
        assert_eq!(DeviceModel::for_target(HwTarget::Tx2PascalGpu).ladder().emc_steps(), 11);
    }

    #[test]
    fn latency_is_monotone_decreasing_in_compute_frequency() {
        let dev = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let net = &subnets()[3].1;
        let emc = dev.ladder().emc_steps() - 1;
        let mut prev = f64::INFINITY;
        for c in 0..dev.ladder().compute_steps() {
            let r = dev.subnet_cost(net, &DvfsSetting::new(c, emc)).unwrap();
            assert!(r.latency_s <= prev, "latency must not increase with frequency");
            prev = r.latency_s;
        }
    }

    #[test]
    fn energy_is_convex_in_frequency() {
        // Energy at the lowest and highest frequency should both exceed the
        // minimum over the ladder (interior optimum).
        let dev = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let net = &subnets()[0].1;
        let emc = dev.ladder().emc_steps() - 1;
        let energies: Vec<f64> = (0..dev.ladder().compute_steps())
            .map(|c| dev.subnet_cost(net, &DvfsSetting::new(c, emc)).unwrap().energy_j)
            .collect();
        let min = energies.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(energies[0] > min, "lowest frequency should waste static energy");
        assert!(*energies.last().unwrap() > min, "highest frequency should waste dynamic energy");
    }

    #[test]
    fn bigger_baseline_costs_more() {
        let dev = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let nets = subnets();
        let dvfs = dev.default_dvfs();
        let a0 = dev.subnet_cost(&nets[0].1, &dvfs).unwrap();
        let a6 = dev.subnet_cost(&nets[6].1, &dvfs).unwrap();
        assert!(a6.energy_j > a0.energy_j);
        assert!(a6.latency_s > a0.latency_s);
    }

    #[test]
    fn tx2_anchors_match_paper_table_iii() {
        // Paper: a0 = 173.78 mJ, a6 = 335.48 mJ on TX2 Pascal GPU at
        // default clocks. The simulator is calibrated to land within 15%.
        let dev = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let nets = subnets();
        let dvfs = dev.default_dvfs();
        let a0 = dev.subnet_cost(&nets[0].1, &dvfs).unwrap().energy_mj();
        let a6 = dev.subnet_cost(&nets[6].1, &dvfs).unwrap().energy_mj();
        assert!((a0 - 173.78).abs() / 173.78 < 0.15, "a0 energy {a0} mJ");
        assert!((a6 - 335.48).abs() / 335.48 < 0.15, "a6 energy {a6} mJ");
    }

    #[test]
    fn prefix_cost_is_monotone_and_bounded_by_total() {
        let dev = DeviceModel::for_target(HwTarget::AgxVoltaGpu);
        let net = &subnets()[2].1;
        let dvfs = dev.default_dvfs();
        let total = dev.subnet_cost(net, &dvfs).unwrap();
        let mut prev = 0.0;
        for pos in 1..=net.num_mbconv_layers() {
            let p = dev.prefix_cost(net, pos, &dvfs).unwrap();
            assert!(p.energy_j > prev);
            assert!(p.energy_j < total.energy_j);
            prev = p.energy_j;
        }
    }

    #[test]
    fn prefix_cost_rejects_bad_position() {
        let dev = DeviceModel::for_target(HwTarget::AgxVoltaGpu);
        let net = &subnets()[0].1;
        let dvfs = dev.default_dvfs();
        assert!(dev.prefix_cost(net, 0, &dvfs).is_err());
        assert!(dev.prefix_cost(net, 999, &dvfs).is_err());
    }

    #[test]
    fn gpu_is_faster_than_cpu_on_big_models() {
        let gpu = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let cpu = DeviceModel::for_target(HwTarget::Tx2DenverCpu);
        let net = &subnets()[6].1;
        let g = gpu.subnet_cost(net, &gpu.default_dvfs()).unwrap();
        let c = cpu.subnet_cost(net, &cpu.default_dvfs()).unwrap();
        assert!(g.latency_s < c.latency_s);
    }

    #[test]
    fn emc_frequency_matters_for_memory_bound_layers() {
        // A huge-activation, low-arithmetic layer is memory-bound: the
        // roofline must slow it down as the EMC ladder descends.
        let dev = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let layer = hadas_space::LayerInfo {
            kind: hadas_space::LayerKind::Stem,
            c_in: 3,
            c_out: 16,
            kernel: 3,
            stride: 1,
            expand: 1,
            in_size: 288,
            out_size: 288,
            flops: 1.0e6,
            params: 1.0e3,
            act_bytes: 6.4e7,
            weight_bytes: 4.0e3,
        };
        let top_c = dev.ladder().compute_steps() - 1;
        let slow = dev.layer_cost(&layer, &DvfsSetting::new(top_c, 0)).unwrap();
        let fast =
            dev.layer_cost(&layer, &DvfsSetting::new(top_c, dev.ladder().emc_steps() - 1)).unwrap();
        assert!(slow.latency_s > fast.latency_s * 2.0, "EMC must gate memory-bound layers");
        // And slowing the EMC must never *help* a full subnet either.
        let net = &subnets()[6].1;
        let s = dev.subnet_cost(net, &DvfsSetting::new(top_c, 0)).unwrap();
        let f =
            dev.subnet_cost(net, &DvfsSetting::new(top_c, dev.ladder().emc_steps() - 1)).unwrap();
        assert!(s.latency_s >= f.latency_s);
    }
}
