//! # hadas-hw
//!
//! The edge-hardware substrate of the HADAS reproduction: an analytical
//! simulator for the four NVIDIA Jetson device settings the paper measures
//! with hardware-in-the-loop —
//!
//! * AGX Xavier **Volta GPU** (14 GPU frequencies, 9 EMC frequencies)
//! * AGX Xavier **Carmel ARMv8.2 CPU** (29 CPU frequencies)
//! * Jetson TX2 **Pascal GPU** (13 GPU frequencies, 11 EMC frequencies)
//! * Jetson TX2 **NVIDIA Denver CPU** (12 CPU frequencies)
//!
//! Per layer, latency follows a roofline: `max(compute time, memory time)`
//! with a utilisation factor that grows with layer size (small kernels
//! under-utilise wide engines — the reason large subnets cost *less than
//! proportionally* more energy than compact ones, as in the paper's
//! Table III). Power follows the CMOS model `P = P_static + k·V(f)²·f`,
//! which makes energy *convex* in frequency: run too slow and static power
//! dominates, too fast and dynamic power does. DVFS search is therefore
//! non-trivial, exactly as on the physical boards.
//!
//! ```
//! use hadas_hw::{DeviceModel, HwTarget};
//! use hadas_space::{baselines, SearchSpace};
//!
//! # fn main() -> Result<(), hadas_hw::HwError> {
//! let device = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
//! let space = SearchSpace::attentive_nas();
//! let net = space.decode(&baselines::baseline_genome(0)).expect("a0 decodes");
//! let cost = device.subnet_cost(&net, &device.default_dvfs())?;
//! assert!(cost.latency_s > 0.0 && cost.energy_j > 0.0);
//! # Ok(())
//! # }
//! ```

mod cost;
mod device;
mod dvfs;
mod error;
mod model;
mod proxy;

pub use cost::CostReport;
pub use device::DeviceModel;
pub use dvfs::{DvfsLadder, DvfsSetting};
pub use error::HwError;
pub use model::CostModel;
pub use proxy::{ProxyCostModel, ProxyValidation};

use serde::{Deserialize, Serialize};

/// The four hardware settings evaluated in the paper (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HwTarget {
    /// NVIDIA Jetson AGX Xavier, Volta GPU.
    AgxVoltaGpu,
    /// NVIDIA Jetson AGX Xavier, Carmel ARMv8.2 CPU.
    AgxCarmelCpu,
    /// NVIDIA Jetson TX2, Pascal GPU.
    Tx2PascalGpu,
    /// NVIDIA Jetson TX2, Denver CPU.
    Tx2DenverCpu,
}

impl HwTarget {
    /// All four targets in the paper's presentation order.
    pub const ALL: [HwTarget; 4] = [
        HwTarget::AgxVoltaGpu,
        HwTarget::AgxCarmelCpu,
        HwTarget::Tx2PascalGpu,
        HwTarget::Tx2DenverCpu,
    ];

    /// Human-readable name matching the paper's figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            HwTarget::AgxVoltaGpu => "AGX Volta GPU",
            HwTarget::AgxCarmelCpu => "Carmel ARM v8.2 CPU",
            HwTarget::Tx2PascalGpu => "TX2 Pascal GPU",
            HwTarget::Tx2DenverCpu => "NVIDIA Denver CPU",
        }
    }

    /// The canonical CLI spelling, shared by `hadas --target` and fleet
    /// device specs (`agx-gpu` | `agx-cpu` | `tx2-gpu` | `tx2-cpu`).
    pub fn cli_name(&self) -> &'static str {
        match self {
            HwTarget::AgxVoltaGpu => "agx-gpu",
            HwTarget::AgxCarmelCpu => "agx-cpu",
            HwTarget::Tx2PascalGpu => "tx2-gpu",
            HwTarget::Tx2DenverCpu => "tx2-cpu",
        }
    }

    /// Parses a CLI spelling (the inverse of [`HwTarget::cli_name`]);
    /// `None` for anything else.
    pub fn parse_cli(s: &str) -> Option<HwTarget> {
        HwTarget::ALL.into_iter().find(|t| t.cli_name() == s)
    }
}

impl std::fmt::Display for HwTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_targets_with_distinct_names() {
        let names: std::collections::HashSet<_> = HwTarget::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn cli_names_round_trip() {
        for t in HwTarget::ALL {
            assert_eq!(HwTarget::parse_cli(t.cli_name()), Some(t));
        }
        assert_eq!(HwTarget::parse_cli("warp-drive"), None);
        assert_eq!(HwTarget::parse_cli("AGX-GPU"), None, "spellings are exact");
    }
}
