use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Latency and energy of executing some workload on a device at a fixed
/// DVFS setting.
///
/// Reports compose additively over layers — `prefix + exit head` is how the
/// dynamic (early-exit) costs of HADAS eq. (6) are assembled.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostReport {
    /// Wall-clock latency in seconds.
    pub latency_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

impl CostReport {
    /// A zero-cost report (identity for accumulation).
    pub fn zero() -> Self {
        CostReport::default()
    }

    /// Latency in milliseconds, the unit the paper plots.
    pub fn latency_ms(&self) -> f64 {
        self.latency_s * 1e3
    }

    /// Energy in millijoules, the unit of the paper's Table III.
    pub fn energy_mj(&self) -> f64 {
        self.energy_j * 1e3
    }

    /// Average power in watts (0 for a zero-latency report).
    pub fn avg_power_w(&self) -> f64 {
        if self.latency_s > 0.0 {
            self.energy_j / self.latency_s
        } else {
            0.0
        }
    }
}

impl Add for CostReport {
    type Output = CostReport;

    fn add(self, rhs: CostReport) -> CostReport {
        CostReport {
            latency_s: self.latency_s + rhs.latency_s,
            energy_j: self.energy_j + rhs.energy_j,
        }
    }
}

impl std::iter::Sum for CostReport {
    fn sum<I: Iterator<Item = CostReport>>(iter: I) -> CostReport {
        iter.fold(CostReport::zero(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_add_componentwise() {
        let a = CostReport { latency_s: 0.01, energy_j: 0.1 };
        let b = CostReport { latency_s: 0.02, energy_j: 0.3 };
        let c = a + b;
        assert!((c.latency_s - 0.03).abs() < 1e-12);
        assert!((c.energy_j - 0.4).abs() < 1e-12);
    }

    #[test]
    fn unit_conversions() {
        let r = CostReport { latency_s: 0.025, energy_j: 0.17378 };
        assert!((r.latency_ms() - 25.0).abs() < 1e-9);
        assert!((r.energy_mj() - 173.78).abs() < 1e-9);
        assert!((r.avg_power_w() - 6.9512).abs() < 1e-3);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            CostReport { latency_s: 1.0, energy_j: 1.0 },
            CostReport { latency_s: 2.0, energy_j: 3.0 },
        ];
        let total: CostReport = parts.into_iter().sum();
        assert_eq!(total.latency_s, 3.0);
        assert_eq!(total.energy_j, 4.0);
    }

    #[test]
    fn zero_latency_power_is_zero() {
        assert_eq!(CostReport::zero().avg_power_w(), 0.0);
    }
}
