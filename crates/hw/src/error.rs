use std::error::Error;
use std::fmt;

/// Errors produced by the hardware simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// A DVFS setting indexed beyond its ladder.
    DvfsOutOfRange {
        /// Which axis overflowed.
        axis: &'static str,
        /// The requested index.
        index: usize,
        /// Number of steps on that axis.
        steps: usize,
    },
    /// An exit position referenced a layer the subnet does not have.
    ExitPositionOutOfRange {
        /// Requested exit position (1-based).
        position: usize,
        /// Number of MBConv layers in the subnet.
        layers: usize,
    },
    /// The proxy cost model could not be fitted or validated.
    ProxyFit(String),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::DvfsOutOfRange { axis, index, steps } => {
                write!(f, "{axis} frequency index {index} exceeds ladder of {steps} steps")
            }
            HwError::ExitPositionOutOfRange { position, layers } => {
                write!(f, "exit position {position} exceeds {layers} MBConv layers")
            }
            HwError::ProxyFit(why) => write!(f, "proxy cost model: {why}"),
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_axis() {
        let e = HwError::DvfsOutOfRange { axis: "gpu", index: 20, steps: 13 };
        assert!(e.to_string().contains("gpu"));
    }
}
