use crate::HwError;
use serde::{Deserialize, Serialize};

/// The discrete frequency ladders of one device: compute-unit frequencies
/// (GPU or CPU) and external-memory-controller (EMC) frequencies, in GHz.
///
/// Step counts match the paper's Table II (e.g. 13 GPU steps and 11 EMC
/// steps for the TX2 Pascal GPU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsLadder {
    compute_ghz: Vec<f64>,
    emc_ghz: Vec<f64>,
}

impl DvfsLadder {
    /// Builds a ladder of `n` evenly spaced compute frequencies in
    /// `[c_lo, c_hi]` GHz and `m` EMC frequencies in `[m_lo, m_hi]` GHz.
    ///
    /// # Panics
    ///
    /// Panics if either step count is zero or a range is inverted — ladder
    /// construction is compile-time configuration, not runtime input.
    pub fn linspace(n: usize, c_lo: f64, c_hi: f64, m: usize, m_lo: f64, m_hi: f64) -> Self {
        assert!(n > 0 && m > 0, "ladders must have at least one step");
        assert!(c_lo <= c_hi && m_lo <= m_hi, "frequency ranges must be ordered");
        let lin = |k: usize, lo: f64, hi: f64| -> Vec<f64> {
            if k == 1 {
                vec![hi]
            } else {
                (0..k).map(|i| lo + (hi - lo) * i as f64 / (k - 1) as f64).collect()
            }
        };
        DvfsLadder { compute_ghz: lin(n, c_lo, c_hi), emc_ghz: lin(m, m_lo, m_hi) }
    }

    /// The compute-unit frequency steps in GHz, ascending.
    pub fn compute_ghz(&self) -> &[f64] {
        &self.compute_ghz
    }

    /// The EMC frequency steps in GHz, ascending.
    pub fn emc_ghz(&self) -> &[f64] {
        &self.emc_ghz
    }

    /// Number of compute frequency steps.
    pub fn compute_steps(&self) -> usize {
        self.compute_ghz.len()
    }

    /// Number of EMC frequency steps.
    pub fn emc_steps(&self) -> usize {
        self.emc_ghz.len()
    }

    /// Total number of (compute, EMC) combinations — the size of the
    /// per-device **F** subspace.
    pub fn cardinality(&self) -> usize {
        self.compute_ghz.len() * self.emc_ghz.len()
    }

    /// The maximum-performance setting (both axes at their top step),
    /// which the paper uses as the *default HW setting* for static (OOE)
    /// evaluations.
    pub fn max_setting(&self) -> DvfsSetting {
        DvfsSetting { compute: self.compute_ghz.len() - 1, emc: self.emc_ghz.len() - 1 }
    }

    /// Highest compute-ladder index whose frequency stays at or below
    /// `cap` × the top compute frequency — the effective ceiling of the
    /// ladder during a thermal-throttle episode.
    ///
    /// `cap` is clamped to `[0, 1]`; a cap below the bottom step still
    /// returns index 0 (the SoC can always run its slowest step, it just
    /// runs hot — real governors latch to the floor, they do not halt).
    pub fn thermal_cap_index(&self, cap: f64) -> usize {
        let cap = cap.clamp(0.0, 1.0);
        let top = self.compute_ghz[self.compute_ghz.len() - 1];
        let limit = top * cap;
        self.compute_ghz.iter().rposition(|&f| f <= limit + 1e-12).unwrap_or(0)
    }

    /// Whether `setting`'s compute axis is feasible under a thermal cap
    /// (fraction of the top compute frequency). Settings with an
    /// out-of-range compute index are reported infeasible rather than
    /// erroring: during a throttle episode the question is "can I latch
    /// this?", and the answer for a bogus index is simply "no".
    pub fn respects_thermal_cap(&self, setting: &DvfsSetting, cap: f64) -> bool {
        setting.compute <= self.thermal_cap_index(cap) && setting.compute < self.compute_ghz.len()
    }

    /// Clamps `setting`'s compute axis to the thermal-cap ceiling,
    /// leaving the EMC axis untouched (Jetson-class throttling caps the
    /// compute clock; the memory controller keeps its programmed step).
    /// Also defensively clamps an out-of-range compute index to the top
    /// of the ladder before applying the cap.
    pub fn clamp_to_thermal_cap(&self, setting: &DvfsSetting, cap: f64) -> DvfsSetting {
        let ceiling = self.thermal_cap_index(cap);
        DvfsSetting { compute: setting.compute.min(ceiling), emc: setting.emc }
    }

    /// The compute frequency of `setting` as a fraction of the top step,
    /// the scale thermal caps are expressed on. Out-of-range indices
    /// clamp to the top step.
    pub fn compute_fraction(&self, setting: &DvfsSetting) -> f64 {
        let idx = setting.compute.min(self.compute_ghz.len() - 1);
        let top = self.compute_ghz[self.compute_ghz.len() - 1];
        if top <= 0.0 {
            return 1.0;
        }
        self.compute_ghz[idx] / top
    }

    /// Resolves a setting into concrete `(compute_ghz, emc_ghz)`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::DvfsOutOfRange`] if either index overflows.
    pub fn resolve(&self, setting: &DvfsSetting) -> Result<(f64, f64), HwError> {
        let c = *self.compute_ghz.get(setting.compute).ok_or(HwError::DvfsOutOfRange {
            axis: "compute",
            index: setting.compute,
            steps: self.compute_ghz.len(),
        })?;
        let m = *self.emc_ghz.get(setting.emc).ok_or(HwError::DvfsOutOfRange {
            axis: "emc",
            index: setting.emc,
            steps: self.emc_ghz.len(),
        })?;
        Ok((c, m))
    }
}

/// One point of the **F** subspace: indices into a [`DvfsLadder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DvfsSetting {
    /// Index into the compute-frequency ladder.
    pub compute: usize,
    /// Index into the EMC-frequency ladder.
    pub emc: usize,
}

impl DvfsSetting {
    /// Creates a setting from raw ladder indices.
    pub fn new(compute: usize, emc: usize) -> Self {
        DvfsSetting { compute, emc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_hits_endpoints() {
        let l = DvfsLadder::linspace(13, 0.1, 1.4, 11, 0.2, 1.8);
        assert_eq!(l.compute_steps(), 13);
        assert_eq!(l.emc_steps(), 11);
        assert!((l.compute_ghz()[0] - 0.1).abs() < 1e-12);
        assert!((l.compute_ghz()[12] - 1.4).abs() < 1e-12);
        assert!((l.emc_ghz()[10] - 1.8).abs() < 1e-12);
    }

    #[test]
    fn ladder_is_ascending() {
        let l = DvfsLadder::linspace(29, 0.1, 2.3, 9, 0.2, 2.1);
        assert!(l.compute_ghz().windows(2).all(|w| w[1] > w[0]));
        assert!(l.emc_ghz().windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn max_setting_resolves_to_top_frequencies() {
        let l = DvfsLadder::linspace(14, 0.1, 1.4, 9, 0.2, 2.1);
        let (c, m) = l.resolve(&l.max_setting()).unwrap();
        assert!((c - 1.4).abs() < 1e-12);
        assert!((m - 2.1).abs() < 1e-12);
    }

    #[test]
    fn resolve_rejects_overflow() {
        let l = DvfsLadder::linspace(2, 0.5, 1.0, 2, 0.5, 1.0);
        assert!(matches!(
            l.resolve(&DvfsSetting::new(2, 0)),
            Err(HwError::DvfsOutOfRange { axis: "compute", .. })
        ));
        assert!(matches!(
            l.resolve(&DvfsSetting::new(0, 5)),
            Err(HwError::DvfsOutOfRange { axis: "emc", .. })
        ));
    }

    #[test]
    fn thermal_cap_index_tracks_the_ladder() {
        let l = DvfsLadder::linspace(11, 0.1, 1.0, 4, 0.2, 1.8);
        // Steps are 0.1, 0.19, ..., 1.0; a 50% cap allows up to 0.5 GHz.
        assert_eq!(l.thermal_cap_index(1.0), 10);
        let idx = l.thermal_cap_index(0.5);
        assert!(l.compute_ghz()[idx] <= 0.5 + 1e-12);
        assert!(idx + 1 == 11 || l.compute_ghz()[idx + 1] > 0.5);
        // A cap below the bottom step still leaves the floor step usable.
        assert_eq!(l.thermal_cap_index(0.0), 0);
        assert_eq!(l.thermal_cap_index(-3.0), 0);
    }

    #[test]
    fn clamp_to_thermal_cap_caps_compute_only() {
        let l = DvfsLadder::linspace(11, 0.1, 1.0, 4, 0.2, 1.8);
        let hot = DvfsSetting::new(10, 3);
        let clamped = l.clamp_to_thermal_cap(&hot, 0.5);
        assert!(clamped.compute < 10);
        assert_eq!(clamped.emc, 3, "EMC axis is untouched by thermal caps");
        assert!(l.respects_thermal_cap(&clamped, 0.5));
        assert!(!l.respects_thermal_cap(&hot, 0.5));
        // Out-of-range compute indices clamp instead of erroring.
        let bogus = DvfsSetting::new(99, 0);
        assert!(l.clamp_to_thermal_cap(&bogus, 1.0).compute == 10);
        assert!(!l.respects_thermal_cap(&bogus, 1.0));
    }

    #[test]
    fn compute_fraction_is_monotone_and_bounded() {
        let l = DvfsLadder::linspace(13, 0.1, 1.4, 11, 0.2, 1.8);
        let mut last = 0.0;
        for c in 0..l.compute_steps() {
            let f = l.compute_fraction(&DvfsSetting::new(c, 0));
            assert!(f >= last && f <= 1.0 + 1e-12);
            last = f;
        }
        assert!((l.compute_fraction(&DvfsSetting::new(12, 0)) - 1.0).abs() < 1e-12);
        assert!((l.compute_fraction(&DvfsSetting::new(500, 0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cardinality_is_product() {
        let l = DvfsLadder::linspace(13, 0.1, 1.4, 11, 0.2, 1.8);
        assert_eq!(l.cardinality(), 143);
    }

    #[test]
    fn single_step_ladder_uses_top_frequency() {
        let l = DvfsLadder::linspace(1, 0.1, 1.4, 1, 0.2, 1.8);
        let (c, m) = l.resolve(&l.max_setting()).unwrap();
        assert_eq!((c, m), (1.4, 1.8));
    }
}
