//! A learned proxy cost model.
//!
//! The paper's hardware-in-the-loop setup dominates its search time
//! (2–3 GPU days, reducible to ~1 with a proxy, §V-A). This module fits a
//! small linear model per target from a one-off sample of device
//! measurements and then answers cost queries without touching the device.
//!
//! The feature map mirrors the physics: latency is (nearly) linear in
//! `flops/f_c`, `1/f_c` (utilisation saturation), and `bytes/f_m`; energy
//! is linear in `latency × {1, f_c, f_c³, f_m}` (CMOS static + dynamic
//! terms, with `V ∝ a + b·f` absorbed into the cubic term). The fit is
//! ordinary least squares via normal equations — tiny, deterministic, and
//! accurate to a few percent (see `validate`).

use crate::{CostModel, CostReport, DeviceModel, DvfsLadder, DvfsSetting, HwError, HwTarget};
use hadas_space::{LayerInfo, SearchSpace};
use rand::{rngs::StdRng, Rng, SeedableRng};

const LAT_FEATURES: usize = 4;
const ERG_FEATURES: usize = 4;

/// Mean absolute percentage errors of a fitted proxy on held-out queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProxyValidation {
    /// MAPE of per-subnet latency predictions.
    pub latency_mape: f64,
    /// MAPE of per-subnet energy predictions.
    pub energy_mape: f64,
    /// Number of held-out subnet queries evaluated.
    pub queries: usize,
}

/// A fitted proxy standing in for hardware-in-the-loop measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyCostModel {
    target: HwTarget,
    ladder: DvfsLadder,
    lat_weights: [f64; LAT_FEATURES],
    erg_weights: [f64; ERG_FEATURES],
    invoke_lat_per_inv_fc: f64,
    invoke_erg_weights: [f64; ERG_FEATURES],
    training_samples: usize,
}

fn lat_features(layer: &LayerInfo, f_c: f64, f_m: f64) -> [f64; LAT_FEATURES] {
    let bytes = layer.act_bytes + layer.weight_bytes;
    [layer.flops / (f_c * 1e9), 1.0 / f_c, bytes / (f_m * 1e9), 1.0]
}

fn erg_features(latency: f64, f_c: f64, f_m: f64) -> [f64; ERG_FEATURES] {
    let v = 0.6 + 0.3 * f_c; // a generic V(f) shape; exact slope is learned
    [latency, latency * v * v * f_c, latency * f_m, latency * f_c]
}

/// Solves the `n×n` normal equations `(XᵀX) w = Xᵀy` by Gaussian
/// elimination with partial pivoting (n ≤ 4 here).
#[allow(clippy::needless_range_loop)]
fn least_squares<const N: usize>(rows: &[[f64; N]], targets: &[f64]) -> [f64; N] {
    let mut ata = [[0.0f64; N]; N];
    let mut atb = [0.0f64; N];
    for (x, &y) in rows.iter().zip(targets) {
        for i in 0..N {
            atb[i] += x[i] * y;
            for j in 0..N {
                ata[i][j] += x[i] * x[j];
            }
        }
    }
    // Ridge jitter keeps the system well-posed if features collapse.
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-9;
    }
    // Gaussian elimination.
    let mut a = ata;
    let mut b = atb;
    for col in 0..N {
        let mut pivot = col;
        for r in col + 1..N {
            if a[r][col].abs() > a[pivot][col].abs() {
                pivot = r;
            }
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let d = a[col][col];
        if d.abs() < 1e-30 {
            continue;
        }
        for r in 0..N {
            if r == col {
                continue;
            }
            let factor = a[r][col] / d;
            for c in 0..N {
                a[r][c] -= factor * a[col][c];
            }
            b[r] -= factor * b[col];
        }
    }
    let mut w = [0.0f64; N];
    for i in 0..N {
        w[i] = if a[i][i].abs() > 1e-30 { b[i] / a[i][i] } else { 0.0 };
    }
    w
}

impl ProxyCostModel {
    /// Fits a proxy against `device` from `samples` random (layer, DVFS)
    /// measurements drawn from subnets of `space`. Deterministic given
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::ProxyFit`] if `samples == 0` (fitting needs
    /// data) or a sampled genome fails to decode, and propagates device
    /// cost-model errors.
    pub fn fit(
        device: &DeviceModel,
        space: &SearchSpace,
        samples: usize,
        seed: u64,
    ) -> Result<Self, HwError> {
        if samples == 0 {
            return Err(HwError::ProxyFit("fitting needs at least one sample".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let ladder = device.ladder().clone();
        let mut lat_rows = Vec::with_capacity(samples);
        let mut lat_targets = Vec::with_capacity(samples);
        let mut erg_rows = Vec::with_capacity(samples);
        let mut erg_targets = Vec::with_capacity(samples);
        let mut collected = 0usize;
        while collected < samples {
            let subnet = space
                .decode(&space.sample(&mut rng))
                .map_err(|e| HwError::ProxyFit(format!("sampled genome failed to decode: {e}")))?;
            let setting = DvfsSetting::new(
                rng.gen_range(0..ladder.compute_steps()),
                rng.gen_range(0..ladder.emc_steps()),
            );
            let (f_c, f_m) = ladder.resolve(&setting)?;
            for layer in subnet.layers() {
                if collected == samples {
                    break;
                }
                let truth = device.layer_cost(layer, &setting)?;
                lat_rows.push(lat_features(layer, f_c, f_m));
                lat_targets.push(truth.latency_s);
                erg_rows.push(erg_features(truth.latency_s, f_c, f_m));
                erg_targets.push(truth.energy_j);
                collected += 1;
            }
        }
        let lat_weights = least_squares(&lat_rows, &lat_targets);
        let erg_weights = least_squares(&erg_rows, &erg_targets);

        // The invocation cost is a pure function of f_c: fit it exactly
        // from the ladder sweep.
        let c_hi = *ladder
            .compute_ghz()
            .last()
            .ok_or_else(|| HwError::ProxyFit("empty DVFS ladder".into()))?;
        let mut inv_rows = Vec::new();
        let mut inv_targets = Vec::new();
        let mut per_inv = 0.0;
        for c in 0..ladder.compute_steps() {
            let setting = DvfsSetting::new(c, 0);
            let (f_c, f_m) = ladder.resolve(&setting)?;
            let truth = device.invoke_cost(&setting)?;
            per_inv += truth.latency_s * f_c / c_hi / ladder.compute_steps() as f64;
            inv_rows.push(erg_features(truth.latency_s, f_c, f_m));
            inv_targets.push(truth.energy_j);
        }
        let invoke_erg_weights = least_squares(&inv_rows, &inv_targets);
        Ok(ProxyCostModel {
            target: device.target(),
            ladder,
            lat_weights,
            erg_weights,
            invoke_lat_per_inv_fc: per_inv * c_hi,
            invoke_erg_weights,
            training_samples: samples,
        })
    }

    /// Number of device measurements the fit consumed.
    pub fn training_samples(&self) -> usize {
        self.training_samples
    }

    /// Held-out validation: MAPE of full-subnet latency/energy predictions
    /// against `device` on `queries` random (subnet, DVFS) pairs.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::ProxyFit`] if a sampled genome fails to
    /// decode, and propagates device cost-model errors.
    pub fn validate(
        &self,
        device: &DeviceModel,
        space: &SearchSpace,
        queries: usize,
        seed: u64,
    ) -> Result<ProxyValidation, HwError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lat_err = 0.0;
        let mut erg_err = 0.0;
        for _ in 0..queries {
            let subnet = space
                .decode(&space.sample(&mut rng))
                .map_err(|e| HwError::ProxyFit(format!("sampled genome failed to decode: {e}")))?;
            let setting = DvfsSetting::new(
                rng.gen_range(0..self.ladder.compute_steps()),
                rng.gen_range(0..self.ladder.emc_steps()),
            );
            let truth = device.subnet_cost(&subnet, &setting)?;
            let pred = CostModel::subnet_cost(self, &subnet, &setting)?;
            lat_err += ((pred.latency_s - truth.latency_s) / truth.latency_s).abs();
            erg_err += ((pred.energy_j - truth.energy_j) / truth.energy_j).abs();
        }
        Ok(ProxyValidation {
            latency_mape: lat_err / queries as f64,
            energy_mape: erg_err / queries as f64,
            queries,
        })
    }
}

impl CostModel for ProxyCostModel {
    fn target(&self) -> HwTarget {
        self.target
    }

    fn ladder(&self) -> &DvfsLadder {
        &self.ladder
    }

    fn layer_cost(&self, layer: &LayerInfo, setting: &DvfsSetting) -> Result<CostReport, HwError> {
        let (f_c, f_m) = self.ladder.resolve(setting)?;
        let lf = lat_features(layer, f_c, f_m);
        let latency: f64 =
            lf.iter().zip(self.lat_weights.iter()).map(|(x, w)| x * w).sum::<f64>().max(1e-7);
        let ef = erg_features(latency, f_c, f_m);
        let energy: f64 =
            ef.iter().zip(self.erg_weights.iter()).map(|(x, w)| x * w).sum::<f64>().max(1e-9);
        Ok(CostReport { latency_s: latency, energy_j: energy })
    }

    fn invoke_cost(&self, setting: &DvfsSetting) -> Result<CostReport, HwError> {
        let (f_c, f_m) = self.ladder.resolve(setting)?;
        let latency = self.invoke_lat_per_inv_fc / f_c;
        let ef = erg_features(latency, f_c, f_m);
        let energy: f64 = ef
            .iter()
            .zip(self.invoke_erg_weights.iter())
            .map(|(x, w)| x * w)
            .sum::<f64>()
            .max(1e-9);
        Ok(CostReport { latency_s: latency, energy_j: energy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_predictions_track_the_device() {
        let device = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let space = SearchSpace::attentive_nas();
        let proxy = ProxyCostModel::fit(&device, &space, 2_000, 1).expect("fits");
        let v = proxy.validate(&device, &space, 50, 2).expect("validates");
        assert!(v.latency_mape < 0.10, "latency MAPE {:.3}", v.latency_mape);
        assert!(v.energy_mape < 0.10, "energy MAPE {:.3}", v.energy_mape);
    }

    #[test]
    fn proxy_fits_every_target() {
        let space = SearchSpace::attentive_nas();
        for target in HwTarget::ALL {
            let device = DeviceModel::for_target(target);
            let proxy = ProxyCostModel::fit(&device, &space, 1_000, 7).expect("fits");
            let v = proxy.validate(&device, &space, 25, 8).expect("validates");
            assert!(
                v.latency_mape < 0.2 && v.energy_mape < 0.2,
                "{target}: lat {:.3}, erg {:.3}",
                v.latency_mape,
                v.energy_mape
            );
        }
    }

    #[test]
    fn proxy_preserves_latency_monotonicity() {
        let device = DeviceModel::for_target(HwTarget::AgxVoltaGpu);
        let space = SearchSpace::attentive_nas();
        let proxy = ProxyCostModel::fit(&device, &space, 1_500, 3).expect("fits");
        let net = space.decode(&hadas_space::baselines::baseline_genome(3)).expect("a3");
        let emc = proxy.ladder().emc_steps() - 1;
        let mut prev = f64::INFINITY;
        for c in 0..proxy.ladder().compute_steps() {
            let r = CostModel::subnet_cost(&proxy, &net, &DvfsSetting::new(c, emc)).expect("valid");
            assert!(r.latency_s <= prev);
            prev = r.latency_s;
        }
    }

    #[test]
    fn least_squares_recovers_exact_linear_data() {
        let rows = vec![
            [1.0, 0.0, 0.0, 1.0],
            [0.0, 1.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 1.0],
            [1.0, 1.0, 1.0, 1.0],
            [2.0, 1.0, 0.0, 1.0],
        ];
        let w_true = [2.0, -1.0, 0.5, 3.0];
        let targets: Vec<f64> =
            rows.iter().map(|r| r.iter().zip(w_true.iter()).map(|(x, w)| x * w).sum()).collect();
        let w = least_squares(&rows, &targets);
        for (a, b) in w.iter().zip(w_true.iter()) {
            assert!((a - b).abs() < 1e-6, "{w:?}");
        }
    }

    #[test]
    fn fit_rejects_zero_samples() {
        let device = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let space = SearchSpace::attentive_nas();
        let err = ProxyCostModel::fit(&device, &space, 0, 0).unwrap_err();
        assert!(err.to_string().contains("at least one sample"), "{err}");
    }
}
