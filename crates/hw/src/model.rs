//! The [`CostModel`] abstraction: anything that can price workloads on a
//! device — the hardware-in-the-loop simulator ([`crate::DeviceModel`]) or
//! a learned proxy ([`crate::ProxyCostModel`]).
//!
//! The paper measures with hardware in the loop (§V-A) and notes the
//! search overhead would drop from 2–3 GPU days to ~1 if a proxy replaced
//! it; this trait is the seam that makes the swap a one-line change.

use crate::{CostReport, DvfsLadder, DvfsSetting, HwError, HwTarget};
use hadas_space::{LayerInfo, Subnet};

/// A source of latency/energy estimates for one hardware target.
///
/// Object-safe so engines can hold `Arc<dyn CostModel>`; `subnet_cost` and
/// `prefix_cost` have default implementations in terms of `layer_cost` and
/// `invoke_cost`, which is how both the simulator and the proxy compose.
pub trait CostModel: std::fmt::Debug + Send + Sync {
    /// The hardware target this model prices.
    fn target(&self) -> HwTarget;

    /// The DVFS ladder defining the **F** subspace.
    fn ladder(&self) -> &DvfsLadder;

    /// The default (max-clock) setting used for static evaluations.
    fn default_dvfs(&self) -> DvfsSetting {
        self.ladder().max_setting()
    }

    /// Cost of one layer at `setting`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::DvfsOutOfRange`] for invalid settings.
    fn layer_cost(&self, layer: &LayerInfo, setting: &DvfsSetting) -> Result<CostReport, HwError>;

    /// Fixed per-inference invocation cost at `setting`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::DvfsOutOfRange`] for invalid settings.
    fn invoke_cost(&self, setting: &DvfsSetting) -> Result<CostReport, HwError>;

    /// Cost of a full-backbone inference (invocation included).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::DvfsOutOfRange`] for invalid settings.
    fn subnet_cost(&self, subnet: &Subnet, setting: &DvfsSetting) -> Result<CostReport, HwError> {
        let mut acc = self.invoke_cost(setting)?;
        for layer in subnet.layers() {
            acc = acc + self.layer_cost(layer, setting)?;
        }
        Ok(acc)
    }

    /// Cost of the backbone prefix ending after MBConv layer `position`
    /// (1-based), invocation included.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::ExitPositionOutOfRange`] or
    /// [`HwError::DvfsOutOfRange`].
    fn prefix_cost(
        &self,
        subnet: &Subnet,
        position: usize,
        setting: &DvfsSetting,
    ) -> Result<CostReport, HwError> {
        let total = subnet.num_mbconv_layers();
        if position == 0 || position > total {
            return Err(HwError::ExitPositionOutOfRange { position, layers: total });
        }
        let mut acc = self.invoke_cost(setting)?;
        let mut seen = 0usize;
        for layer in subnet.layers() {
            acc = acc + self.layer_cost(layer, setting)?;
            if layer.kind.is_exitable() {
                seen += 1;
                if seen == position {
                    return Ok(acc);
                }
            }
        }
        // `position` was validated against `num_mbconv_layers()` above, so
        // the loop returns unless the subnet's layer list disagrees with
        // its own MBConv count — report that as the range error it is
        // rather than aborting a search mid-candidate.
        Err(HwError::ExitPositionOutOfRange { position, layers: seen })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceModel;
    use hadas_space::{baselines, SearchSpace};

    #[test]
    fn device_model_is_a_cost_model_object() {
        let dev: Box<dyn CostModel> = Box::new(DeviceModel::for_target(HwTarget::Tx2PascalGpu));
        let space = SearchSpace::attentive_nas();
        let net = space.decode(&baselines::baseline_genome(0)).expect("a0");
        let r = dev.subnet_cost(&net, &dev.default_dvfs()).expect("valid");
        assert!(r.energy_j > 0.0);
    }

    #[test]
    fn trait_defaults_match_inherent_implementations() {
        let dev = DeviceModel::for_target(HwTarget::AgxVoltaGpu);
        let space = SearchSpace::attentive_nas();
        let net = space.decode(&baselines::baseline_genome(2)).expect("a2");
        let dvfs = dev.default_dvfs();
        let inherent = dev.subnet_cost(&net, &dvfs).expect("valid");
        let via_trait = <DeviceModel as CostModel>::subnet_cost(&dev, &net, &dvfs).expect("valid");
        assert!((inherent.energy_j - via_trait.energy_j).abs() < 1e-12);
        let p_inherent = dev.prefix_cost(&net, 7, &dvfs).expect("valid");
        let p_trait = <DeviceModel as CostModel>::prefix_cost(&dev, &net, 7, &dvfs).expect("valid");
        assert!((p_inherent.latency_s - p_trait.latency_s).abs() < 1e-12);
    }
}
