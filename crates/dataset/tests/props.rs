//! Property-based tests of the synthetic dataset: distribution-function
//! identities, batch integrity, config validation, and the seeded
//! corruption injector's purity/quarantine contracts.

use hadas_dataset::{
    CorruptionConfig, DatasetConfig, DifficultyDistribution, SyntheticDataset, MAX_ABS_PIXEL,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// quantile(cdf(d)) = d on the open support, for any valid shapes.
    /// Extreme shape pairs push the CDF into the 1e-12 range where f64
    /// round-off dominates, so the tolerance is relative.
    #[test]
    fn quantile_inverts_cdf(
        a in 0.2f64..6.0,
        b in 0.2f64..6.0,
        d in 0.01f64..0.99,
    ) {
        let dist = DifficultyDistribution::new(a, b).expect("valid shapes");
        let u = dist.cdf(d);
        let back = dist.quantile(u);
        prop_assert!(
            (back - d).abs() < 1e-3 * d.max(1e-3),
            "a={a} b={b}: {d} -> cdf {u} -> {back}"
        );
    }

    /// The CDF is monotone non-decreasing for any valid shapes.
    #[test]
    fn cdf_is_monotone(a in 0.2f64..6.0, b in 0.2f64..6.0) {
        let dist = DifficultyDistribution::new(a, b).expect("valid shapes");
        let mut prev = -1.0;
        for i in 0..=50 {
            let v = dist.cdf(i as f64 / 50.0);
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert!((dist.cdf(1.0) - 1.0).abs() < 1e-12);
    }

    /// The mean lies in (0, 1) and shifts down as `b` grows (more mass on
    /// easy samples).
    #[test]
    fn mean_respects_shape(a in 0.5f64..4.0, b in 0.5f64..3.0) {
        let lo = DifficultyDistribution::new(a, b).expect("valid");
        let hi = DifficultyDistribution::new(a, b + 1.5).expect("valid");
        prop_assert!(lo.mean() > 0.0 && lo.mean() < 1.0);
        prop_assert!(hi.mean() < lo.mean());
    }

    /// Sequential batches partition the training split: every sample is
    /// produced exactly once with its label intact.
    #[test]
    fn batches_partition_the_split(
        classes in 2usize..8,
        batch in 1usize..16,
        seed in 0u64..500,
    ) {
        let mut cfg = DatasetConfig::small();
        cfg.classes = classes;
        cfg.train_size = 48;
        cfg.test_size = 8;
        let data = SyntheticDataset::generate(&cfg, seed).expect("valid config");
        let mut labels_seen = Vec::new();
        let mut start = 0;
        while start + batch <= cfg.train_size {
            let (images, labels) = data.train_batch(start, batch).expect("in range");
            prop_assert_eq!(images.shape().dims()[0], batch);
            labels_seen.extend(labels);
            start += batch;
        }
        let direct: Vec<usize> =
            data.train()[..labels_seen.len()].iter().map(|s| s.label).collect();
        prop_assert_eq!(labels_seen, direct);
    }

    /// Generated difficulties stay in [0, 1] and labels in range.
    #[test]
    fn samples_are_well_formed(seed in 0u64..500) {
        let cfg = DatasetConfig::small();
        let data = SyntheticDataset::generate(&cfg, seed).expect("valid config");
        for s in data.train().iter().chain(data.test()) {
            prop_assert!((0.0..=1.0).contains(&s.difficulty));
            prop_assert!(s.label < cfg.classes);
            prop_assert_eq!(
                s.image.shape().dims(),
                &[cfg.channels, cfg.image_size, cfg.image_size]
            );
        }
    }

    /// Zero-sizing any structural config field is rejected, and a valid
    /// config round-trips through generation at its declared sizes.
    #[test]
    fn config_validation_rejects_degenerate_fields(
        which in 0usize..3,
        seed in 0u64..100,
    ) {
        let mut cfg = DatasetConfig::small();
        match which {
            0 => cfg.classes = 0,
            1 => cfg.channels = 0,
            _ => cfg.image_size = 0,
        }
        prop_assert!(cfg.validate().is_err());
        prop_assert!(SyntheticDataset::generate(&cfg, seed).is_err());

        let good = DatasetConfig::small();
        let data = SyntheticDataset::generate(&good, seed).expect("valid config");
        prop_assert_eq!(data.train().len(), good.train_size);
        prop_assert_eq!(data.test().len(), good.test_size);
    }

    /// Corruption-rate validation: rates outside [0, 1], rate sums past
    /// 1, and magnitudes the validator could not catch are all rejected.
    #[test]
    fn corruption_config_validation_bounds_rates(r in 0.0f64..0.4) {
        let mut cfg = CorruptionConfig::chaos(1);
        cfg.label_flip_rate = -r - 0.01;
        prop_assert!(cfg.validate().is_err(), "negative rate must fail");

        let mut cfg = CorruptionConfig::chaos(1);
        cfg.pixel_nan_rate = 0.4 + r;
        cfg.extreme_rate = 0.4;
        cfg.truncate_rate = 0.3;
        prop_assert!(cfg.validate().is_err(), "rates summing past 1 must fail");

        let mut cfg = CorruptionConfig::chaos(1);
        cfg.magnitude = MAX_ABS_PIXEL * (r as f32);
        prop_assert!(cfg.validate().is_err(), "sub-threshold magnitude must fail");

        prop_assert!(CorruptionConfig::chaos(1).validate().is_ok());
        prop_assert!(CorruptionConfig::clean(1).validate().is_ok());
    }

    /// The injector is pure in `(seed, index)`: applying the same config
    /// twice yields identical reports, and a clean config is a no-op.
    #[test]
    fn corruption_is_pure_and_clean_config_is_identity(
        seed in 0u64..200,
        chaos_seed in 0u64..200,
    ) {
        let mut cfg = DatasetConfig::small();
        cfg.train_size = 128;
        let data = SyntheticDataset::generate(&cfg, seed).expect("valid config");

        let chaos = CorruptionConfig::chaos(chaos_seed);
        let (a, ra) = data.with_corruption(&chaos).expect("valid chaos");
        let (b, rb) = data.with_corruption(&chaos).expect("valid chaos");
        prop_assert_eq!(&ra, &rb);
        for (x, y) in a.train().iter().zip(b.train()) {
            prop_assert_eq!(x.label, y.label);
            let (xs, ys) = (x.image.as_slice(), y.image.as_slice());
            prop_assert_eq!(xs.len(), ys.len());
            for (&u, &v) in xs.iter().zip(ys) {
                prop_assert!(u.to_bits() == v.to_bits());
            }
        }

        let (c, rc) = data.with_corruption(&CorruptionConfig::clean(chaos_seed))
            .expect("valid clean");
        prop_assert_eq!(rc.total(), 0);
        for (x, y) in c.train().iter().zip(data.train()) {
            prop_assert_eq!(x.label, y.label);
            for (&u, &v) in x.image.as_slice().iter().zip(y.image.as_slice()) {
                prop_assert!(u.to_bits() == v.to_bits());
            }
        }
    }

    /// Quarantine catches exactly the detectable corruptions: every
    /// reported NaN/extreme/truncated index is removed, silent label
    /// flips survive, and the test split is never touched.
    #[test]
    fn quarantine_catches_exactly_the_detectable_poison(
        seed in 0u64..200,
        chaos_seed in 0u64..200,
    ) {
        let mut cfg = DatasetConfig::small();
        cfg.train_size = 128;
        let data = SyntheticDataset::generate(&cfg, seed).expect("valid config");
        let (corrupted, report) = data
            .with_corruption(&CorruptionConfig::chaos(chaos_seed))
            .expect("valid chaos");

        let (clean, quarantined) = corrupted.quarantine_train(MAX_ABS_PIXEL);
        let mut expected: Vec<usize> = report
            .nan_poisoned
            .iter()
            .chain(&report.extreme_poisoned)
            .chain(&report.truncated)
            .copied()
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(&quarantined, &expected);
        prop_assert_eq!(
            clean.train().len(),
            corrupted.train().len() - quarantined.len()
        );
        for s in clean.train() {
            prop_assert!(s.defect(cfg.classes, MAX_ABS_PIXEL).is_none());
        }
        // The test split stays byte-identical: evaluation is never poisoned.
        for (x, y) in corrupted.test().iter().zip(data.test()) {
            prop_assert_eq!(x.label, y.label);
            for (&u, &v) in x.image.as_slice().iter().zip(y.image.as_slice()) {
                prop_assert!(u.to_bits() == v.to_bits());
            }
        }
        // Silent label flips are NOT quarantined.
        for &i in &report.label_flipped {
            prop_assert!(!quarantined.contains(&i), "label flips are undetectable");
        }
    }

    /// Corruption kinds are drawn from disjoint intervals, so one sample
    /// suffers at most one corruption and empirical per-kind fractions
    /// stay near the configured rates on a large split.
    #[test]
    fn corruption_rates_hit_their_targets(chaos_seed in 0u64..50) {
        let mut cfg = DatasetConfig::small();
        cfg.train_size = 2_000;
        let data = SyntheticDataset::generate(&cfg, 7).expect("valid config");
        let chaos = CorruptionConfig::chaos(chaos_seed);
        let (_, report) = data.with_corruption(&chaos).expect("valid chaos");

        let n = cfg.train_size as f64;
        let detectable = report.detectable() as f64 / n;
        prop_assert!(
            (detectable - chaos.detectable_rate()).abs() < 0.05,
            "detectable fraction {detectable} vs configured {}",
            chaos.detectable_rate()
        );
        // Disjoint kinds: no index appears in two report buckets.
        let mut all: Vec<usize> = report
            .label_flipped
            .iter()
            .chain(&report.nan_poisoned)
            .chain(&report.extreme_poisoned)
            .chain(&report.truncated)
            .copied()
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), before);
    }
}
