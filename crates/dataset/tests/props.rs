//! Property-based tests of the synthetic dataset: distribution-function
//! identities and batch integrity over random configurations.

use hadas_dataset::{DatasetConfig, DifficultyDistribution, SyntheticDataset};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// quantile(cdf(d)) = d on the open support, for any valid shapes.
    /// Extreme shape pairs push the CDF into the 1e-12 range where f64
    /// round-off dominates, so the tolerance is relative.
    #[test]
    fn quantile_inverts_cdf(
        a in 0.2f64..6.0,
        b in 0.2f64..6.0,
        d in 0.01f64..0.99,
    ) {
        let dist = DifficultyDistribution::new(a, b).expect("valid shapes");
        let u = dist.cdf(d);
        let back = dist.quantile(u);
        prop_assert!(
            (back - d).abs() < 1e-3 * d.max(1e-3),
            "a={a} b={b}: {d} -> cdf {u} -> {back}"
        );
    }

    /// The CDF is monotone non-decreasing for any valid shapes.
    #[test]
    fn cdf_is_monotone(a in 0.2f64..6.0, b in 0.2f64..6.0) {
        let dist = DifficultyDistribution::new(a, b).expect("valid shapes");
        let mut prev = -1.0;
        for i in 0..=50 {
            let v = dist.cdf(i as f64 / 50.0);
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert!((dist.cdf(1.0) - 1.0).abs() < 1e-12);
    }

    /// The mean lies in (0, 1) and shifts down as `b` grows (more mass on
    /// easy samples).
    #[test]
    fn mean_respects_shape(a in 0.5f64..4.0, b in 0.5f64..3.0) {
        let lo = DifficultyDistribution::new(a, b).expect("valid");
        let hi = DifficultyDistribution::new(a, b + 1.5).expect("valid");
        prop_assert!(lo.mean() > 0.0 && lo.mean() < 1.0);
        prop_assert!(hi.mean() < lo.mean());
    }

    /// Sequential batches partition the training split: every sample is
    /// produced exactly once with its label intact.
    #[test]
    fn batches_partition_the_split(
        classes in 2usize..8,
        batch in 1usize..16,
        seed in 0u64..500,
    ) {
        let mut cfg = DatasetConfig::small();
        cfg.classes = classes;
        cfg.train_size = 48;
        cfg.test_size = 8;
        let data = SyntheticDataset::generate(&cfg, seed).expect("valid config");
        let mut labels_seen = Vec::new();
        let mut start = 0;
        while start + batch <= cfg.train_size {
            let (images, labels) = data.train_batch(start, batch).expect("in range");
            prop_assert_eq!(images.shape().dims()[0], batch);
            labels_seen.extend(labels);
            start += batch;
        }
        let direct: Vec<usize> =
            data.train()[..labels_seen.len()].iter().map(|s| s.label).collect();
        prop_assert_eq!(labels_seen, direct);
    }

    /// Generated difficulties stay in [0, 1] and labels in range.
    #[test]
    fn samples_are_well_formed(seed in 0u64..500) {
        let cfg = DatasetConfig::small();
        let data = SyntheticDataset::generate(&cfg, seed).expect("valid config");
        for s in data.train().iter().chain(data.test()) {
            prop_assert!((0.0..=1.0).contains(&s.difficulty));
            prop_assert!(s.label < cfg.classes);
            prop_assert_eq!(
                s.image.shape().dims(),
                &[cfg.channels, cfg.image_size, cfg.image_size]
            );
        }
    }
}
