use crate::{DatasetError, DifficultyDistribution};
use hadas_tensor::{normal, Tensor};
use rand::{rngs::StdRng, SeedableRng};

/// Configuration of the synthetic CIFAR-100 stand-in.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of classes (CIFAR-100 has 100).
    pub classes: usize,
    /// Image channels (3 for RGB).
    pub channels: usize,
    /// Square image side length (32 for CIFAR).
    pub image_size: usize,
    /// Training split size.
    pub train_size: usize,
    /// Test split size.
    pub test_size: usize,
    /// Difficulty distribution the samples are drawn from.
    pub difficulty: DifficultyDistribution,
}

impl DatasetConfig {
    /// CIFAR-100-shaped configuration (100 classes, 3×32×32), scaled down
    /// in sample count to stay tractable in a simulation.
    pub fn cifar100_like() -> Self {
        DatasetConfig {
            classes: 100,
            channels: 3,
            image_size: 32,
            train_size: 5_000,
            test_size: 1_000,
            difficulty: DifficultyDistribution::default(),
        }
    }

    /// A tiny configuration for unit tests and doc examples.
    pub fn small() -> Self {
        DatasetConfig {
            classes: 10,
            channels: 3,
            image_size: 8,
            train_size: 64,
            test_size: 32,
            difficulty: DifficultyDistribution::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for zero-sized fields.
    pub fn validate(&self) -> Result<(), DatasetError> {
        if self.classes == 0 {
            return Err(DatasetError::InvalidConfig("classes must be > 0".into()));
        }
        if self.channels == 0 || self.image_size == 0 {
            return Err(DatasetError::InvalidConfig("image dims must be > 0".into()));
        }
        if self.train_size == 0 && self.test_size == 0 {
            return Err(DatasetError::InvalidConfig("dataset must be non-empty".into()));
        }
        Ok(())
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig::cifar100_like()
    }
}

/// One synthetic sample: the image, its label, and the latent difficulty
/// that generated it.
///
/// Difficulty is *latent*: real models never see it, but the accuracy
/// surrogate integrates over its distribution, and tests use it to verify
/// that harder samples really are harder to classify.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Image tensor of shape `(channels, size, size)`.
    pub image: Tensor,
    /// Ground-truth class index.
    pub label: usize,
    /// Latent difficulty in `[0, 1]` drawn from the configured distribution.
    pub difficulty: f64,
}

/// The generated dataset: class prototypes plus train/test splits.
///
/// Samples are `prototype·(1 − d) + noise·d` — as difficulty `d` grows, the
/// class signal fades into noise, so a classifier needs more capacity (and
/// an exit more depth) to recover it. That reproduces the mechanism that
/// makes early exits worthwhile on real data.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: DatasetConfig,
    prototypes: Vec<Tensor>,
    train: Vec<Sample>,
    test: Vec<Sample>,
}

impl SyntheticDataset {
    /// Generates a dataset deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the config is invalid.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Result<Self, DatasetError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = [config.channels, config.image_size, config.image_size];
        let prototypes: Vec<Tensor> =
            (0..config.classes).map(|_| normal(&mut rng, &dims, 0.0, 1.0)).collect();

        let make_split = |count: usize, rng: &mut StdRng| -> Result<Vec<Sample>, DatasetError> {
            (0..count)
                .map(|i| {
                    let label = i % config.classes;
                    let d = config.difficulty.sample(rng);
                    let noise = normal(rng, &dims, 0.0, 1.0);
                    let image =
                        prototypes[label].scale(1.0 - d as f32).add(&noise.scale(d as f32))?;
                    Ok(Sample { image, label, difficulty: d })
                })
                .collect()
        };
        let train = make_split(config.train_size, &mut rng)?;
        let test = make_split(config.test_size, &mut rng)?;
        Ok(SyntheticDataset { config: config.clone(), prototypes, train, test })
    }

    /// The generating configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Per-class prototype images.
    pub fn prototypes(&self) -> &[Tensor] {
        &self.prototypes
    }

    /// The training split.
    pub fn train(&self) -> &[Sample] {
        &self.train
    }

    /// Mutable access to the training split (corruption injector).
    pub(crate) fn train_mut(&mut self) -> &mut Vec<Sample> {
        &mut self.train
    }

    /// Replaces the training split, keeping `config.train_size`
    /// consistent (quarantine sanitization).
    pub(crate) fn set_train(&mut self, train: Vec<Sample>) {
        self.config.train_size = train.len();
        self.train = train;
    }

    /// The test split.
    pub fn test(&self) -> &[Sample] {
        &self.test
    }

    /// Total number of samples across both splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.test.is_empty()
    }

    /// Assembles a training batch `[start, start+len)` as an NCHW tensor
    /// plus labels.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::BatchOutOfRange`] if the range exceeds the
    /// split.
    pub fn train_batch(
        &self,
        start: usize,
        len: usize,
    ) -> Result<(Tensor, Vec<usize>), DatasetError> {
        Self::batch(&self.train, &self.config, start, len)
    }

    /// Assembles a test batch `[start, start+len)`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::BatchOutOfRange`] if the range exceeds the
    /// split.
    pub fn test_batch(
        &self,
        start: usize,
        len: usize,
    ) -> Result<(Tensor, Vec<usize>), DatasetError> {
        Self::batch(&self.test, &self.config, start, len)
    }

    fn batch(
        split: &[Sample],
        config: &DatasetConfig,
        start: usize,
        len: usize,
    ) -> Result<(Tensor, Vec<usize>), DatasetError> {
        if start + len > split.len() {
            return Err(DatasetError::BatchOutOfRange { start, len, available: split.len() });
        }
        let (c, s) = (config.channels, config.image_size);
        let mut data = Vec::with_capacity(len * c * s * s);
        let mut labels = Vec::with_capacity(len);
        for sample in &split[start..start + len] {
            data.extend_from_slice(sample.image.as_slice());
            labels.push(sample.label);
        }
        let images = Tensor::from_vec(data, &[len, c, s, s])?;
        Ok((images, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DatasetConfig::small();
        let a = SyntheticDataset::generate(&cfg, 7).unwrap();
        let b = SyntheticDataset::generate(&cfg, 7).unwrap();
        assert_eq!(a.train()[0], b.train()[0]);
        assert_eq!(a.test()[5], b.test()[5]);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = DatasetConfig::small();
        let a = SyntheticDataset::generate(&cfg, 1).unwrap();
        let b = SyntheticDataset::generate(&cfg, 2).unwrap();
        assert_ne!(a.train()[0].image, b.train()[0].image);
    }

    #[test]
    fn labels_cover_all_classes() {
        let cfg = DatasetConfig::small();
        let data = SyntheticDataset::generate(&cfg, 3).unwrap();
        let mut seen = vec![false; cfg.classes];
        for s in data.train() {
            seen[s.label] = true;
        }
        assert!(seen.iter().all(|&v| v), "every class must appear in the train split");
    }

    #[test]
    fn easy_samples_are_closer_to_their_prototype() {
        let cfg = DatasetConfig::small();
        let data = SyntheticDataset::generate(&cfg, 11).unwrap();
        // Correlation check: distance to prototype should grow with difficulty.
        let mut pairs: Vec<(f64, f32)> = data
            .train()
            .iter()
            .map(|s| {
                let d2 = s.image.sub(&data.prototypes()[s.label]).unwrap().norm_sq();
                (s.difficulty, d2)
            })
            .collect();
        pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
        let k = pairs.len() / 4;
        let easy: f32 = pairs[..k].iter().map(|p| p.1).sum::<f32>() / k as f32;
        let hard: f32 = pairs[pairs.len() - k..].iter().map(|p| p.1).sum::<f32>() / k as f32;
        assert!(hard > easy * 2.0, "hard {hard} vs easy {easy}");
    }

    #[test]
    fn batch_shapes_and_bounds() {
        let cfg = DatasetConfig::small();
        let data = SyntheticDataset::generate(&cfg, 0).unwrap();
        let (images, labels) = data.train_batch(0, 16).unwrap();
        assert_eq!(images.shape().dims(), &[16, 3, 8, 8]);
        assert_eq!(labels.len(), 16);
        assert!(data.train_batch(60, 16).is_err());
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let mut cfg = DatasetConfig::small();
        cfg.classes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DatasetConfig::small();
        cfg.train_size = 0;
        cfg.test_size = 0;
        assert!(cfg.validate().is_err());
    }
}
