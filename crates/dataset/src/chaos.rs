//! Data-plane chaos: a seeded corruption injector that poisons training
//! samples the way real pipelines fail — flipped labels, NaN or
//! extreme-magnitude pixels, truncated reads — plus the per-sample
//! validator that catches the detectable corruptions before they reach a
//! gradient.
//!
//! Every corruption decision is a **pure function of `(seed, index)`**:
//! the same config poisons the same samples the same way on every run,
//! so a training run killed mid-epoch and resumed sees an identical
//! dataset, and the chaos tests can pin byte-identical outcomes.
//!
//! Detectability is deliberately asymmetric, mirroring reality:
//! non-finite and extreme pixels are caught by [`Sample::defect`] and
//! quarantined; *label flips are silent* — no validator can know the
//! true label — so they stay in the train split as label noise the
//! training guard must tolerate.

use crate::{DatasetError, Sample, SyntheticDataset};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Pixels beyond this magnitude are treated as corrupt by
/// [`Sample::defect`]. Clean synthetic pixels are prototype/noise blends
/// with |value| ≲ 10, so the margin is ~100×.
pub const MAX_ABS_PIXEL: f32 = 1.0e3;

/// What the per-sample validator found wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SampleDefect {
    /// A pixel was NaN or infinite (also the signature of a truncated
    /// read: missing tail data scans as non-finite).
    NonFinitePixel {
        /// Flat index of the first offending pixel.
        index: usize,
    },
    /// A pixel exceeded [`MAX_ABS_PIXEL`] in magnitude.
    ExtremePixel {
        /// Flat index of the first offending pixel.
        index: usize,
        /// The offending value.
        value: f32,
    },
    /// The label was outside the class range.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl fmt::Display for SampleDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleDefect::NonFinitePixel { index } => {
                write!(f, "non-finite pixel at flat index {index}")
            }
            SampleDefect::ExtremePixel { index, value } => {
                write!(f, "extreme pixel {value} at flat index {index}")
            }
            SampleDefect::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
        }
    }
}

impl Sample {
    /// Validates this sample: every pixel finite and within
    /// `max_abs`, label within `classes`. Returns the first defect
    /// found, or `None` for a clean sample.
    pub fn defect(&self, classes: usize, max_abs: f32) -> Option<SampleDefect> {
        if self.label >= classes {
            return Some(SampleDefect::LabelOutOfRange { label: self.label, classes });
        }
        for (i, &v) in self.image.as_slice().iter().enumerate() {
            if !v.is_finite() {
                return Some(SampleDefect::NonFinitePixel { index: i });
            }
            if v.abs() > max_abs {
                return Some(SampleDefect::ExtremePixel { index: i, value: v });
            }
        }
        None
    }
}

/// Seeded corruption rates for the train split. Kinds are drawn from
/// disjoint probability intervals, so one sample suffers at most one
/// corruption and the per-kind fractions match the configured rates in
/// expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionConfig {
    /// Seed of the pure `(seed, index)` corruption stream.
    pub seed: u64,
    /// Fraction of samples whose label is silently flipped to a
    /// different class (undetectable label noise).
    pub label_flip_rate: f64,
    /// Fraction of samples with a burst of NaN pixels.
    pub pixel_nan_rate: f64,
    /// Fraction of samples with extreme-magnitude pixels.
    pub extreme_rate: f64,
    /// Fraction of samples whose tail is truncated (tail pixels read as
    /// non-finite).
    pub truncate_rate: f64,
    /// Magnitude written by the extreme-pixel corruption.
    pub magnitude: f32,
}

impl CorruptionConfig {
    /// A no-op injector: all rates zero. Applying it is byte-identical
    /// to not applying any injector.
    pub fn clean(seed: u64) -> Self {
        CorruptionConfig {
            seed,
            label_flip_rate: 0.0,
            pixel_nan_rate: 0.0,
            extreme_rate: 0.0,
            truncate_rate: 0.0,
            magnitude: 1.0e6,
        }
    }

    /// The preset `hadas train --data-chaos SEED` uses: ~5% silent label
    /// flips plus ~10% detectable poison (NaN bursts, extreme pixels,
    /// truncated tails).
    pub fn chaos(seed: u64) -> Self {
        CorruptionConfig {
            seed,
            label_flip_rate: 0.05,
            pixel_nan_rate: 0.04,
            extreme_rate: 0.03,
            truncate_rate: 0.03,
            magnitude: 1.0e6,
        }
    }

    /// Fraction of samples the validator is expected to quarantine (the
    /// detectable corruptions; label flips are silent).
    pub fn detectable_rate(&self) -> f64 {
        self.pixel_nan_rate + self.extreme_rate + self.truncate_rate
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if any rate is outside
    /// `[0, 1]`, the rates sum past 1, or the magnitude is not a
    /// detectably-extreme finite value.
    pub fn validate(&self) -> Result<(), DatasetError> {
        let rates =
            [self.label_flip_rate, self.pixel_nan_rate, self.extreme_rate, self.truncate_rate];
        if rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
            return Err(DatasetError::InvalidConfig("corruption rates must be in [0, 1]".into()));
        }
        if rates.iter().sum::<f64>() > 1.0 {
            return Err(DatasetError::InvalidConfig(
                "corruption rates must sum to at most 1".into(),
            ));
        }
        if !self.magnitude.is_finite() || self.magnitude <= MAX_ABS_PIXEL {
            return Err(DatasetError::InvalidConfig(format!(
                "extreme magnitude must be finite and above the validator bound {MAX_ABS_PIXEL}"
            )));
        }
        Ok(())
    }
}

/// What the injector did, per train-split index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorruptionReport {
    /// Indices whose labels were silently flipped.
    pub label_flipped: Vec<usize>,
    /// Indices poisoned with NaN pixel bursts.
    pub nan_poisoned: Vec<usize>,
    /// Indices poisoned with extreme-magnitude pixels.
    pub extreme_poisoned: Vec<usize>,
    /// Indices whose tails were truncated.
    pub truncated: Vec<usize>,
}

impl CorruptionReport {
    /// Total corrupted samples.
    pub fn total(&self) -> usize {
        self.label_flipped.len()
            + self.nan_poisoned.len()
            + self.extreme_poisoned.len()
            + self.truncated.len()
    }

    /// Corruptions the validator can catch (everything except silent
    /// label flips).
    pub fn detectable(&self) -> usize {
        self.nan_poisoned.len() + self.extreme_poisoned.len() + self.truncated.len()
    }
}

/// A uniform draw in `[0, 1)`, pure in `(seed, index, salt)`.
fn draw(seed: u64, index: u64, salt: u64) -> f64 {
    let mut h = DefaultHasher::new();
    (seed, index, salt).hash(&mut h);
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

/// A raw hash word, pure in `(seed, index, salt)`.
fn word(seed: u64, index: u64, salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    (seed, index, salt, 0xC0FFEEu64).hash(&mut h);
    h.finish()
}

const SALT_KIND: u64 = 1;
const SALT_DETAIL: u64 = 2;
const SALT_COUNT: u64 = 3;

fn corrupt_sample(cfg: &CorruptionConfig, classes: usize, index: usize, sample: &mut Sample) {
    let u = draw(cfg.seed, index as u64, SALT_KIND);
    let flip_hi = cfg.label_flip_rate;
    let nan_hi = flip_hi + cfg.pixel_nan_rate;
    let extreme_hi = nan_hi + cfg.extreme_rate;
    let truncate_hi = extreme_hi + cfg.truncate_rate;
    let pixels = sample.image.len();
    if u < flip_hi {
        if classes > 1 {
            let offset = 1 + (word(cfg.seed, index as u64, SALT_DETAIL) as usize) % (classes - 1);
            sample.label = (sample.label + offset) % classes;
        }
    } else if u < nan_hi {
        let count = 1 + (word(cfg.seed, index as u64, SALT_COUNT) as usize) % 8;
        let data = sample.image.as_mut_slice();
        for k in 0..count.min(pixels) {
            let pos = (word(cfg.seed, index as u64, SALT_DETAIL.wrapping_add(k as u64)) as usize)
                % pixels;
            data[pos] = f32::NAN;
        }
    } else if u < extreme_hi {
        let count = 1 + (word(cfg.seed, index as u64, SALT_COUNT) as usize) % 8;
        let data = sample.image.as_mut_slice();
        for k in 0..count.min(pixels) {
            let w = word(cfg.seed, index as u64, SALT_DETAIL.wrapping_add(k as u64));
            let pos = (w as usize) % pixels;
            let sign = if w & (1 << 63) == 0 { 1.0 } else { -1.0 };
            data[pos] = sign * cfg.magnitude;
        }
    } else if u < truncate_hi {
        // A truncated read: the tail of the record is missing, so those
        // pixels scan as non-finite. Keep [25%, 75%) of the prefix.
        let keep_frac = 0.25 + 0.5 * draw(cfg.seed, index as u64, SALT_DETAIL);
        let keep = ((pixels as f64) * keep_frac) as usize;
        let data = sample.image.as_mut_slice();
        for v in data.iter_mut().skip(keep.max(1)) {
            *v = f32::NAN;
        }
    }
}

impl SyntheticDataset {
    /// Returns a copy of this dataset whose **train split** has been run
    /// through the corruption injector. The test split and prototypes
    /// are untouched (evaluation stays clean so corrupted-training
    /// effects are measurable).
    ///
    /// Pure in `(cfg.seed, index)`: identical inputs produce identical
    /// corruption on every run, and an all-zero-rate config returns a
    /// byte-identical dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for an invalid `cfg`.
    pub fn with_corruption(
        &self,
        cfg: &CorruptionConfig,
    ) -> Result<(SyntheticDataset, CorruptionReport), DatasetError> {
        cfg.validate()?;
        let classes = self.config().classes;
        let mut out = self.clone();
        let mut report = CorruptionReport::default();
        for (i, sample) in out.train_mut().iter_mut().enumerate() {
            let before_label = sample.label;
            let u = draw(cfg.seed, i as u64, SALT_KIND);
            corrupt_sample(cfg, classes, i, sample);
            let flip_hi = cfg.label_flip_rate;
            let nan_hi = flip_hi + cfg.pixel_nan_rate;
            let extreme_hi = nan_hi + cfg.extreme_rate;
            let truncate_hi = extreme_hi + cfg.truncate_rate;
            if u < flip_hi {
                if sample.label != before_label {
                    report.label_flipped.push(i);
                }
            } else if u < nan_hi {
                report.nan_poisoned.push(i);
            } else if u < extreme_hi {
                report.extreme_poisoned.push(i);
            } else if u < truncate_hi {
                report.truncated.push(i);
            }
        }
        Ok((out, report))
    }

    /// Validates every training sample and returns a sanitized dataset
    /// (quarantined samples removed from the train split, config's
    /// `train_size` adjusted) plus the quarantined indices, in order.
    ///
    /// Deterministic: validation is a pure scan, so kill/resume cycles
    /// see the same sanitized split.
    pub fn quarantine_train(&self, max_abs: f32) -> (SyntheticDataset, Vec<usize>) {
        let classes = self.config().classes;
        let mut quarantined = Vec::new();
        let mut clean = self.clone();
        let kept: Vec<Sample> = self
            .train()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                if s.defect(classes, max_abs).is_some() {
                    quarantined.push(i);
                    None
                } else {
                    Some(s.clone())
                }
            })
            .collect();
        clean.set_train(kept);
        (clean, quarantined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetConfig;

    fn data() -> SyntheticDataset {
        let mut cfg = DatasetConfig::small();
        cfg.train_size = 200;
        SyntheticDataset::generate(&cfg, 7).unwrap()
    }

    #[test]
    fn clean_config_is_byte_identical_to_no_injector() {
        let d = data();
        let (corrupted, report) = d.with_corruption(&CorruptionConfig::clean(3)).unwrap();
        assert_eq!(report.total(), 0);
        for (a, b) in d.train().iter().zip(corrupted.train()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn corruption_is_pure_in_seed_and_index() {
        let d = data();
        let cfg = CorruptionConfig::chaos(11);
        let (a, ra) = d.with_corruption(&cfg).unwrap();
        let (b, rb) = d.with_corruption(&cfg).unwrap();
        assert_eq!(ra, rb);
        for (x, y) in a.train().iter().zip(b.train()) {
            assert_eq!(x.label, y.label);
            assert_eq!(
                x.image.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.image.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        let (c, rc) = d.with_corruption(&CorruptionConfig::chaos(12)).unwrap();
        assert!(rc != ra || c.train() != a.train(), "different seeds should differ");
    }

    #[test]
    fn detectable_corruptions_are_quarantined_and_flips_are_silent() {
        let d = data();
        let cfg = CorruptionConfig::chaos(5);
        let (corrupted, report) = d.with_corruption(&cfg).unwrap();
        assert!(report.detectable() > 0, "chaos preset must poison something at n=200");
        let (clean, quarantined) = corrupted.quarantine_train(MAX_ABS_PIXEL);
        let mut expected: Vec<usize> = report
            .nan_poisoned
            .iter()
            .chain(&report.extreme_poisoned)
            .chain(&report.truncated)
            .copied()
            .collect();
        expected.sort_unstable();
        assert_eq!(quarantined, expected, "validator must catch exactly the detectable poison");
        assert_eq!(clean.train().len(), d.train().len() - quarantined.len());
        assert_eq!(clean.config().train_size, clean.train().len());
        // Every surviving sample is valid.
        for s in clean.train() {
            assert!(s.defect(clean.config().classes, MAX_ABS_PIXEL).is_none());
        }
        // Label flips survive sanitization (silent noise).
        if let Some(&i) = report.label_flipped.first() {
            assert!(!quarantined.contains(&i));
        }
    }

    #[test]
    fn defect_detects_each_corruption_kind() {
        let d = data();
        let classes = d.config().classes;
        let mut s = d.train()[0].clone();
        assert!(s.defect(classes, MAX_ABS_PIXEL).is_none());
        s.image.as_mut_slice()[3] = f32::NAN;
        assert!(matches!(
            s.defect(classes, MAX_ABS_PIXEL),
            Some(SampleDefect::NonFinitePixel { index: 3 })
        ));
        let mut s = d.train()[0].clone();
        s.image.as_mut_slice()[5] = 5.0e4;
        assert!(matches!(
            s.defect(classes, MAX_ABS_PIXEL),
            Some(SampleDefect::ExtremePixel { index: 5, .. })
        ));
        let mut s = d.train()[0].clone();
        s.label = classes + 1;
        assert!(matches!(
            s.defect(classes, MAX_ABS_PIXEL),
            Some(SampleDefect::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_degenerate_injectors() {
        let mut cfg = CorruptionConfig::chaos(0);
        cfg.label_flip_rate = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = CorruptionConfig::chaos(0);
        cfg.label_flip_rate = 0.5;
        cfg.pixel_nan_rate = 0.6;
        assert!(cfg.validate().is_err());
        let mut cfg = CorruptionConfig::chaos(0);
        cfg.magnitude = 1.0; // below the validator bound: undetectable
        assert!(cfg.validate().is_err());
        let mut cfg = CorruptionConfig::chaos(0);
        cfg.magnitude = f32::INFINITY;
        assert!(cfg.validate().is_err());
    }
}
