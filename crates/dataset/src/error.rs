use std::error::Error;
use std::fmt;

/// Errors produced while generating or batching synthetic data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// A configuration field was out of its valid range.
    InvalidConfig(String),
    /// A batch request referenced samples beyond the split size.
    BatchOutOfRange {
        /// First sample index requested.
        start: usize,
        /// Number of samples requested.
        len: usize,
        /// Number of samples available in the split.
        available: usize,
    },
    /// A tensor primitive failed while assembling a batch.
    Tensor(hadas_tensor::TensorError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig(msg) => write!(f, "invalid dataset config: {msg}"),
            DatasetError::BatchOutOfRange { start, len, available } => {
                write!(f, "batch [{start}, {start}+{len}) exceeds split of {available} samples")
            }
            DatasetError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hadas_tensor::TensorError> for DatasetError {
    fn from(e: hadas_tensor::TensorError) -> Self {
        DatasetError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_range() {
        let e = DatasetError::BatchOutOfRange { start: 10, len: 5, available: 12 };
        assert!(e.to_string().contains("12"));
    }
}
