use crate::DatasetError;
use rand::Rng;

/// A Kumaraswamy distribution over sample difficulty `d ∈ [0, 1]`.
///
/// CDF: `F(d) = 1 − (1 − dᵃ)ᵇ`. The closed form matters twice in this
/// reproduction:
///
/// 1. sampling per-image difficulties via the inverse CDF when generating
///    synthetic data, and
/// 2. computing, analytically, the fraction of the population a classifier
///    of capability `c` gets right — exactly the `N_i` quantity of HADAS
///    eq. (6) (see `hadas-accuracy`).
///
/// The default `(a, b) = (1.8, 2.6)` puts most mass at low-to-mid
/// difficulty with a thin hard tail, mirroring the empirical observation
/// behind early exiting: *most* inputs are easy, a *few* are hard.
///
/// ```
/// use hadas_dataset::DifficultyDistribution;
///
/// # fn main() -> Result<(), hadas_dataset::DatasetError> {
/// let d = DifficultyDistribution::new(1.8, 2.6)?;
/// assert!(d.cdf(0.0) == 0.0 && (d.cdf(1.0) - 1.0).abs() < 1e-6);
/// assert!(d.cdf(0.5) > 0.5, "most samples are easier than 0.5");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DifficultyDistribution {
    a: f64,
    b: f64,
}

impl DifficultyDistribution {
    /// Creates a distribution with shape parameters `a`, `b`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] unless both parameters are
    /// positive and finite.
    pub fn new(a: f64, b: f64) -> Result<Self, DatasetError> {
        if !(a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0) {
            return Err(DatasetError::InvalidConfig(format!(
                "Kumaraswamy shape parameters must be positive finite, got a={a}, b={b}"
            )));
        }
        Ok(DifficultyDistribution { a, b })
    }

    /// First shape parameter.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Second shape parameter.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Cumulative distribution function, clamped to `[0, 1]` outside the
    /// support.
    pub fn cdf(&self, d: f64) -> f64 {
        if d <= 0.0 {
            0.0
        } else if d >= 1.0 {
            1.0
        } else {
            1.0 - (1.0 - d.powf(self.a)).powf(self.b)
        }
    }

    /// Inverse CDF (quantile function) for `u ∈ [0, 1]`.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        (1.0 - (1.0 - u).powf(1.0 / self.b)).powf(1.0 / self.a)
    }

    /// Draws one difficulty sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen_range(0.0..1.0))
    }

    /// Mean difficulty, estimated by trapezoidal integration of `1 − F`.
    pub fn mean(&self) -> f64 {
        // E[D] = ∫₀¹ (1 − F(d)) dd for a distribution on [0, 1].
        let steps = 1000;
        let mut acc = 0.0;
        for i in 0..steps {
            let d0 = i as f64 / steps as f64;
            let d1 = (i + 1) as f64 / steps as f64;
            acc += ((1.0 - self.cdf(d0)) + (1.0 - self.cdf(d1))) * 0.5 * (d1 - d0);
        }
        acc
    }
}

impl Default for DifficultyDistribution {
    fn default() -> Self {
        // Validated constants; construction cannot fail.
        DifficultyDistribution { a: 1.8, b: 2.6 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_nonpositive_shapes() {
        assert!(DifficultyDistribution::new(0.0, 1.0).is_err());
        assert!(DifficultyDistribution::new(1.0, -2.0).is_err());
        assert!(DifficultyDistribution::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn cdf_is_monotone() {
        let d = DifficultyDistribution::default();
        let mut prev = -1.0;
        for i in 0..=100 {
            let v = d.cdf(i as f64 / 100.0);
            assert!(v >= prev, "CDF must be non-decreasing");
            prev = v;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = DifficultyDistribution::new(2.0, 3.0).unwrap();
        for &u in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let x = d.quantile(u);
            assert!((d.cdf(x) - u).abs() < 1e-9, "u={u}");
        }
    }

    #[test]
    fn samples_match_cdf_empirically() {
        let d = DifficultyDistribution::default();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let below: usize = (0..n).filter(|_| d.sample(&mut rng) <= 0.4).count();
        let expected = d.cdf(0.4);
        let got = below as f64 / n as f64;
        assert!((got - expected).abs() < 0.01, "empirical {got} vs analytic {expected}");
    }

    #[test]
    fn default_distribution_is_easy_skewed() {
        let d = DifficultyDistribution::default();
        assert!(d.mean() < 0.5, "mean difficulty {} should be below 0.5", d.mean());
        // Yet the hard tail is non-trivial: >5% of samples harder than 0.7.
        assert!(1.0 - d.cdf(0.7) > 0.05);
    }
}
