//! # hadas-dataset
//!
//! A synthetic stand-in for CIFAR-100, built for reproducing HADAS without
//! the real dataset. The substitution is behaviour-preserving because every
//! early-exit phenomenon the paper studies is driven by one quantity: the
//! *distribution of sample difficulty* — which fraction of inputs a
//! classifier of a given capability can get right. This crate makes that
//! quantity explicit:
//!
//! * [`DifficultyDistribution`] — a Kumaraswamy-family distribution over
//!   `[0, 1]` with a closed-form CDF, used both to *sample* per-image
//!   difficulties here and to *integrate* exit accuracies analytically in
//!   `hadas-accuracy`.
//! * [`SyntheticDataset`] — 100-class image data where each sample is a
//!   class prototype blended with noise in proportion to its difficulty, so
//!   harder samples genuinely require more network capacity to separate.
//!
//! ```
//! use hadas_dataset::{DatasetConfig, SyntheticDataset};
//!
//! # fn main() -> Result<(), hadas_dataset::DatasetError> {
//! let cfg = DatasetConfig::small(); // tiny config for tests/examples
//! let data = SyntheticDataset::generate(&cfg, 42)?;
//! assert_eq!(data.len(), cfg.train_size + cfg.test_size);
//! let (images, labels) = data.train_batch(0, 8)?;
//! assert_eq!(images.shape().dims()[0], labels.len());
//! # Ok(())
//! # }
//! ```

mod chaos;
mod difficulty;
mod error;
mod synth;

pub use chaos::{CorruptionConfig, CorruptionReport, SampleDefect, MAX_ABS_PIXEL};
pub use difficulty::DifficultyDistribution;
pub use error::DatasetError;
pub use synth::{DatasetConfig, Sample, SyntheticDataset};
