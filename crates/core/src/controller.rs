//! Runtime input-to-exit mapping controllers (paper §IV-C).
//!
//! HADAS optimises designs under the *ideal* mapping policy and is
//! compatible with any runtime controller from the literature. Two are
//! provided: the ideal oracle (design-time reference) and the classic
//! entropy-threshold controller (deployable).

use serde::{Deserialize, Serialize};

/// Where one input leaves the dynamic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitDecision {
    /// The input exits at the exit with this index (0-based within the
    /// placement).
    Exit(usize),
    /// No exit fired; the input runs the full backbone.
    Final,
}

/// A runtime controller: decides, per input, the first exit to take.
///
/// `difficulty` is the latent sample difficulty (available to oracles
/// only); `entropies` holds the per-exit prediction entropies in exit
/// order (available to deployable controllers). A controller uses
/// whichever signals its policy needs.
pub trait Controller: std::fmt::Debug {
    /// Decides the exit for one input.
    fn decide(&self, difficulty: f64, entropies: &[f64]) -> ExitDecision;

    /// The number of exits this controller manages.
    fn num_exits(&self) -> usize;
}

/// The ideal (oracle) mapping policy: every input exits at the first exit
/// capable of classifying it, i.e. the first whose capability threshold
/// covers the sample difficulty. This is the policy under which HADAS
/// scores designs (the `N_i` of eq. (6) are oracle quantities).
#[derive(Debug, Clone, PartialEq)]
pub struct IdealController {
    thresholds: Vec<f64>,
}

impl IdealController {
    /// Creates an oracle from per-exit capability thresholds (difficulty
    /// below which each exit is correct), in exit order.
    pub fn new(thresholds: Vec<f64>) -> Self {
        IdealController { thresholds }
    }

    /// The capability thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

impl Controller for IdealController {
    fn decide(&self, difficulty: f64, _entropies: &[f64]) -> ExitDecision {
        for (i, &t) in self.thresholds.iter().enumerate() {
            if difficulty <= t {
                return ExitDecision::Exit(i);
            }
        }
        ExitDecision::Final
    }

    fn num_exits(&self) -> usize {
        self.thresholds.len()
    }
}

/// The entropy-threshold controller of BranchyNet and successors: an input
/// exits at the first exit whose prediction entropy falls below that
/// exit's threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyController {
    thresholds: Vec<f64>,
}

impl EntropyController {
    /// Creates a controller from per-exit entropy thresholds (nats).
    pub fn new(thresholds: Vec<f64>) -> Self {
        EntropyController { thresholds }
    }

    /// A uniform-threshold controller over `n` exits.
    pub fn uniform(n: usize, threshold: f64) -> Self {
        EntropyController { thresholds: vec![threshold; n] }
    }

    /// The entropy thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

impl EntropyController {
    /// Calibrates per-exit thresholds from entropy observations: for each
    /// exit, the threshold is set at the quantile of its observed entropy
    /// distribution matching the target exit rate — the standard way
    /// deployments tune BranchyNet-style controllers on a validation set.
    ///
    /// `entropy_samples[i]` holds observed entropies at exit `i` (over
    /// inputs reaching it); `target_rates[i]` is the fraction of those
    /// inputs that should exit there.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths or any sample set
    /// is empty — calibration data is a precondition, not a runtime
    /// input.
    pub fn calibrated(entropy_samples: &[Vec<f64>], target_rates: &[f64]) -> Self {
        assert_eq!(entropy_samples.len(), target_rates.len(), "one target rate per exit required");
        let thresholds = entropy_samples
            .iter()
            .zip(target_rates.iter())
            .map(|(samples, &rate)| {
                assert!(!samples.is_empty(), "calibration needs entropy samples");
                let mut sorted = samples.clone();
                sorted.sort_by(f64::total_cmp);
                let idx = ((sorted.len() as f64 - 1.0) * rate.clamp(0.0, 1.0)) as usize;
                sorted[idx]
            })
            .collect();
        EntropyController { thresholds }
    }
}

impl Controller for EntropyController {
    fn decide(&self, _difficulty: f64, entropies: &[f64]) -> ExitDecision {
        for (i, &t) in self.thresholds.iter().enumerate() {
            if entropies.get(i).copied().unwrap_or(f64::INFINITY) <= t {
                return ExitDecision::Exit(i);
            }
        }
        ExitDecision::Final
    }

    fn num_exits(&self) -> usize {
        self.thresholds.len()
    }
}

/// A confidence-margin controller: an input exits at the first exit whose
/// (simulated) top-1/top-2 probability margin exceeds that exit's
/// threshold. The margin signal is passed in via the `entropies` slot as
/// `1 − normalised entropy`, so high values mean confident.
///
/// Compared to [`EntropyController`], margins are less sensitive to the
/// number of classes, which matters when exits at different depths see
/// differently peaked distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginController {
    thresholds: Vec<f64>,
    max_entropy: f64,
}

impl MarginController {
    /// Creates a controller from per-exit margin thresholds in `[0, 1]`,
    /// with `max_entropy` (nats) used to normalise the incoming entropy
    /// signal (ln of the class count for a uniform prior).
    pub fn new(thresholds: Vec<f64>, max_entropy: f64) -> Self {
        MarginController { thresholds, max_entropy: max_entropy.max(f64::MIN_POSITIVE) }
    }

    /// The margin thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

impl Controller for MarginController {
    fn decide(&self, _difficulty: f64, entropies: &[f64]) -> ExitDecision {
        for (i, &t) in self.thresholds.iter().enumerate() {
            let h = entropies.get(i).copied().unwrap_or(f64::INFINITY);
            let margin = 1.0 - (h / self.max_entropy).clamp(0.0, 1.0);
            if margin >= t {
                return ExitDecision::Exit(i);
            }
        }
        ExitDecision::Final
    }

    fn num_exits(&self) -> usize {
        self.thresholds.len()
    }
}

/// Aggregate outcome of serving a stream of inputs through a controller.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Fraction of inputs that left at each exit, then at the final
    /// classifier (sums to 1).
    pub exit_mix: Vec<f64>,
    /// Fraction of correctly classified inputs.
    pub accuracy: f64,
}

/// Serves a stream of `(difficulty, per-exit entropies)` samples through
/// `controller`, scoring correctness against per-exit capability
/// thresholds and the final classifier's threshold.
///
/// This is the harness both deployable controllers and the oracle run
/// through in the `deploy_controller` example and the controller tests,
/// so their numbers are directly comparable.
pub fn simulate_stream<C: Controller + ?Sized>(
    controller: &C,
    samples: &[(f64, Vec<f64>)],
    exit_thresholds: &[f64],
    final_threshold: f64,
) -> StreamReport {
    let n_exits = controller.num_exits();
    let mut exit_mix = vec![0.0f64; n_exits + 1];
    let mut correct = 0usize;
    for (difficulty, entropies) in samples {
        match controller.decide(*difficulty, entropies) {
            ExitDecision::Exit(k) => {
                exit_mix[k] += 1.0;
                if *difficulty <= exit_thresholds.get(k).copied().unwrap_or(0.0) {
                    correct += 1;
                }
            }
            ExitDecision::Final => {
                exit_mix[n_exits] += 1.0;
                if *difficulty <= final_threshold {
                    correct += 1;
                }
            }
        }
    }
    let total = samples.len().max(1) as f64;
    for m in &mut exit_mix {
        *m /= total;
    }
    StreamReport { exit_mix, accuracy: correct as f64 / total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_takes_first_capable_exit() {
        let c = IdealController::new(vec![0.3, 0.6, 0.9]);
        assert_eq!(c.decide(0.2, &[]), ExitDecision::Exit(0));
        assert_eq!(c.decide(0.5, &[]), ExitDecision::Exit(1));
        assert_eq!(c.decide(0.95, &[]), ExitDecision::Final);
    }

    #[test]
    fn entropy_controller_uses_confidence_only() {
        let c = EntropyController::uniform(2, 0.5);
        // High entropy everywhere: never exits early.
        assert_eq!(c.decide(0.0, &[2.0, 2.0]), ExitDecision::Final);
        // Confident second exit.
        assert_eq!(c.decide(0.0, &[2.0, 0.1]), ExitDecision::Exit(1));
    }

    #[test]
    fn entropy_controller_treats_missing_signals_as_unconfident() {
        let c = EntropyController::uniform(3, 0.5);
        assert_eq!(c.decide(0.0, &[0.9]), ExitDecision::Final);
    }

    #[test]
    fn controllers_are_object_safe() {
        let list: Vec<Box<dyn Controller>> = vec![
            Box::new(IdealController::new(vec![0.5])),
            Box::new(EntropyController::uniform(1, 0.4)),
            Box::new(MarginController::new(vec![0.6], 100f64.ln())),
        ];
        for c in &list {
            assert_eq!(c.num_exits(), 1);
        }
    }

    #[test]
    fn margin_controller_exits_on_confidence() {
        let max_h = 10f64.ln();
        let c = MarginController::new(vec![0.7, 0.5], max_h);
        // Very low entropy at exit 0: margin ~1 >= 0.7 -> exit 0.
        assert_eq!(c.decide(0.0, &[0.01, 2.0]), ExitDecision::Exit(0));
        // High entropy everywhere: falls through to final.
        assert_eq!(c.decide(0.0, &[max_h, max_h]), ExitDecision::Final);
        // Moderate entropy: margin at exit 1 passes its laxer threshold.
        let h = 0.6 * max_h; // margin 0.4 < 0.7 but < 0.5? 0.4 < 0.5 -> final
        assert_eq!(c.decide(0.0, &[h, h]), ExitDecision::Final);
        let h2 = 0.4 * max_h; // margin 0.6: fails 0.7 at exit 0, passes 0.5 at exit 1
        assert_eq!(c.decide(0.0, &[h2, h2]), ExitDecision::Exit(1));
    }

    #[test]
    fn calibration_hits_target_exit_rates() {
        // Entropies uniform on [0, 2]: a 0.25 target rate should land the
        // threshold near 0.5.
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 * 2.0 / 999.0).collect();
        let c = EntropyController::calibrated(&[samples.clone(), samples], &[0.25, 0.75]);
        assert!((c.thresholds()[0] - 0.5).abs() < 0.02, "{:?}", c.thresholds());
        assert!((c.thresholds()[1] - 1.5).abs() < 0.02, "{:?}", c.thresholds());
        // Serving the same distribution exits ~25% at the first exit.
        let exits = samples_exit_rate(&c, 0);
        assert!((exits - 0.25).abs() < 0.03, "rate {exits}");
    }

    fn samples_exit_rate(c: &EntropyController, exit: usize) -> f64 {
        let n = 1000;
        let hits = (0..n)
            .filter(|&i| {
                let h = i as f64 * 2.0 / (n - 1) as f64;
                c.decide(0.0, &[h, h]) == ExitDecision::Exit(exit)
            })
            .count();
        hits as f64 / n as f64
    }

    #[test]
    #[should_panic(expected = "one target rate per exit")]
    fn calibration_validates_lengths() {
        let _ = EntropyController::calibrated(&[vec![1.0]], &[0.5, 0.5]);
    }

    #[test]
    fn stream_simulation_mix_sums_to_one() {
        let oracle = IdealController::new(vec![0.3, 0.7]);
        let samples: Vec<(f64, Vec<f64>)> =
            (0..100).map(|i| (i as f64 / 100.0, vec![0.0, 0.0])).collect();
        let report = simulate_stream(&oracle, &samples, &[0.3, 0.7], 0.9);
        let total: f64 = report.exit_mix.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Difficulties are uniform on [0,1): ~30% exit 0, ~40% exit 1,
        // ~30% final, and accuracy = oracle coverage + final band.
        assert!((report.exit_mix[0] - 0.3).abs() < 0.02);
        assert!((report.exit_mix[1] - 0.4).abs() < 0.02);
        assert!((report.accuracy - 0.9).abs() < 0.02);
    }

    #[test]
    fn oracle_dominates_entropy_controller_on_the_same_stream() {
        // The oracle is the upper bound HADAS designs against.
        let thresholds = vec![0.4, 0.8];
        let oracle = IdealController::new(thresholds.clone());
        let entropy = EntropyController::uniform(2, 0.3);
        let samples: Vec<(f64, Vec<f64>)> = (0..500)
            .map(|i| {
                let d = (i as f64 * 0.618) % 1.0;
                // Entropy loosely tracks difficulty with some slack.
                let h = (2.0 * d + 0.2).min(4.0);
                (d, vec![h, h * 0.8])
            })
            .collect();
        let r_oracle = simulate_stream(&oracle, &samples, &thresholds, 0.9);
        let r_entropy = simulate_stream(&entropy, &samples, &thresholds, 0.9);
        assert!(r_oracle.accuracy >= r_entropy.accuracy - 1e-9);
    }
}
