//! Search checkpoints: serialize the OOE's whole resumable state — the
//! population, the evaluation history (with nested IOE results), and the
//! RNG's exact stream position — so a search killed mid-run (OOM, power
//! loss, Ctrl-C) continues from the last generation boundary instead of
//! starting over.
//!
//! The contract the chaos tests pin: with the same `HadasConfig`, a run
//! killed after generation `k` and resumed from its checkpoint produces
//! a **byte-identical** serialized Pareto front to an uninterrupted run.
//! Everything needed for that is in the file: genomes re-decode through
//! the search space, exit placements rebuild from positions, and the RNG
//! restarts from its four-word xoshiro state.
//!
//! Writes are atomic (temp file + rename) so a crash mid-write leaves
//! the previous checkpoint intact rather than a torn JSON.

use crate::{
    DynamicFitness, EvaluatedBackbone, HadasConfig, HadasError, IoeOutcome, IoeSolution,
    StaticFitness,
};
use hadas_exits::ExitPlacement;
use hadas_hw::DvfsSetting;
use hadas_space::SearchSpace;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Schema version of the checkpoint file; bump on breaking layout change.
pub const CHECKPOINT_SCHEMA: u32 = 1;

/// One serialized inner-engine solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSolution {
    /// Exit positions of the placement.
    pub positions: Vec<usize>,
    /// Total MBConv layers of the backbone (placement domain).
    pub total_layers: usize,
    /// DVFS ladder indices.
    pub dvfs: DvfsSetting,
    /// Exact re-measured dynamic fitness.
    pub fitness: DynamicFitness,
}

impl CheckpointSolution {
    fn from_solution(s: &IoeSolution) -> Self {
        CheckpointSolution {
            positions: s.placement.positions().to_vec(),
            total_layers: s.placement.total_layers(),
            dvfs: s.dvfs,
            fitness: s.fitness,
        }
    }

    fn to_solution(&self) -> Result<IoeSolution, HadasError> {
        Ok(IoeSolution {
            placement: ExitPlacement::new(self.positions.clone(), self.total_layers)
                .map_err(|e| HadasError::Checkpoint(format!("invalid stored placement: {e}")))?,
            dvfs: self.dvfs,
            fitness: self.fitness,
        })
    }
}

/// One serialized inner-engine outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointIoe {
    /// Every evaluated `(x, f)` point, in evaluation order.
    pub history: Vec<CheckpointSolution>,
    /// The exact-measured Pareto subset.
    pub pareto: Vec<CheckpointSolution>,
}

/// One serialized outer-engine history entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointBackbone {
    /// The backbone genome (re-decoded through the space on resume).
    pub genome: Vec<usize>,
    /// Static fitness at default DVFS.
    pub fitness: StaticFitness,
    /// Generation of first evaluation.
    pub generation: usize,
    /// Nested IOE outcome, if this backbone was promoted.
    pub ioe: Option<CheckpointIoe>,
}

/// The whole resumable search state at one generation boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// Layout version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// The configuration the interrupted run used. Resume refuses a
    /// mismatched config — splicing streams would silently break the
    /// determinism contract.
    pub config: HadasConfig,
    /// The next generation to execute (0-based).
    pub generation: usize,
    /// The outer RNG's xoshiro256** state at the generation boundary.
    pub rng_state: [u64; 4],
    /// The current population's genomes.
    pub population: Vec<Vec<usize>>,
    /// Every backbone evaluated so far, in evaluation order.
    pub history: Vec<CheckpointBackbone>,
}

impl SearchCheckpoint {
    /// Builds a checkpoint from live OOE state.
    pub fn capture(
        config: &HadasConfig,
        generation: usize,
        rng_state: [u64; 4],
        population: &[Vec<usize>],
        history: &[EvaluatedBackbone],
    ) -> Self {
        SearchCheckpoint {
            schema: CHECKPOINT_SCHEMA,
            config: config.clone(),
            generation,
            rng_state,
            population: population.to_vec(),
            history: history
                .iter()
                .map(|b| CheckpointBackbone {
                    genome: b.subnet.genome().genes().to_vec(),
                    fitness: b.fitness,
                    generation: b.generation,
                    ioe: b.ioe.as_ref().map(|o| CheckpointIoe {
                        history: o.history.iter().map(CheckpointSolution::from_solution).collect(),
                        pareto: o.pareto.iter().map(CheckpointSolution::from_solution).collect(),
                    }),
                })
                .collect(),
        }
    }

    /// Rebuilds the evaluated-backbone history against `space`.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::Checkpoint`] if a stored genome no longer
    /// decodes in the space or a stored placement is invalid.
    pub fn restore_history(
        &self,
        space: &SearchSpace,
    ) -> Result<Vec<EvaluatedBackbone>, HadasError> {
        let mut out = Vec::with_capacity(self.history.len());
        for b in &self.history {
            let subnet =
                space.decode(&hadas_space::Genome::from_genes(b.genome.clone())).map_err(|e| {
                    HadasError::Checkpoint(format!("stored genome no longer decodes: {e}"))
                })?;
            let ioe = match &b.ioe {
                None => None,
                Some(o) => Some(IoeOutcome {
                    history: o
                        .history
                        .iter()
                        .map(CheckpointSolution::to_solution)
                        .collect::<Result<_, _>>()?,
                    pareto: o
                        .pareto
                        .iter()
                        .map(CheckpointSolution::to_solution)
                        .collect::<Result<_, _>>()?,
                }),
            };
            out.push(EvaluatedBackbone {
                subnet,
                fitness: b.fitness,
                generation: b.generation,
                ioe,
            });
        }
        Ok(out)
    }

    /// Checks that this checkpoint belongs to `config`.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::Checkpoint`] on schema or config mismatch.
    pub fn validate_against(&self, config: &HadasConfig) -> Result<(), HadasError> {
        if self.schema != CHECKPOINT_SCHEMA {
            return Err(HadasError::Checkpoint(format!(
                "checkpoint schema {} unsupported (expected {CHECKPOINT_SCHEMA})",
                self.schema
            )));
        }
        if &self.config != config {
            return Err(HadasError::Checkpoint(
                "checkpoint was produced by a different configuration; \
                 resume with the same target, scale, and seed"
                    .into(),
            ));
        }
        if self.population.is_empty() {
            return Err(HadasError::Checkpoint("checkpoint has an empty population".into()));
        }
        Ok(())
    }

    /// Atomically writes the checkpoint as pretty JSON: serialize to a
    /// sibling temp file, then rename over `path`. A crash mid-write
    /// leaves the previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::Checkpoint`] on serialization or I/O errors.
    pub fn write(&self, path: &Path) -> Result<(), HadasError> {
        let payload = serde_json::to_string_pretty(self)
            .map_err(|e| HadasError::Checkpoint(format!("serialize: {e}")))?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| HadasError::Checkpoint(format!("mkdir {}: {e}", dir.display())))?;
            }
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, payload)
            .map_err(|e| HadasError::Checkpoint(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| HadasError::Checkpoint(format!("rename to {}: {e}", path.display())))?;
        Ok(())
    }

    /// Loads a checkpoint from disk.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::Checkpoint`] on I/O or parse errors.
    pub fn load(path: &Path) -> Result<Self, HadasError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| HadasError::Checkpoint(format!("read {}: {e}", path.display())))?;
        serde_json::from_str(&text)
            .map_err(|e| HadasError::Checkpoint(format!("parse {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hadas;
    use hadas_hw::HwTarget;

    fn roundtrip_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hadas-ckpt-test-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let config = HadasConfig::smoke_test();
        let outcome = hadas.run(&config).unwrap();
        let population: Vec<Vec<usize>> = outcome
            .backbones()
            .iter()
            .take(4)
            .map(|b| b.subnet.genome().genes().to_vec())
            .collect();
        let ckpt =
            SearchCheckpoint::capture(&config, 2, [1, 2, 3, 4], &population, outcome.backbones());

        let path = roundtrip_path("roundtrip");
        ckpt.write(&path).unwrap();
        let loaded = SearchCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ckpt, loaded);
        loaded.validate_against(&config).unwrap();

        let restored = loaded.restore_history(hadas.space()).unwrap();
        assert_eq!(restored.len(), outcome.backbones().len());
        for (a, b) in restored.iter().zip(outcome.backbones()) {
            assert_eq!(a.subnet.genome().genes(), b.subnet.genome().genes());
            assert_eq!(a.fitness, b.fitness);
            assert_eq!(a.ioe.is_some(), b.ioe.is_some());
        }
    }

    #[test]
    fn validate_rejects_mismatched_configs_and_schemas() {
        let config = HadasConfig::smoke_test();
        let ckpt = SearchCheckpoint::capture(&config, 0, [0; 4], &[vec![0; 4]], &[]);
        assert!(ckpt.validate_against(&config).is_ok());
        assert!(ckpt.validate_against(&config.clone().with_seed(99)).is_err());
        let mut wrong = ckpt.clone();
        wrong.schema = 0;
        assert!(wrong.validate_against(&config).is_err());
        let mut empty = ckpt;
        empty.population.clear();
        assert!(empty.validate_against(&config).is_err());
    }

    #[test]
    fn load_surfaces_missing_and_corrupt_files() {
        let missing = roundtrip_path("missing");
        assert!(matches!(SearchCheckpoint::load(&missing), Err(HadasError::Checkpoint(_))));
        let corrupt = roundtrip_path("corrupt");
        std::fs::write(&corrupt, "{not json").unwrap();
        let err = SearchCheckpoint::load(&corrupt);
        std::fs::remove_file(&corrupt).ok();
        assert!(matches!(err, Err(HadasError::Checkpoint(_))));
    }
}
