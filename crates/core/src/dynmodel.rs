use crate::{DynamicFitness, HadasError};
use hadas_accuracy::AccuracyModel;
use hadas_exits::{exit_head_cost, ExitPlacement};
use hadas_hw::{CostModel, CostReport, DvfsSetting};
use hadas_space::Subnet;

/// A fully specified dynamic model: one point `(b, x, f)` of the joint
/// HADAS space — a backbone, an exit placement, and a DVFS setting.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicModel {
    subnet: Subnet,
    placement: ExitPlacement,
    dvfs: DvfsSetting,
}

/// Everything the score function of eq. (5)–(7) needs about one dynamic
/// model, computed once.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicEvaluation {
    /// `N_i` per sampled exit, in position order (eq. (6)).
    pub exit_fractions: Vec<f64>,
    /// `dissim_i = 1 − max(N_{0..i−1})` per exit (eq. (7)).
    pub dissimilarities: Vec<f64>,
    /// Fraction of inputs that leave at each exit under ideal mapping.
    pub exit_usage: Vec<f64>,
    /// Fraction of inputs that run the full backbone.
    pub final_usage: f64,
    /// Static reference cost of the backbone at *default* DVFS.
    pub backbone_cost: CostReport,
    /// Expected dynamic cost per inference at the model's DVFS setting.
    pub dynamic_cost: CostReport,
    /// The assembled fitness.
    pub fitness: DynamicFitness,
}

impl DynamicModel {
    /// Bundles a joint-space point.
    pub fn new(subnet: Subnet, placement: ExitPlacement, dvfs: DvfsSetting) -> Self {
        DynamicModel { subnet, placement, dvfs }
    }

    /// The backbone.
    pub fn subnet(&self) -> &Subnet {
        &self.subnet
    }

    /// The exit placement.
    pub fn placement(&self) -> &ExitPlacement {
        &self.placement
    }

    /// The DVFS setting.
    pub fn dvfs(&self) -> &DvfsSetting {
        &self.dvfs
    }

    /// The per-exit score of paper eq. (6), as written:
    /// `score_i = N_i · (E_{x_i,f}/E_b) · (L_{x_i,f}/L_b) · dissim_iᵞ`.
    ///
    /// Exposed for inspection and the ablation study; the engine's
    /// selection objectives (see [`DynamicModel::evaluate`]) fold the same
    /// ingredients into a maximisation-consistent pair (quality, gain), as
    /// the paper's Fig. 5 bottom axes do.
    ///
    /// # Errors
    ///
    /// Propagates hardware model errors.
    pub fn exit_score(
        &self,
        accuracy: &AccuracyModel,
        device: &dyn CostModel,
        index: usize,
        gamma: f64,
    ) -> Result<f64, HadasError> {
        let eval = self.evaluate(accuracy, device, gamma, true)?;
        let pos = self.placement.positions()[index];
        let prefix = device.prefix_cost(&self.subnet, pos, &self.dvfs)?;
        let head = device.layer_cost(&exit_head_cost(&self.subnet, pos), &self.dvfs)?;
        let exit_cost = prefix + head;
        let n = eval.exit_fractions[index];
        let dissim = eval.dissimilarities[index];
        Ok(n * (exit_cost.energy_j / eval.backbone_cost.energy_j)
            * (exit_cost.latency_s / eval.backbone_cost.latency_s)
            * dissim.powf(gamma))
    }

    /// Evaluates the dynamic model: exit fractions, ideal-mapping usage,
    /// expected energy/latency, and the [`DynamicFitness`].
    ///
    /// Under the paper's *ideal mapping policy*, every input exits at the
    /// first exit that classifies it correctly; inputs no exit catches run
    /// the full backbone. The expected cost therefore weights each prefix
    /// (plus all exit heads passed on the way) by its usage probability.
    /// The static reference `E_b, L_b` is the plain backbone at *default*
    /// DVFS, matching how the paper normalises its gains.
    ///
    /// # Errors
    ///
    /// Propagates hardware model errors (a configuration bug, not a
    /// runtime condition, in a validated model).
    pub fn evaluate(
        &self,
        accuracy: &AccuracyModel,
        device: &dyn CostModel,
        gamma: f64,
        use_dissimilarity: bool,
    ) -> Result<DynamicEvaluation, HadasError> {
        let positions = self.placement.positions();
        // Joint (crowding-aware) fractions: redundant adjacent exits
        // measure worse than spread-out ones.
        let exit_fractions = accuracy.joint_exit_fractions(&self.subnet, positions);

        // dissim_i = 1 − max(N_{0..i−1}); the first exit has no predecessor.
        let mut dissimilarities = Vec::with_capacity(positions.len());
        let mut running_max = 0.0f64;
        for &n in &exit_fractions {
            dissimilarities.push(1.0 - running_max);
            running_max = running_max.max(n);
        }

        // Ideal-mapping usage: an input leaves at the first exit capable of
        // classifying it, so exit i newly captures max(0, N_i − best_prior).
        let mut exit_usage = Vec::with_capacity(positions.len());
        let mut best = 0.0f64;
        for &n in &exit_fractions {
            exit_usage.push((n - best).max(0.0));
            best = best.max(n);
        }
        let final_usage = 1.0 - best;

        // Static reference at default DVFS.
        let backbone_cost = device.subnet_cost(&self.subnet, &device.default_dvfs())?;

        // Expected dynamic cost at the model's DVFS setting. Inputs that
        // exit at position k paid: prefix(pos_k) + heads at exits 1..=k.
        // Inputs that never exit paid the full backbone + every head.
        let head_costs: Vec<CostReport> = positions
            .iter()
            .map(|&p| device.layer_cost(&exit_head_cost(&self.subnet, p), &self.dvfs))
            .collect::<Result<_, _>>()?;
        let mut dynamic_cost = CostReport::zero();
        let mut heads_so_far = CostReport::zero();
        for (k, &p) in positions.iter().enumerate() {
            heads_so_far = heads_so_far + head_costs[k];
            if exit_usage[k] > 0.0 {
                let prefix = device.prefix_cost(&self.subnet, p, &self.dvfs)?;
                let total = prefix + heads_so_far;
                dynamic_cost.latency_s += exit_usage[k] * total.latency_s;
                dynamic_cost.energy_j += exit_usage[k] * total.energy_j;
            }
        }
        let full = device.subnet_cost(&self.subnet, &self.dvfs)? + heads_so_far;
        dynamic_cost.latency_s += final_usage * full.latency_s;
        dynamic_cost.energy_j += final_usage * full.energy_j;

        // Eq. (5): mean over sampled exits of the regularised quality.
        let quality_terms: Vec<f64> = exit_fractions
            .iter()
            .zip(dissimilarities.iter())
            .map(|(&n, &d)| if use_dissimilarity { n * d.powf(gamma) } else { n })
            .collect();
        let exit_quality = quality_terms.iter().sum::<f64>() / quality_terms.len() as f64;
        let mean_exit_fraction = exit_fractions.iter().sum::<f64>() / exit_fractions.len() as f64;

        let fitness = DynamicFitness {
            exit_quality,
            mean_exit_fraction,
            energy_gain: 1.0 - dynamic_cost.energy_j / backbone_cost.energy_j,
            latency_gain: 1.0 - dynamic_cost.latency_s / backbone_cost.latency_s,
            accuracy_pct: accuracy.dynamic_accuracy(&self.subnet, positions),
            energy_mj: dynamic_cost.energy_mj(),
            latency_ms: dynamic_cost.latency_ms(),
        };
        Ok(DynamicEvaluation {
            exit_fractions,
            dissimilarities,
            exit_usage,
            final_usage,
            backbone_cost,
            dynamic_cost,
            fitness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadas_hw::{DeviceModel, HwTarget};
    use hadas_space::{baselines, SearchSpace};

    fn fixture() -> (Subnet, AccuracyModel, DeviceModel) {
        let space = SearchSpace::attentive_nas();
        let subnet = space.decode(&baselines::baseline_genome(3)).unwrap();
        (subnet, AccuracyModel::cifar100(), DeviceModel::for_target(HwTarget::Tx2PascalGpu))
    }

    fn model_with(positions: Vec<usize>, subnet: &Subnet, dvfs: DvfsSetting) -> DynamicModel {
        let placement = ExitPlacement::new(positions, subnet.num_mbconv_layers()).unwrap();
        DynamicModel::new(subnet.clone(), placement, dvfs)
    }

    #[test]
    fn usage_probabilities_form_a_distribution() {
        let (subnet, acc, dev) = fixture();
        let n = subnet.num_mbconv_layers();
        let m = model_with(vec![5, n / 2, n], &subnet, dev.default_dvfs());
        let e = m.evaluate(&acc, &dev, 1.0, true).unwrap();
        let total: f64 = e.exit_usage.iter().sum::<f64>() + e.final_usage;
        assert!((total - 1.0).abs() < 1e-9);
        assert!(e.exit_usage.iter().all(|&u| u >= 0.0));
        assert!(e.final_usage >= 0.0);
    }

    #[test]
    fn early_exiting_saves_energy() {
        let (subnet, acc, dev) = fixture();
        let n = subnet.num_mbconv_layers();
        let m = model_with(vec![5, n / 3, n / 2, 2 * n / 3], &subnet, dev.default_dvfs());
        let e = m.evaluate(&acc, &dev, 1.0, true).unwrap();
        assert!(
            e.fitness.energy_gain > 0.1,
            "exits should save real energy, gain = {}",
            e.fitness.energy_gain
        );
        assert!(e.dynamic_cost.energy_j < e.backbone_cost.energy_j);
    }

    #[test]
    fn dvfs_tuning_improves_on_max_clocks() {
        let (subnet, acc, dev) = fixture();
        let n = subnet.num_mbconv_layers();
        let positions = vec![5, n / 2];
        let at_max = model_with(positions.clone(), &subnet, dev.default_dvfs())
            .evaluate(&acc, &dev, 1.0, true)
            .unwrap();
        // Sweep the ladder for the best energy.
        let mut best = at_max.fitness.energy_mj;
        for c in 0..dev.ladder().compute_steps() {
            for e in 0..dev.ladder().emc_steps() {
                let m = model_with(positions.clone(), &subnet, DvfsSetting::new(c, e));
                let ev = m.evaluate(&acc, &dev, 1.0, true).unwrap();
                best = best.min(ev.fitness.energy_mj);
            }
        }
        assert!(
            best < at_max.fitness.energy_mj * 0.95,
            "an interior DVFS point should beat max clocks: best {best} vs {}",
            at_max.fitness.energy_mj
        );
    }

    #[test]
    fn dissimilarity_penalises_redundant_exits() {
        let (subnet, acc, dev) = fixture();
        let n = subnet.num_mbconv_layers();
        // Two adjacent deep exits are redundant; the second one's dissim is low.
        let m = model_with(vec![n - 1, n], &subnet, dev.default_dvfs());
        let e = m.evaluate(&acc, &dev, 1.0, true).unwrap();
        assert!((e.dissimilarities[0] - 1.0).abs() < 1e-12);
        assert!(e.dissimilarities[1] < 0.5, "deep predecessor should crush dissim");
        // Quality with regularisation must be below the unregularised mean.
        let raw = m.evaluate(&acc, &dev, 1.0, false).unwrap();
        assert!(e.fitness.exit_quality < raw.fitness.exit_quality);
    }

    #[test]
    fn gamma_zero_neutralises_the_regularizer() {
        let (subnet, acc, dev) = fixture();
        let n = subnet.num_mbconv_layers();
        let m = model_with(vec![6, n], &subnet, dev.default_dvfs());
        let with_g0 = m.evaluate(&acc, &dev, 0.0, true).unwrap();
        let without = m.evaluate(&acc, &dev, 1.0, false).unwrap();
        assert!((with_g0.fitness.exit_quality - without.fitness.exit_quality).abs() < 1e-12);
    }

    #[test]
    fn exit_score_matches_equation_six() {
        let (subnet, acc, dev) = fixture();
        let n = subnet.num_mbconv_layers();
        let m = model_with(vec![6, n / 2], &subnet, dev.default_dvfs());
        let s = m.exit_score(&acc, &dev, 0, 1.0).unwrap();
        // First exit: dissim = 1, so score = N_1 · (E_1/E_b) · (L_1/L_b).
        let e = m.evaluate(&acc, &dev, 1.0, true).unwrap();
        let prefix = dev.prefix_cost(&subnet, 6, &dev.default_dvfs()).unwrap();
        let head = dev.layer_cost(&exit_head_cost(&subnet, 6), &dev.default_dvfs()).unwrap();
        let cost = prefix + head;
        let expected = e.exit_fractions[0]
            * (cost.energy_j / e.backbone_cost.energy_j)
            * (cost.latency_s / e.backbone_cost.latency_s);
        assert!((s - expected).abs() < 1e-12);
    }

    #[test]
    fn dynamic_accuracy_beats_static() {
        let (subnet, acc, dev) = fixture();
        let n = subnet.num_mbconv_layers();
        let m = model_with(vec![5, n / 2, n], &subnet, dev.default_dvfs());
        let e = m.evaluate(&acc, &dev, 1.0, true).unwrap();
        assert!(e.fitness.accuracy_pct > acc.backbone_accuracy(&subnet));
    }
}
