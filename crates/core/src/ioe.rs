use crate::resilience::{FaultModel, NoFaults, RetryPolicy, SearchTelemetry};
use crate::{DynamicFitness, DynamicModel, Hadas, HadasConfig, HadasError};
use hadas_evo::{discrete, Nsga2, Nsga2Config, Problem};
use hadas_exits::{ExitPlacement, MIN_EXIT_POSITION};
use hadas_hw::DvfsSetting;
use hadas_space::Subnet;
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};
use std::cell::RefCell;

/// One explored point of the inner space: an exit placement, a DVFS
/// setting, and its dynamic fitness.
#[derive(Debug, Clone, PartialEq)]
pub struct IoeSolution {
    /// The exit placement `x`.
    pub placement: ExitPlacement,
    /// The DVFS setting `f`.
    pub dvfs: DvfsSetting,
    /// The dynamic fitness `D(x, f | b)`.
    pub fitness: DynamicFitness,
}

/// Outcome of one inner-engine run for a fixed backbone.
#[derive(Debug, Clone)]
pub struct IoeOutcome {
    /// Every `(x, f)` point evaluated, in evaluation order (the Fig. 5
    /// bottom scatter).
    pub history: Vec<IoeSolution>,
    /// The Pareto-optimal subset returned to the OOE (paper §IV-B.4).
    pub pareto: Vec<IoeSolution>,
}

impl IoeOutcome {
    /// Plot-axis vectors `[energy_gain, mean N_i]` of the whole history.
    pub fn history_axes(&self) -> Vec<Vec<f64>> {
        self.history.iter().map(|s| s.fitness.to_plot_axes()).collect()
    }

    /// Plot-axis vectors of the Pareto subset.
    pub fn pareto_axes(&self) -> Vec<Vec<f64>> {
        self.pareto.iter().map(|s| s.fitness.to_plot_axes()).collect()
    }

    /// The Pareto solution with the largest energy gain.
    pub fn best_energy(&self) -> Option<&IoeSolution> {
        self.pareto.iter().max_by(|a, b| a.fitness.energy_gain.total_cmp(&b.fitness.energy_gain))
    }

    /// The Pareto solution with the highest dynamic accuracy.
    pub fn best_accuracy(&self) -> Option<&IoeSolution> {
        self.pareto.iter().max_by(|a, b| a.fitness.accuracy_pct.total_cmp(&b.fitness.accuracy_pct))
    }
}

/// The inner optimization engine: NSGA-II over the joint `X × F` subspace
/// of one backbone (paper §IV-B).
///
/// Genome layout: one 0/1 indicator gene per candidate exit position
/// (positions `5..=Σl`, the paper's `[I_1 … I_{M−1}]`), then two ordered
/// genes indexing the device's compute and EMC frequency ladders.
#[derive(Debug, Clone)]
pub struct Ioe<'a> {
    hadas: &'a Hadas,
    subnet: Subnet,
    config: HadasConfig,
}

struct IoeProblem<'a> {
    hadas: &'a Hadas,
    subnet: &'a Subnet,
    candidates: Vec<usize>,
    cardinalities: Vec<usize>,
    gamma: f64,
    use_dissimilarity: bool,
    /// Substrate fault model consulted before each candidate measurement.
    faults: &'a dyn FaultModel,
    /// Retry/backoff/timeout schedule for one measurement.
    retry: &'a RetryPolicy,
    /// Salt mixed into fault keys so the inner fault stream is distinct
    /// from the search-time quality-noise stream and from other IOE runs.
    fault_salt: u64,
    /// Seed of the deterministic data-chaos injector; `None` disables
    /// NaN-poisoning of candidate measurements.
    data_chaos: Option<u64>,
    /// Fault-handling counters for this run. `Nsga2::run` drives
    /// `evaluate` from a single thread, so a `RefCell` suffices.
    telemetry: RefCell<SearchTelemetry>,
}

impl IoeProblem<'_> {
    /// Half-range of the deterministic search-time noise on the quality
    /// objective (absolute, on the `N_i`-scale of eq. (5)).
    const QUALITY_NOISE: f64 = 0.05;

    /// Finite worst-case fitness for genomes the repair could not fix;
    /// keeps dominance and crowding arithmetic well-defined.
    const INFEASIBLE_PENALTY: f64 = -1.0e30;

    fn decode(&self, genome: &[usize]) -> Result<DynamicModel, HadasError> {
        let n_ind = self.candidates.len();
        let mut positions: Vec<usize> = genome[..n_ind]
            .iter()
            .enumerate()
            .filter(|(_, &g)| g == 1)
            .map(|(k, _)| self.candidates[k])
            .collect();
        let total = self.subnet.num_mbconv_layers();
        // Repair: the placement must be non-empty and respect the nX bound.
        if positions.is_empty() {
            positions.push(self.candidates[n_ind / 2]);
        }
        let max_count = total.saturating_sub(MIN_EXIT_POSITION).max(1);
        positions.truncate(max_count);
        let placement = ExitPlacement::new(positions, total)?;
        let dvfs = DvfsSetting::new(genome[n_ind], genome[n_ind + 1]);
        Ok(DynamicModel::new(self.subnet.clone(), placement, dvfs))
    }

    /// The fault-stream identity of one candidate: a hash of the genome,
    /// the backbone, and this run's salt. Pure, so a resumed search
    /// replays identical fault histories for identical candidates.
    fn fault_key(&self, genome: &[usize]) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        genome.hash(&mut h);
        self.subnet.genome().genes().hash(&mut h);
        self.fault_salt.hash(&mut h);
        h.finish()
    }

    /// The actual (noisy-quality) measurement of one candidate — the
    /// pure computation the retry wrapper shields from substrate faults.
    fn measure(&self, genome: &Vec<usize>) -> Vec<f64> {
        // The repair in `decode` makes infeasible genomes unreachable in
        // practice; if one slips through anyway it gets a finite worst-case
        // fitness and is selected away, rather than panicking mid-search.
        let Ok(model) = self.decode(genome) else {
            return vec![Self::INFEASIBLE_PENALTY; 3];
        };
        let Ok(eval) = model.evaluate(
            self.hadas.accuracy(),
            self.hadas.device(),
            self.gamma,
            self.use_dissimilarity,
        ) else {
            return vec![Self::INFEASIBLE_PENALTY; 3];
        };
        let mut objectives = eval.fitness.to_maximisation();
        // Search-time accuracy estimates are noisy: in the paper, every
        // N_i comes from training real exit heads and measuring them on a
        // finite validation set, so the quality objective the engine sees
        // is a noisy estimate of the true one (hardware measurements are
        // comparatively exact). The noise is a deterministic function of
        // the candidate, so runs stay reproducible; reported solutions
        // are re-measured exactly. This is precisely the regime where the
        // dissimilarity prior earns its keep (Fig. 7): it stops the
        // engine from overfitting redundant exit stacks to lucky
        // estimates.
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        genome.hash(&mut h);
        model.subnet().genome().genes().hash(&mut h);
        let u = (h.finish() % 10_000) as f64 / 10_000.0;
        objectives[0] += (u * 2.0 - 1.0) * Self::QUALITY_NOISE;
        // Data chaos: a poisoned measurement comes back NaN. The
        // quarantine in `evaluate` must catch it — never the engine.
        if let Some(chaos) = self.data_chaos {
            if crate::ooe::chaos_poisons(chaos, self.fault_key(genome)) {
                objectives[0] = f64::NAN;
            }
        }
        objectives
    }
}

impl Problem for IoeProblem<'_> {
    type Genome = Vec<usize>;

    fn sample(&self, rng: &mut dyn RngCore) -> Vec<usize> {
        let mut genes: Vec<usize> =
            self.candidates.iter().map(|_| usize::from(rng.gen_bool(0.18))).collect();
        genes.push(rng.gen_range(0..self.cardinalities[self.candidates.len()]));
        genes.push(rng.gen_range(0..self.cardinalities[self.candidates.len() + 1]));
        genes
    }

    fn evaluate(&self, genome: &Vec<usize>) -> Vec<f64> {
        // Every measurement runs on a (simulated) physical substrate that
        // can glitch: consult the fault model under the retry schedule.
        // A candidate whose measurement never lands within its budget is
        // degraded to the infeasibility penalty — selected away, never
        // fatal — and counted in the run's telemetry.
        let outcome =
            self.retry.run(self.faults, self.fault_key(genome), || Ok(self.measure(genome)));
        let (value, receipt) = match outcome {
            Ok(pair) => pair,
            // `measure` is infallible (it returns penalties instead of
            // erroring), so this arm is unreachable; degrade anyway.
            Err(_) => return vec![Self::INFEASIBLE_PENALTY; 3],
        };
        self.telemetry.borrow_mut().absorb(&receipt, value.is_none());
        let objectives = value.unwrap_or_else(|| vec![Self::INFEASIBLE_PENALTY; 3]);
        // NaN-fitness quarantine: a non-finite objective vector breaks
        // every ordering axiom dominance sorting relies on, and in
        // release builds nothing would catch it — the poisoned candidate
        // could sit unchallenged in the Pareto front. Degrade it to the
        // finite worst case so it is selected away instead.
        if objectives.iter().any(|v| !v.is_finite()) {
            self.telemetry.borrow_mut().quarantined_evals += 1;
            return vec![Self::INFEASIBLE_PENALTY; 3];
        }
        objectives
    }

    fn crossover(&self, rng: &mut dyn RngCore, a: &Vec<usize>, b: &Vec<usize>) -> Vec<usize> {
        discrete::uniform_crossover(rng, a, b)
    }

    fn mutate(&self, rng: &mut dyn RngCore, genome: &Vec<usize>) -> Vec<usize> {
        let n_ind = self.candidates.len();
        // Indicators: reset-style bit flips; DVFS: ordered step moves with
        // occasional resets to escape local ladders.
        let mut out = discrete::reset_mutation(
            rng,
            &genome[..n_ind],
            &self.cardinalities[..n_ind],
            1.5 / n_ind as f64,
        );
        let dvfs_part = if rng.gen_bool(0.3) {
            discrete::reset_mutation(rng, &genome[n_ind..], &self.cardinalities[n_ind..], 0.5)
        } else {
            discrete::step_mutation(rng, &genome[n_ind..], &self.cardinalities[n_ind..], 0.7)
        };
        out.extend(dvfs_part);
        out
    }
}

impl<'a> Ioe<'a> {
    /// Creates an inner engine for `subnet`.
    pub fn new(hadas: &'a Hadas, subnet: Subnet, config: HadasConfig) -> Self {
        Ioe { hadas, subnet, config }
    }

    fn problem_with<'p>(
        &'p self,
        faults: &'p dyn FaultModel,
        retry: &'p RetryPolicy,
        fault_salt: u64,
        data_chaos: Option<u64>,
    ) -> IoeProblem<'p> {
        let candidates = ExitPlacement::candidates(self.subnet.num_mbconv_layers());
        let mut cardinalities = vec![2usize; candidates.len()];
        cardinalities.push(self.hadas.device().ladder().compute_steps());
        cardinalities.push(self.hadas.device().ladder().emc_steps());
        IoeProblem {
            hadas: self.hadas,
            subnet: &self.subnet,
            candidates,
            cardinalities,
            gamma: self.config.gamma,
            use_dissimilarity: self.config.use_dissimilarity,
            faults,
            retry,
            fault_salt,
            data_chaos,
            telemetry: RefCell::new(SearchTelemetry::default()),
        }
    }

    /// Runs the engine with the configured IOE budget on a healthy
    /// substrate — [`Ioe::run_with`] with [`NoFaults`] and the default
    /// retry schedule, telemetry discarded.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for invalid configurations,
    /// or a propagated model/placement error from re-measurement.
    pub fn run(&self, seed: u64) -> Result<IoeOutcome, HadasError> {
        self.run_with(seed, &NoFaults, &RetryPolicy::default()).map(|(outcome, _)| outcome)
    }

    /// Runs the engine under an explicit substrate fault model: every
    /// candidate measurement is retried with exponential backoff under
    /// `retry`'s per-candidate timeout budget, and candidates whose
    /// measurement never lands degrade to an infeasibility penalty
    /// instead of killing the run. Returns the outcome together with the
    /// run's fault-handling telemetry.
    ///
    /// The final reporting pass re-measures solutions *exactly* and
    /// fault-free: faults perturb what the search engine sees, never the
    /// numbers reported to the OOE.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for invalid configurations
    /// or retry schedules, or a propagated model/placement error from
    /// re-measurement.
    pub fn run_with(
        &self,
        seed: u64,
        faults: &dyn FaultModel,
        retry: &RetryPolicy,
    ) -> Result<(IoeOutcome, SearchTelemetry), HadasError> {
        self.run_with_chaos(seed, faults, retry, None)
    }

    /// [`Ioe::run_with`] plus the deterministic data-chaos injector: when
    /// `data_chaos` is set, a fixed fraction of candidate measurements
    /// come back NaN-poisoned and must be quarantined to the finite
    /// infeasibility penalty (counted in
    /// [`SearchTelemetry::quarantined_evals`]). The final reporting pass
    /// is always exact and chaos-free.
    ///
    /// # Errors
    ///
    /// Same as [`Ioe::run_with`].
    pub fn run_with_chaos(
        &self,
        seed: u64,
        faults: &dyn FaultModel,
        retry: &RetryPolicy,
        data_chaos: Option<u64>,
    ) -> Result<(IoeOutcome, SearchTelemetry), HadasError> {
        self.config.validate()?;
        retry.validate()?;
        let problem = self.problem_with(faults, retry, seed, data_chaos);
        let nsga = Nsga2::new(Nsga2Config::with_budget(
            self.config.ioe.population,
            self.config.ioe.iterations,
        ));
        let mut rng = StdRng::seed_from_u64(seed);
        let result = nsga.run(&problem, &mut rng);

        let outcome = self.outcome_from(&problem, &result)?;
        let telemetry = problem.telemetry.into_inner();
        Ok((outcome, telemetry))
    }

    /// Spends the same budget on pure random sampling of `X × F` — the
    /// standard NAS baseline ablation against the NSGA-II engine.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for invalid configurations,
    /// or a propagated model/placement error from re-measurement.
    pub fn run_random(&self, seed: u64) -> Result<IoeOutcome, HadasError> {
        self.config.validate()?;
        let retry = RetryPolicy::default();
        let problem = self.problem_with(&NoFaults, &retry, seed, None);
        let mut rng = StdRng::seed_from_u64(seed);
        let result = hadas_evo::random_search(&problem, self.config.ioe.iterations, &mut rng);
        self.outcome_from(&problem, &result)
    }

    /// Re-measures a search result exactly and keeps the truly
    /// non-dominated front (the engine selected under noisy quality
    /// estimates; reporting always uses the exact measurement pass).
    fn outcome_from(
        &self,
        problem: &IoeProblem<'_>,
        result: &hadas_evo::SearchResult<Vec<usize>>,
    ) -> Result<IoeOutcome, HadasError> {
        let to_solution = |genome: &Vec<usize>| -> Result<IoeSolution, HadasError> {
            let model = problem.decode(genome)?;
            let eval = model.evaluate(
                self.hadas.accuracy(),
                self.hadas.device(),
                self.config.gamma,
                self.config.use_dissimilarity,
            )?;
            Ok(IoeSolution {
                placement: model.placement().clone(),
                dvfs: *model.dvfs(),
                fitness: eval.fitness,
            })
        };
        let history: Vec<IoeSolution> =
            result.history().iter().map(|e| to_solution(&e.genome)).collect::<Result<_, _>>()?;
        let candidates: Vec<IoeSolution> = result
            .pareto_front()
            .iter()
            .map(|e| to_solution(&e.genome))
            .collect::<Result<_, _>>()?;
        let exact: Vec<Vec<f64>> = candidates.iter().map(|s| s.fitness.to_maximisation()).collect();
        let fronts = hadas_evo::fast_non_dominated_sort(&exact);
        let pareto: Vec<IoeSolution> = fronts
            .first()
            .map(|f| f.iter().map(|&i| candidates[i].clone()).collect())
            .unwrap_or_default();
        Ok(IoeOutcome { history, pareto })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadas_hw::HwTarget;
    use hadas_space::baselines;

    fn quick_ioe(seed: u64) -> IoeOutcome {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let subnet = hadas.space().decode(&baselines::baseline_genome(2)).unwrap();
        let cfg = HadasConfig::smoke_test();
        hadas.run_ioe(&subnet, &cfg, seed).unwrap()
    }

    #[test]
    fn history_length_matches_budget() {
        let out = quick_ioe(1);
        assert_eq!(out.history.len(), HadasConfig::smoke_test().ioe.iterations);
        assert!(!out.pareto.is_empty());
    }

    #[test]
    fn pareto_solutions_have_positive_energy_gain() {
        let out = quick_ioe(2);
        let best = out.best_energy().unwrap();
        assert!(
            best.fitness.energy_gain > 0.15,
            "IOE should find real savings, got {}",
            best.fitness.energy_gain
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick_ioe(3);
        let b = quick_ioe(3);
        assert_eq!(a.pareto_axes(), b.pareto_axes());
    }

    #[test]
    fn pareto_is_mutually_non_dominated() {
        let out = quick_ioe(4);
        let axes: Vec<Vec<f64>> = out.pareto.iter().map(|s| s.fitness.to_maximisation()).collect();
        for a in &axes {
            for b in &axes {
                assert!(!hadas_evo::dominates(a, b));
            }
        }
    }

    #[test]
    fn placements_respect_paper_rules() {
        let out = quick_ioe(5);
        for s in &out.history {
            assert!(s.placement.positions().iter().all(|&p| p >= MIN_EXIT_POSITION));
        }
    }

    /// Fails the first attempt of every measurement, then succeeds: the
    /// retry layer must absorb every fault, so the front is identical to
    /// a healthy run's and only the telemetry shows the substrate was
    /// misbehaving.
    #[derive(Debug)]
    struct FlakyOnce;
    impl crate::FaultModel for FlakyOnce {
        fn eval_attempt(&self, _key: u64, attempt: u32) -> crate::AttemptOutcome {
            if attempt == 0 {
                crate::AttemptOutcome::TransientFailure { cost_ms: 1.0 }
            } else {
                crate::AttemptOutcome::Ok { cost_ms: 1.0 }
            }
        }
    }

    #[test]
    fn recoverable_faults_leave_the_front_unchanged() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let subnet = hadas.space().decode(&baselines::baseline_genome(2)).unwrap();
        let cfg = HadasConfig::smoke_test();
        let clean = Ioe::new(&hadas, subnet.clone(), cfg.clone()).run(7).unwrap();
        let (flaky, telemetry) = Ioe::new(&hadas, subnet, cfg)
            .run_with(7, &FlakyOnce, &crate::RetryPolicy::default())
            .unwrap();
        assert_eq!(clean.pareto_axes(), flaky.pareto_axes());
        assert_eq!(clean.history_axes(), flaky.history_axes());
        assert!(telemetry.retried_evals > 0, "every eval was retried once");
        assert_eq!(telemetry.exhausted_evals, 0, "no eval ran out of budget");
        assert!(telemetry.fault_overhead_ms > 0.0);
    }
}
