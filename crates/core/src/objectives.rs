use serde::{Deserialize, Serialize};

/// Static fitness `S(b)` of a backbone as a standalone model (paper
/// eq. (3)): accuracy, latency, and energy at the device's default DVFS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticFitness {
    /// Top-1 accuracy in percent.
    pub accuracy_pct: f64,
    /// Inference latency in milliseconds.
    pub latency_ms: f64,
    /// Inference energy in millijoules.
    pub energy_mj: f64,
}

impl StaticFitness {
    /// The NSGA-II maximisation vector `[acc, −latency, −energy]`.
    pub fn to_maximisation(self) -> Vec<f64> {
        vec![self.accuracy_pct, -self.latency_ms, -self.energy_mj]
    }

    /// The 2-D view the paper plots in Fig. 5 top: `[acc, −energy]`.
    pub fn to_plot_axes(self) -> Vec<f64> {
        vec![self.accuracy_pct, -self.energy_mj]
    }

    /// Whether every component is a finite number. A NaN or infinite
    /// fitness must never enter dominance arithmetic — the engines
    /// quarantine it to a finite worst-case penalty instead.
    pub fn is_finite(self) -> bool {
        self.accuracy_pct.is_finite() && self.latency_ms.is_finite() && self.energy_mj.is_finite()
    }
}

/// Dynamic fitness `D(x, f | b)` of a multi-exit model with a DVFS
/// setting: the two axes the paper's Fig. 5 bottom plots, plus the raw
/// dynamic costs backing them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicFitness {
    /// The regularised mean exit quality of eq. (5)–(6): the average of
    /// `N_i · dissim_iᵞ` over sampled exits.
    pub exit_quality: f64,
    /// Mean of the raw `N_i` values (the Fig. 5 bottom y-axis).
    pub mean_exit_fraction: f64,
    /// Energy-efficiency gain over the static backbone at default DVFS:
    /// `1 − E_dyn / E_b` (the Fig. 5 bottom x-axis).
    pub energy_gain: f64,
    /// Latency gain `1 − L_dyn / L_b`.
    pub latency_gain: f64,
    /// Ideal-mapping top-1 accuracy of the dynamic model in percent.
    pub accuracy_pct: f64,
    /// Expected dynamic energy per inference in millijoules.
    pub energy_mj: f64,
    /// Expected dynamic latency per inference in milliseconds.
    pub latency_ms: f64,
}

impl DynamicFitness {
    /// The NSGA-II maximisation vector used by the inner engine:
    /// `[exit_quality, energy_gain, latency_gain]` — quality regularised by
    /// `dissimᵞ` per eq. (6), and both normalised hardware ratios of
    /// eq. (6) as efficiency objectives. Keeping latency in the front is
    /// what lets deployment later trade *latency slack* for lower DVFS
    /// frequencies without ending up slower than the static baseline.
    pub fn to_maximisation(self) -> Vec<f64> {
        vec![self.exit_quality, self.energy_gain, self.latency_gain]
    }

    /// The 2-D view the paper plots in Fig. 5 bottom:
    /// `[energy_gain, mean_exit_fraction]`.
    pub fn to_plot_axes(self) -> Vec<f64> {
        vec![self.energy_gain, self.mean_exit_fraction]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_maximisation_negates_costs() {
        let s = StaticFitness { accuracy_pct: 87.0, latency_ms: 20.0, energy_mj: 170.0 };
        assert_eq!(s.to_maximisation(), vec![87.0, -20.0, -170.0]);
        assert_eq!(s.to_plot_axes(), vec![87.0, -170.0]);
    }

    #[test]
    fn dynamic_axes_follow_figure_5() {
        let d = DynamicFitness {
            exit_quality: 0.5,
            mean_exit_fraction: 0.6,
            energy_gain: 0.4,
            latency_gain: 0.3,
            accuracy_pct: 90.0,
            energy_mj: 100.0,
            latency_ms: 12.0,
        };
        assert_eq!(d.to_plot_axes(), vec![0.4, 0.6]);
        assert_eq!(d.to_maximisation(), vec![0.5, 0.4, 0.3]);
    }
}
