//! The related-work capability matrix of the paper's Table I.
//!
//! Kept as data so the `table1_related` bench binary can print the table
//! and tests can assert HADAS's claimed position (the only framework with
//! all four capabilities).

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelatedWork {
    /// Published name.
    pub name: &'static str,
    /// Supports early-exiting.
    pub early_exiting: bool,
    /// Performs neural architecture search.
    pub nas: bool,
    /// Co-optimises DVFS settings.
    pub dvfs: bool,
    /// Compatible with existing state-of-the-art NAS supernets.
    pub compatibility: bool,
}

/// The comparison matrix exactly as printed in the paper.
pub const TABLE_I: [RelatedWork; 8] = [
    RelatedWork {
        name: "BranchyNet",
        early_exiting: true,
        nas: false,
        dvfs: false,
        compatibility: false,
    },
    RelatedWork {
        name: "CDLN",
        early_exiting: true,
        nas: false,
        dvfs: false,
        compatibility: false,
    },
    RelatedWork {
        name: "S2dnas",
        early_exiting: true,
        nas: true,
        dvfs: false,
        compatibility: false,
    },
    RelatedWork {
        name: "Dynamic-OFA",
        early_exiting: false,
        nas: true,
        dvfs: false,
        compatibility: true,
    },
    RelatedWork {
        name: "EExNAS",
        early_exiting: true,
        nas: true,
        dvfs: false,
        compatibility: false,
    },
    RelatedWork {
        name: "Edgebert",
        early_exiting: true,
        nas: false,
        dvfs: true,
        compatibility: false,
    },
    RelatedWork {
        name: "Predictive Exit",
        early_exiting: true,
        nas: false,
        dvfs: true,
        compatibility: false,
    },
    RelatedWork { name: "HADAS", early_exiting: true, nas: true, dvfs: true, compatibility: true },
];

impl RelatedWork {
    /// Number of supported capabilities.
    pub fn capability_count(&self) -> usize {
        usize::from(self.early_exiting)
            + usize::from(self.nas)
            + usize::from(self.dvfs)
            + usize::from(self.compatibility)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadas_is_the_only_full_row() {
        let full: Vec<&str> =
            TABLE_I.iter().filter(|w| w.capability_count() == 4).map(|w| w.name).collect();
        assert_eq!(full, vec!["HADAS"]);
    }

    #[test]
    fn every_related_work_misses_dvfs_or_nas() {
        for w in TABLE_I.iter().filter(|w| w.name != "HADAS") {
            assert!(!w.nas || !w.dvfs, "{} should not co-optimise NAS and DVFS", w.name);
        }
    }
}
