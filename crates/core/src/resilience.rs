//! Fault-tolerant candidate evaluation: retry with exponential backoff
//! under a per-candidate timeout budget.
//!
//! On real Jetson-class substrates, candidate scoring is a *measurement*:
//! it can fail transiently (a DVFS latch glitch, a busy power rail, a
//! sensor hiccup) or hang past its deadline. The search must not die on
//! the first such failure, and it must not spin forever on a candidate
//! whose measurement never lands. This module gives both engines the
//! wrapper they need:
//!
//! * [`FaultModel`] — the injection point. The default [`NoFaults`] makes
//!   every attempt succeed instantly; `hadas-runtime`'s `FaultInjector`
//!   implements it to perturb OOE/IOE scoring deterministically.
//! * [`RetryPolicy`] — attempts × exponential backoff × timeout budget.
//!   All time is *simulated* (the substrate is a model), so retries are
//!   free at test speed but the accounting mirrors a real deployment.
//!
//! Determinism contract: a [`FaultModel`] must be a pure function of
//! `(key, attempt)`. That is what makes a resumed search replay the very
//! same fault history as an uninterrupted one — the chaos tests pin it.

use serde::{Deserialize, Serialize};

/// The fate of one evaluation attempt, as decided by a [`FaultModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt completes; the measurement is valid.
    Ok {
        /// Simulated wall-clock cost of the attempt in milliseconds.
        cost_ms: f64,
    },
    /// The attempt fails transiently (retryable).
    TransientFailure {
        /// Simulated milliseconds burned before the failure surfaced.
        cost_ms: f64,
    },
    /// The attempt hangs until its per-attempt deadline fires.
    Timeout {
        /// Simulated milliseconds lost to the hang (the deadline).
        cost_ms: f64,
    },
}

/// Decides the fate of evaluation attempts. Implementations MUST be pure
/// functions of `(key, attempt)` — the resumability guarantee of the
/// search depends on replayed attempts seeing identical outcomes.
pub trait FaultModel: Send + Sync + std::fmt::Debug {
    /// The outcome of attempt number `attempt` (0-based) at evaluating
    /// the candidate identified by `key`.
    fn eval_attempt(&self, key: u64, attempt: u32) -> AttemptOutcome;
}

/// The healthy substrate: every attempt succeeds instantly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn eval_attempt(&self, _key: u64, _attempt: u32) -> AttemptOutcome {
        AttemptOutcome::Ok { cost_ms: 0.0 }
    }
}

/// Retry schedule for one candidate evaluation: up to `max_attempts`
/// tries, exponential backoff between them, all bounded by a simulated
/// per-candidate timeout budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per candidate (≥ 1).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base_backoff_ms · factor^(k−1)`.
    pub base_backoff_ms: f64,
    /// Exponential backoff growth factor (≥ 1).
    pub backoff_factor: f64,
    /// Total simulated milliseconds a candidate may consume across
    /// attempts and backoff before the search gives up on it.
    pub timeout_budget_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10.0,
            backoff_factor: 2.0,
            timeout_budget_ms: 2_000.0,
        }
    }
}

/// What one retried evaluation cost, successful or not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryReceipt {
    /// Attempts made (≥ 1 unless the budget was already empty).
    pub attempts: u32,
    /// Transient failures absorbed along the way.
    pub transient_failures: u32,
    /// Attempt-level timeouts absorbed along the way.
    pub timeouts: u32,
    /// Simulated milliseconds spent on attempts plus backoff.
    pub spent_ms: f64,
}

impl RetryPolicy {
    /// Validates the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HadasError::InvalidConfig`] for a zero attempt
    /// count, a sub-unit backoff factor, or non-finite/negative budgets.
    pub fn validate(&self) -> Result<(), crate::HadasError> {
        if self.max_attempts == 0 {
            return Err(crate::HadasError::InvalidConfig("retry policy needs ≥ 1 attempt".into()));
        }
        if self.backoff_factor < 1.0 || !self.backoff_factor.is_finite() {
            return Err(crate::HadasError::InvalidConfig(format!(
                "backoff factor {} must be a finite value ≥ 1",
                self.backoff_factor
            )));
        }
        let backoff_ok = self.base_backoff_ms >= 0.0 && self.base_backoff_ms.is_finite();
        let budget_ok = self.timeout_budget_ms > 0.0;
        if !backoff_ok || !budget_ok {
            return Err(crate::HadasError::InvalidConfig(
                "backoff must be ≥ 0 ms and the timeout budget positive".into(),
            ));
        }
        Ok(())
    }

    /// Runs `work` under this schedule, consulting `faults` before each
    /// attempt. Returns `Ok((Some(value), receipt))` on success,
    /// `Ok((None, receipt))` when the fault budget is exhausted — the
    /// caller degrades the candidate (infeasibility penalty / skipped
    /// promotion) instead of aborting the whole search. Hard errors from
    /// `work` itself (configuration bugs) propagate immediately.
    ///
    /// # Errors
    ///
    /// Only errors returned by `work`.
    pub fn run<T>(
        &self,
        faults: &dyn FaultModel,
        key: u64,
        mut work: impl FnMut() -> Result<T, crate::HadasError>,
    ) -> Result<(Option<T>, RetryReceipt), crate::HadasError> {
        let mut receipt =
            RetryReceipt { attempts: 0, transient_failures: 0, timeouts: 0, spent_ms: 0.0 };
        let mut backoff = self.base_backoff_ms;
        for attempt in 0..self.max_attempts {
            receipt.attempts = attempt + 1;
            match faults.eval_attempt(key, attempt) {
                AttemptOutcome::Ok { cost_ms } => {
                    receipt.spent_ms += cost_ms.max(0.0);
                    if receipt.spent_ms > self.timeout_budget_ms {
                        // The successful attempt landed after the
                        // candidate's deadline: the measurement is void.
                        receipt.timeouts += 1;
                        return Ok((None, receipt));
                    }
                    return Ok((Some(work()?), receipt));
                }
                AttemptOutcome::TransientFailure { cost_ms } => {
                    receipt.transient_failures += 1;
                    receipt.spent_ms += cost_ms.max(0.0);
                }
                AttemptOutcome::Timeout { cost_ms } => {
                    receipt.timeouts += 1;
                    receipt.spent_ms += cost_ms.max(0.0);
                }
            }
            // Exponential backoff before the next attempt (simulated).
            receipt.spent_ms += backoff;
            backoff *= self.backoff_factor;
            if receipt.spent_ms > self.timeout_budget_ms {
                return Ok((None, receipt));
            }
        }
        Ok((None, receipt))
    }
}

/// The state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: work flows with the full retry budget.
    Closed,
    /// Tripped: callers fast-fail (one attempt, no retries) while the
    /// cooldown drains.
    Open,
    /// Cooldown elapsed: the next unit of work is a probe — success
    /// re-closes the breaker, failure re-opens it.
    HalfOpen,
}

/// A deterministic circuit breaker over consecutive failures.
///
/// The serving supervisor folds one `record_*` call per batch *in
/// schedule order* (after one [`CircuitBreaker::tick`] per batch), so
/// the breaker trajectory — and therefore the retry budget it grants
/// each batch — is a pure function of the fault history. No wall clocks:
/// "time" is the unit of work itself, which is what keeps chaos runs
/// replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u32,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    trips: usize,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// (≥ 1; zero is saturated to 1) and staying open for `cooldown`
    /// units of work before probing.
    pub fn new(threshold: u32, cooldown: u32) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            trips: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether callers should fast-fail (open breaker).
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// How often the breaker has tripped (closed/half-open → open).
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Advances one unit of work: drains the cooldown of an open breaker
    /// and moves it to half-open when the cooldown elapses. Call exactly
    /// once per unit of work, before consulting [`CircuitBreaker::is_open`].
    pub fn tick(&mut self) {
        if self.state == BreakerState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    /// Records a successful unit of work.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
        }
    }

    /// Records a failed unit of work, tripping the breaker when the
    /// consecutive-failure threshold is reached (or immediately when a
    /// half-open probe fails).
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let probe_failed = self.state == BreakerState::HalfOpen;
        if probe_failed
            || (self.state == BreakerState::Closed && self.consecutive_failures >= self.threshold)
        {
            self.state = BreakerState::Open;
            self.cooldown_left = self.cooldown.max(1);
            self.trips += 1;
            self.consecutive_failures = 0;
        }
    }
}

/// Aggregate fault-handling telemetry of one search run. Not part of the
/// deterministic Pareto payload: an interrupted-and-resumed run replays
/// only the tail of the fault history, so counters may legitimately
/// differ from an uninterrupted run's while the front stays identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchTelemetry {
    /// Candidate evaluations that needed more than one attempt.
    pub retried_evals: usize,
    /// Transient failures absorbed across all evaluations.
    pub transient_failures: usize,
    /// Attempt-level timeouts absorbed across all evaluations.
    pub timeouts: usize,
    /// Candidates abandoned after their whole retry/timeout budget.
    pub exhausted_evals: usize,
    /// Evaluations whose fitness came back non-finite (NaN/∞) — from a
    /// poisoned measurement or injected data chaos — and were quarantined
    /// to the finite worst-case penalty instead of entering dominance
    /// arithmetic.
    pub quarantined_evals: usize,
    /// Simulated milliseconds spent on retries and backoff.
    pub fault_overhead_ms: f64,
    /// Generations fully completed by this run (resumed runs count from
    /// their checkpoint).
    pub generations_completed: usize,
    /// Whether the run stopped early (abort flag or time budget) and
    /// emitted a partial Pareto front.
    pub interrupted: bool,
}

impl SearchTelemetry {
    /// Folds one evaluation's receipt into the run totals.
    pub fn absorb(&mut self, receipt: &RetryReceipt, exhausted: bool) {
        if receipt.attempts > 1 {
            self.retried_evals += 1;
        }
        self.transient_failures += receipt.transient_failures as usize;
        self.timeouts += receipt.timeouts as usize;
        self.fault_overhead_ms += receipt.spent_ms;
        if exhausted {
            self.exhausted_evals += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fails the first `fail_first` attempts of every key transiently.
    #[derive(Debug)]
    struct FlakyFirst {
        fail_first: u32,
    }

    impl FaultModel for FlakyFirst {
        fn eval_attempt(&self, _key: u64, attempt: u32) -> AttemptOutcome {
            if attempt < self.fail_first {
                AttemptOutcome::TransientFailure { cost_ms: 5.0 }
            } else {
                AttemptOutcome::Ok { cost_ms: 1.0 }
            }
        }
    }

    #[test]
    fn no_faults_succeeds_first_try() {
        let policy = RetryPolicy::default();
        let (value, receipt) = policy.run(&NoFaults, 1, || Ok(42)).unwrap();
        assert_eq!(value, Some(42));
        assert_eq!(receipt.attempts, 1);
        assert_eq!(receipt.spent_ms, 0.0);
    }

    #[test]
    fn transient_failures_are_retried_with_backoff() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10.0,
            backoff_factor: 2.0,
            timeout_budget_ms: 1_000.0,
        };
        let (value, receipt) = policy.run(&FlakyFirst { fail_first: 2 }, 7, || Ok("ok")).unwrap();
        assert_eq!(value, Some("ok"));
        assert_eq!(receipt.attempts, 3);
        assert_eq!(receipt.transient_failures, 2);
        // 5 + 10 (backoff) + 5 + 20 (backoff) + 1 = 41 simulated ms.
        assert!((receipt.spent_ms - 41.0).abs() < 1e-9, "spent {}", receipt.spent_ms);
    }

    #[test]
    fn budget_exhaustion_gives_up_gracefully() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_ms: 100.0,
            backoff_factor: 2.0,
            timeout_budget_ms: 250.0,
        };
        let mut calls = 0usize;
        let (value, receipt) = policy
            .run(&FlakyFirst { fail_first: 99 }, 7, || {
                calls += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(value, None, "budget exhaustion must not yield a value");
        assert_eq!(calls, 0, "work never ran");
        assert!(receipt.spent_ms > 250.0 || receipt.attempts == policy.max_attempts);
    }

    #[test]
    fn attempt_cap_gives_up_too() {
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 0.0,
            backoff_factor: 1.0,
            timeout_budget_ms: 1e9,
        };
        let (value, receipt) = policy.run(&FlakyFirst { fail_first: 99 }, 3, || Ok(0u8)).unwrap();
        assert_eq!(value, None);
        assert_eq!(receipt.attempts, 2);
    }

    #[test]
    fn hard_errors_propagate() {
        let policy = RetryPolicy::default();
        let err = policy
            .run(&NoFaults, 1, || -> Result<(), _> {
                Err(crate::HadasError::Internal("boom".into()))
            })
            .unwrap_err();
        assert!(matches!(err, crate::HadasError::Internal(_)));
    }

    #[test]
    fn validate_rejects_degenerate_schedules() {
        let mut p = RetryPolicy::default();
        assert!(p.validate().is_ok());
        p.max_attempts = 0;
        assert!(p.validate().is_err());
        let p = RetryPolicy { backoff_factor: 0.5, ..RetryPolicy::default() };
        assert!(p.validate().is_err());
        let p = RetryPolicy { timeout_budget_ms: 0.0, ..RetryPolicy::default() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn breaker_trips_on_consecutive_failures_and_recovers() {
        let mut b = CircuitBreaker::new(3, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..2 {
            b.tick();
            b.record_failure();
        }
        assert!(!b.is_open(), "two failures stay under the threshold");
        b.tick();
        b.record_failure();
        assert!(b.is_open(), "third consecutive failure trips");
        assert_eq!(b.trips(), 1);
        // Cooldown: one tick drains one unit; after two the probe opens.
        b.tick();
        assert!(b.is_open());
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed, "a good probe re-closes");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = CircuitBreaker::new(1, 1);
        b.tick();
        b.record_failure();
        assert!(b.is_open());
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure();
        assert!(b.is_open(), "a failed probe must not wait for the threshold");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = CircuitBreaker::new(2, 1);
        b.tick();
        b.record_failure();
        b.tick();
        b.record_success();
        b.tick();
        b.record_failure();
        assert!(!b.is_open(), "non-consecutive failures never trip");
        let b2 = CircuitBreaker::new(0, 0);
        assert_eq!(b2, CircuitBreaker::new(1, 0), "zero threshold saturates to one");
    }

    #[test]
    fn breaker_trajectory_is_deterministic() {
        let fates = [true, true, true, false, true, true, true, true, false];
        let run = || {
            let mut b = CircuitBreaker::new(2, 2);
            let mut log = Vec::new();
            for &fail in &fates {
                b.tick();
                log.push((b.state(), b.is_open()));
                if fail {
                    b.record_failure();
                } else {
                    b.record_success();
                }
            }
            (log, b.trips())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_folds_receipts() {
        let mut t = SearchTelemetry::default();
        t.absorb(
            &RetryReceipt { attempts: 3, transient_failures: 2, timeouts: 0, spent_ms: 40.0 },
            false,
        );
        t.absorb(
            &RetryReceipt { attempts: 4, transient_failures: 1, timeouts: 3, spent_ms: 500.0 },
            true,
        );
        assert_eq!(t.retried_evals, 2);
        assert_eq!(t.transient_failures, 3);
        assert_eq!(t.timeouts, 3);
        assert_eq!(t.exhausted_evals, 1);
        assert!((t.fault_overhead_ms - 540.0).abs() < 1e-9);
    }
}
