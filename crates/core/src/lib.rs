//! # hadas
//!
//! The core of the HADAS reproduction: **H**ardware-**A**ware **D**ynamic
//! neural **A**rchitecture **S**earch (Bouzidi et al., DATE 2023).
//!
//! HADAS jointly optimises three coupled subspaces for dynamic neural
//! networks on edge SoCs:
//!
//! * **B** — backbone architectures (subnets of an AttentiveNAS-style
//!   supernet, from `hadas-space`),
//! * **X** — early-exit placements (from `hadas-exits`),
//! * **F** — DVFS settings of the target device (from `hadas-hw`),
//!
//! as a bi-level problem (paper eq. (1)–(2)): an [`Ooe`] (outer
//! optimization engine) searches **B** under static objectives
//! `S = (accuracy, latency, energy)`, and for each promising backbone
//! invokes an [`Ioe`] (inner optimization engine) that co-searches
//! **X** × **F** under the dynamic score `D` of eq. (5)–(7), including the
//! `dissimᵞ` regularizer.
//!
//! ```no_run
//! use hadas::{Hadas, HadasConfig};
//! use hadas_hw::HwTarget;
//!
//! # fn main() -> Result<(), hadas::HadasError> {
//! let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
//! let result = hadas.run(&HadasConfig::smoke_test())?;
//! for model in result.pareto_models() {
//!     println!(
//!         "acc {:.2}%  energy {:.1} mJ  exits {:?}",
//!         model.dynamic.accuracy_pct,
//!         model.dynamic.energy_mj,
//!         model.placement.positions()
//!     );
//! }
//! # Ok(())
//! # }
//! ```
//!
//! The two engines are deterministic given [`HadasConfig::seed`]; every
//! table and figure of the paper regenerates from `hadas-bench` binaries.

mod checkpoint;
pub mod clock;
mod config;
mod controller;
mod deployment;
mod dynmodel;
mod error;
pub mod executor;
mod ioe;
mod objectives;
mod ooe;
pub mod related;
pub mod report;
mod resilience;

pub use checkpoint::{
    CheckpointBackbone, CheckpointIoe, CheckpointSolution, SearchCheckpoint, CHECKPOINT_SCHEMA,
};
pub use clock::Deadline;
pub use config::{EngineBudget, HadasConfig};
pub use controller::{
    simulate_stream, Controller, EntropyController, ExitDecision, IdealController,
    MarginController, StreamReport,
};
pub use deployment::DeploymentPicker;
pub use dynmodel::{DynamicEvaluation, DynamicModel};
pub use error::HadasError;
pub use executor::{ExecTelemetry, FateResolver};
pub use ioe::{Ioe, IoeOutcome, IoeSolution};
pub use objectives::{DynamicFitness, StaticFitness};
pub use ooe::{EvaluatedBackbone, JointModel, Ooe, OoeOutcome, SearchOptions};
pub use resilience::{
    AttemptOutcome, BreakerState, CircuitBreaker, FaultModel, NoFaults, RetryPolicy, RetryReceipt,
    SearchTelemetry,
};

use hadas_accuracy::AccuracyModel;
use hadas_hw::{CostModel, DeviceModel, HwTarget};
use hadas_space::SearchSpace;
use std::sync::Arc;

/// The assembled HADAS framework: search space, accuracy surrogate, and
/// hardware cost model for one deployment target.
///
/// The cost model is pluggable: the calibrated hardware-in-the-loop
/// simulator ([`DeviceModel`]) by default, or a learned proxy
/// ([`hadas_hw::ProxyCostModel`] via [`Hadas::with_cost_model`]) for the
/// fast-search mode the paper's §V-A discusses.
#[derive(Debug, Clone)]
pub struct Hadas {
    space: SearchSpace,
    accuracy: AccuracyModel,
    device: Arc<dyn CostModel>,
}

impl Hadas {
    /// Assembles the framework from explicit components with the exact
    /// (hardware-in-the-loop) cost model.
    pub fn new(space: SearchSpace, accuracy: AccuracyModel, device: DeviceModel) -> Self {
        Hadas { space, accuracy, device: Arc::new(device) }
    }

    /// Assembles the framework around any [`CostModel`] — e.g. a fitted
    /// [`hadas_hw::ProxyCostModel`] replacing hardware in the loop.
    pub fn with_cost_model(
        space: SearchSpace,
        accuracy: AccuracyModel,
        device: Arc<dyn CostModel>,
    ) -> Self {
        Hadas { space, accuracy, device }
    }

    /// The standard configuration for one of the paper's four hardware
    /// targets: AttentiveNAS space, CIFAR-100 surrogate, calibrated device.
    pub fn for_target(target: HwTarget) -> Self {
        Hadas::new(
            SearchSpace::attentive_nas(),
            AccuracyModel::cifar100(),
            DeviceModel::for_target(target),
        )
    }

    /// The backbone search space **B**.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The accuracy surrogate.
    pub fn accuracy(&self) -> &AccuracyModel {
        &self.accuracy
    }

    /// The hardware cost model defining **F**.
    pub fn device(&self) -> &dyn CostModel {
        self.device.as_ref()
    }

    /// Runs the full bi-level search (OOE with nested IOEs).
    ///
    /// # Errors
    ///
    /// Propagates hardware or placement errors from the evaluation path
    /// (these indicate configuration bugs; a healthy run never errors).
    pub fn run(&self, config: &HadasConfig) -> Result<OoeOutcome, HadasError> {
        Ooe::new(self, config.clone()).run()
    }

    /// Runs the full bi-level search under explicit robustness options:
    /// fault-injected scoring, per-generation checkpointing, resume, and
    /// graceful early stop with a partial Pareto front.
    ///
    /// # Errors
    ///
    /// Returns configuration, checkpoint, or evaluation errors; transient
    /// substrate faults are absorbed per [`SearchOptions`], not returned.
    pub fn run_with(
        &self,
        config: &HadasConfig,
        opts: &SearchOptions,
    ) -> Result<OoeOutcome, HadasError> {
        Ooe::new(self, config.clone()).run_with(opts)
    }

    /// Runs only the inner engine for one fixed backbone (used for the
    /// "optimized baselines" comparison and the dissimilarity ablation).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors as in [`Hadas::run`].
    pub fn run_ioe(
        &self,
        subnet: &hadas_space::Subnet,
        config: &HadasConfig,
        seed: u64,
    ) -> Result<IoeOutcome, HadasError> {
        Ioe::new(self, subnet.clone(), config.clone()).run(seed)
    }

    /// Spends the same inner budget on pure random sampling — the NAS
    /// baseline ablation against the NSGA-II inner engine.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors as in [`Hadas::run`].
    pub fn run_ioe_random(
        &self,
        subnet: &hadas_space::Subnet,
        config: &HadasConfig,
        seed: u64,
    ) -> Result<IoeOutcome, HadasError> {
        Ioe::new(self, subnet.clone(), config.clone()).run_random(seed)
    }
}
