//! The virtual-time boundary: the one sanctioned place library code may
//! read the wall clock.
//!
//! The determinism audit (`hadas-lint`'s `wall-clock-in-lib`) forbids
//! `Instant::now()` / `SystemTime::now()` in library code: ad-hoc clock
//! reads make time-budget decisions differ run to run and are invisible
//! to tests. Instead, time-budgeted code takes a [`Deadline`]:
//!
//! - [`Deadline::unbounded`] — never expires; the default for tests and
//!   for runs whose stopping rule is generation-count or cooperative
//!   abort. Fully deterministic.
//! - [`Deadline::wall`] — anchors a wall-clock budget **here**, behind
//!   reviewed `lint:allow(det-wall-clock)` escapes, so every clock read
//!   in the workspace's libraries flows through one audited seam.
//!
//! Callers that used to take `time_budget_s: Option<f64>` and call
//! `Instant::now()` internally now accept a `Deadline` built at the
//! binary/CLI boundary.

use std::time::Instant;

/// A stopping rule over elapsed wall time, constructed at the ambient
/// boundary (a binary or the CLI) and passed into library code.
#[derive(Debug, Clone, Copy, Default)]
pub enum Deadline {
    /// Never expires — deterministic, the default.
    #[default]
    Unbounded,
    /// Expires once `budget_s` seconds of wall time have elapsed since
    /// the anchor instant.
    Wall {
        /// When the budget started counting.
        started: Instant,
        /// The budget, in seconds.
        budget_s: f64,
    },
}

impl Deadline {
    /// A deadline that never expires.
    pub fn unbounded() -> Deadline {
        Deadline::Unbounded
    }

    /// Anchors a wall-clock budget of `budget_s` seconds starting now.
    /// This is the workspace's sanctioned wall-clock read.
    pub fn wall(budget_s: f64) -> Deadline {
        Deadline::Wall { started: Instant::now(), budget_s } // lint:allow(det-wall-clock) the audited boundary
    }

    /// A wall deadline when `budget_s` is set, unbounded otherwise —
    /// mirrors the former `Option<f64>` budget fields.
    pub fn from_budget(budget_s: Option<f64>) -> Deadline {
        match budget_s {
            Some(b) => Deadline::wall(b),
            None => Deadline::Unbounded,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        match self {
            Deadline::Unbounded => false,
            Deadline::Wall { started, budget_s } => {
                started.elapsed().as_secs_f64() >= *budget_s // lint:allow(det-wall-clock) the audited boundary
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        assert!(!Deadline::unbounded().expired());
        assert!(!Deadline::default().expired());
        assert!(!Deadline::from_budget(None).expired());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        assert!(Deadline::wall(0.0).expired());
        assert!(Deadline::from_budget(Some(0.0)).expired());
    }

    #[test]
    fn generous_budget_does_not_expire() {
        assert!(!Deadline::wall(3600.0).expired());
    }
}
