//! The supervised parallel execution plane: a reusable fault-tolerant
//! executor shared by the serving pool and the OOE/IOE search engines.
//!
//! The machinery was born in `hadas-serve`'s reduction pool and is
//! extracted here unchanged in spirit: scheduled jobs stream over
//! vendored crossbeam channels to supervised worker lanes, each lane
//! runs a *pure* `Fn(&Job) -> Outcome` closure, and the caller receives
//! the outcomes in schedule order — so the result of a run is
//! byte-identical no matter how many lanes execute it or how the OS
//! interleaves them.
//!
//! # Supervision
//!
//! A supervisor keeps exactly **one dispatch in flight per lane**;
//! queued work stays supervisor-side, so a dying worker can only ever
//! lose the single job it was holding. Execution-plane chaos — injected
//! worker crashes, transient failures, stragglers — is scripted by a
//! [`ChaosPlan`]: a pure function of a [`FateResolver`] (the shared
//! `FaultInjector` in practice) that fixes the fate of every attempt of
//! every job *before* any thread runs. The supervisor then acts the
//! plan out:
//!
//! * **crash** — the worker abandons its lane mid-job and dies; the
//!   RAII `DeathNotice` converts the death into a `Down` message, the
//!   supervisor respawns the lane and re-dispatches the lost job to the
//!   next lane;
//! * **transient failure** — the attempt's result is discarded and the
//!   job retried, up to the [`RetryPolicy`] attempt budget (clamped to
//!   a single attempt while the [`CircuitBreaker`] is open);
//! * **straggle** — the attempt lands late; a hedge duplicate is issued
//!   *concurrently* on another lane and the first result per job wins
//!   (later duplicates are dropped);
//! * **dead letter** — a job whose every issued attempt failed resolves
//!   to `None` and is accounted, never silently lost.
//!
//! Because the plan — not cross-thread timing — decides every recovery
//! action, a recovered run computes the exact multiset of outcomes a
//! fault-free run does. Combined with the in-order fold of the result
//! slots this is the recovery invariant the chaos suites pin: serve
//! reports and search Pareto fronts are byte-identical under injected
//! faults whenever recovery succeeds (zero dead letters), at any worker
//! count.
//!
//! Real (off-plan) worker panics ride the same machinery: the
//! `DeathNotice` fires during unwinding, the lane respawns, and the
//! lost job is re-issued once before being dead-lettered.
//!
//! # Single-lane mode
//!
//! `workers <= 1` short-circuits to an inline sequential run on the
//! caller's thread: the same fold, consulting only the plan's
//! dead-letter set (a one-lane supervisor could never reorder anything
//! anyway). This keeps the sequential search path free of thread
//! overhead while remaining byte-identical to every multi-lane run.

use crate::resilience::{AttemptOutcome, CircuitBreaker, FaultModel, RetryPolicy};
use crate::HadasError;
use crossbeam::channel::{self, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Decides the scripted fate of execution attempts: the substrate-fault
/// surface of [`FaultModel`] plus worker-crash injection. Pure in
/// `(key, attempt)` — the replayability of recovery depends on it.
///
/// The blanket default never crashes, so any [`FaultModel`] can stand in
/// where no execution-plane chaos is wanted.
pub trait FateResolver: FaultModel {
    /// Whether the worker holding attempt `attempt` of the job keyed
    /// `key` crashes mid-execution.
    fn crash_at(&self, _key: u64, _attempt: u32) -> bool {
        false
    }
}

/// The healthy execution plane: no crashes (and, via [`NoFaults`], no
/// transient failures or stragglers either).
impl FateResolver for crate::resilience::NoFaults {}

/// What the plan builder needs to know about one scheduled job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Fault-stream key (stable across runs and worker counts — e.g. a
    /// schedule sequence number or a content hash).
    pub key: u64,
    /// Estimated service time in virtual milliseconds; sets the hedge
    /// deadline and feeds the modeled-makespan scaling curve.
    pub est_ms: f64,
    /// Work units inside the job (requests in a batch, 1 for a single
    /// candidate evaluation) — dead-letter accounting granularity.
    pub weight: usize,
}

/// The scripted fate of one execution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptFate {
    /// The attempt runs its job and lands on time.
    Ok,
    /// Transient failure: the result is discarded, retry.
    Fail,
    /// The worker thread executing the attempt dies mid-job.
    Crash,
    /// The attempt lands, but past the hedge deadline — a concurrent
    /// hedge duplicate is issued and the first result wins.
    Straggle,
}

/// Execution-plane resilience counters of one supervised run. **Not**
/// part of any deterministic payload: recovery erases execution faults
/// from the results by design, so these live in a side channel (serve's
/// `run_instrumented`, search's `OoeOutcome::exec_telemetry`) where
/// byte-identity is not at stake. One schema for both planes — the
/// serve and search benches serialize it verbatim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecTelemetry {
    /// Worker threads that died mid-job (injected or real).
    pub crashes: usize,
    /// Worker lanes respawned by the supervisor.
    pub respawns: usize,
    /// Attempts re-issued after a transient failure.
    pub retries: usize,
    /// Attempts re-issued after losing their worker.
    pub redispatches: usize,
    /// Hedge duplicates issued against straggling attempts.
    pub hedges: usize,
    /// Results dropped by first-result-wins dedup (job already landed).
    pub duplicate_results: usize,
    /// Attempts that failed transiently (each may trigger one retry).
    pub failed_attempts: usize,
    /// Jobs whose every issued attempt failed.
    pub dead_letter_jobs: usize,
    /// Work units inside dead-lettered jobs.
    pub dead_letter_units: usize,
    /// Times the circuit breaker tripped open during the run.
    pub breaker_trips: usize,
}

impl ExecTelemetry {
    /// Folds another run's counters into this one (search runs invoke
    /// the executor once per generation phase and aggregate).
    pub fn merge(&mut self, other: &ExecTelemetry) {
        self.crashes += other.crashes;
        self.respawns += other.respawns;
        self.retries += other.retries;
        self.redispatches += other.redispatches;
        self.hedges += other.hedges;
        self.duplicate_results += other.duplicate_results;
        self.failed_attempts += other.failed_attempts;
        self.dead_letter_jobs += other.dead_letter_jobs;
        self.dead_letter_units += other.dead_letter_units;
        self.breaker_trips += other.breaker_trips;
    }
}

/// The pre-resolved chaos script of one supervised run: per job, the
/// fate of every attempt that will be issued, plus which jobs end up
/// dead-lettered and the planned telemetry. A pure function of
/// `(fate resolver, retry policy, breaker, hedge factor, job specs)` —
/// no thread timing anywhere — which is what makes recovery replayable
/// and worker-count-invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// `chains[i]` = fates of the attempts issued for job `i`, in
    /// attempt order (length ≥ 1).
    pub chains: Vec<Vec<AttemptFate>>,
    /// Whether job `i` dead-letters (no attempt lands).
    pub dead: Vec<bool>,
    /// Work units per job (from the specs; dead-letter accounting).
    pub weights: Vec<usize>,
    /// Planned counters (runtime fills in off-plan events, if any).
    pub stats: ExecTelemetry,
}

impl ChaosPlan {
    /// Resolves the full attempt chain of every job against the fate
    /// resolver, folding the circuit breaker in schedule order:
    ///
    /// * attempt `k+1` is issued iff attempt `k` did not land cleanly
    ///   (`Fail`/`Crash` → retry/re-dispatch, `Straggle` → hedge) and
    ///   the breaker-clamped attempt budget allows it;
    /// * a job lands iff any issued attempt is `Ok` or `Straggle`;
    /// * the breaker sees one `tick` per job and records a failure iff
    ///   the job's chain contains a `Fail` or `Crash`.
    ///
    /// A draw from [`FaultModel::eval_attempt`] of `Timeout` counts as
    /// a straggler only when the injected delay exceeds the hedge slack
    /// `(hedge_factor − 1) × est_ms`; shorter delays land within the
    /// hedge deadline and behave as `Ok`.
    pub fn build(
        resolver: &dyn FateResolver,
        retry: &RetryPolicy,
        mut breaker: CircuitBreaker,
        hedge_factor: f64,
        specs: &[JobSpec],
    ) -> ChaosPlan {
        let mut chains = Vec::with_capacity(specs.len());
        let mut dead = Vec::with_capacity(specs.len());
        let mut weights = Vec::with_capacity(specs.len());
        let mut stats = ExecTelemetry::default();
        for spec in specs {
            breaker.tick();
            let allowed = if breaker.is_open() { 1 } else { retry.max_attempts.max(1) };
            let hedge_slack_ms = (hedge_factor - 1.0).max(0.0) * spec.est_ms;
            let mut chain: Vec<AttemptFate> = Vec::new();
            let mut attempt = 0u32;
            loop {
                let fate = if resolver.crash_at(spec.key, attempt) {
                    AttemptFate::Crash
                } else {
                    match resolver.eval_attempt(spec.key, attempt) {
                        AttemptOutcome::TransientFailure { .. } => AttemptFate::Fail,
                        AttemptOutcome::Timeout { cost_ms } if cost_ms > hedge_slack_ms => {
                            AttemptFate::Straggle
                        }
                        AttemptOutcome::Timeout { .. } | AttemptOutcome::Ok { .. } => {
                            AttemptFate::Ok
                        }
                    }
                };
                chain.push(fate);
                attempt += 1;
                if fate == AttemptFate::Ok || attempt >= allowed {
                    break;
                }
            }
            for pair in chain.windows(2) {
                match pair[0] {
                    AttemptFate::Fail => stats.retries += 1,
                    AttemptFate::Crash => stats.redispatches += 1,
                    AttemptFate::Straggle => stats.hedges += 1,
                    AttemptFate::Ok => {}
                }
            }
            let crashes = chain.iter().filter(|&&f| f == AttemptFate::Crash).count();
            stats.crashes += crashes;
            stats.respawns += crashes;
            stats.failed_attempts += chain.iter().filter(|&&f| f == AttemptFate::Fail).count();
            let landings = chain
                .iter()
                .filter(|f| matches!(f, AttemptFate::Ok | AttemptFate::Straggle))
                .count();
            stats.duplicate_results += landings.saturating_sub(1);
            if chain.iter().any(|f| matches!(f, AttemptFate::Fail | AttemptFate::Crash)) {
                breaker.record_failure();
            } else {
                breaker.record_success();
            }
            if landings == 0 {
                stats.dead_letter_jobs += 1;
                stats.dead_letter_units += spec.weight;
            }
            dead.push(landings == 0);
            weights.push(spec.weight);
            chains.push(chain);
        }
        stats.breaker_trips = breaker.trips();
        ChaosPlan { chains, dead, weights, stats }
    }
}

/// The deterministic virtual-time makespan of a schedule over `workers`
/// round-robin lanes: lane `i % workers` pays `est_ms × attempts` per
/// job (attempt chains from the plan, one clean attempt without one).
/// This is the same modeled-time idiom the serving engine's throughput
/// uses — a pure function of the schedule, so the scaling curves the
/// benches assert on are reproducible on any host.
pub fn modeled_makespan_ms(specs: &[JobSpec], workers: usize, plan: Option<&ChaosPlan>) -> f64 {
    let lanes = workers.max(1);
    let mut load = vec![0.0f64; lanes];
    for (i, spec) in specs.iter().enumerate() {
        let attempts = plan.and_then(|p| p.chains.get(i)).map_or(1, Vec::len);
        load[i % lanes] += spec.est_ms.max(0.0) * attempts as f64;
    }
    // lint:allow(det-float-order) max over lane loads is order-insensitive
    load.iter().fold(0.0f64, |m, &l| m.max(l))
}

/// One unit of work handed to a worker lane.
#[derive(Debug, Clone, Copy)]
struct Dispatch {
    index: usize,
    attempt: u32,
    fate: AttemptFate,
}

/// What a worker (or its death) reports back to the supervisor. Every
/// issued [`Dispatch`] resolves into exactly one `Reply`.
#[derive(Debug)]
enum Reply<R> {
    /// The attempt ran its job.
    Done { lane: usize, index: usize, result: Box<R> },
    /// The attempt failed transiently; its result was discarded.
    Failed { lane: usize, index: usize, attempt: u32 },
    /// The worker died while holding the attempt.
    Down { lane: usize, index: usize, attempt: u32 },
}

/// RAII death watch: armed while a worker holds a dispatch, it converts
/// any exit without a reply — injected crash or real panic unwinding —
/// into a `Down` message for the supervisor.
struct DeathNotice<R> {
    tx: Sender<Reply<R>>,
    lane: usize,
    index: usize,
    attempt: u32,
    armed: bool,
}

impl<R> Drop for DeathNotice<R> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.tx.send(Reply::Down {
                lane: self.lane,
                index: self.index,
                attempt: self.attempt,
            });
        }
    }
}

/// The worker body: one dispatch at a time, one reply per dispatch.
fn worker_body<J, R, F>(
    lane: usize,
    rx: Receiver<Dispatch>,
    tx: Sender<Reply<R>>,
    jobs: &[J],
    run_job: &F,
) where
    F: Fn(&J) -> R,
{
    // Workers never fold — every reply is seq-tagged and lands in its
    // slot on the supervisor.
    // lint:allow(det-unordered-reduction) reviewed
    while let Ok(d) = rx.recv() {
        let mut notice =
            DeathNotice { tx: tx.clone(), lane, index: d.index, attempt: d.attempt, armed: true };
        match d.fate {
            AttemptFate::Crash => {
                // Injected worker death: abandon the lane mid-job. The
                // armed DeathNotice reports the loss on the way out —
                // the same signal a real panic would produce.
                return;
            }
            AttemptFate::Fail => {
                notice.armed = false;
                let failed = Reply::Failed { lane, index: d.index, attempt: d.attempt };
                if tx.send(failed).is_err() {
                    return;
                }
            }
            AttemptFate::Ok | AttemptFate::Straggle => {
                let Some(job) = jobs.get(d.index) else { return };
                let result = Box::new(run_job(job));
                notice.armed = false;
                let done = Reply::Done { lane, index: d.index, result };
                if tx.send(done).is_err() {
                    return;
                }
            }
        }
    }
}

/// One supervised worker lane: its dispatch channel and the
/// supervisor-side queue of work not yet in flight. Thread handles are
/// owned by the surrounding scope, which joins every (re)spawned worker
/// on exit.
struct Lane {
    tx: Sender<Dispatch>,
    busy: bool,
    queue: VecDeque<Dispatch>,
}

/// Sends the lane's next queued dispatch if nothing is in flight.
fn pump(lane: &mut Lane) -> Result<(), HadasError> {
    if lane.busy {
        return Ok(());
    }
    let Some(d) = lane.queue.pop_front() else { return Ok(()) };
    match lane.tx.send(d) {
        Ok(()) => {
            lane.busy = true;
            Ok(())
        }
        // One-in-flight discipline makes this unreachable: a lane's
        // channel only closes after its Down was processed and the lane
        // respawned. Surface it rather than losing work silently.
        Err(_) => Err(HadasError::Internal("executor lane disconnected unsupervised".into())),
    }
}

/// The fates planned for job `i` (a single clean attempt without a plan).
fn chain_of(plan: Option<&ChaosPlan>, i: usize) -> &[AttemptFate] {
    const CLEAN: [AttemptFate; 1] = [AttemptFate::Ok];
    plan.and_then(|p| p.chains.get(i)).map_or(&CLEAN[..], Vec::as_slice)
}

/// Enqueues attempt `start` of job `i` on its rotated lane, chasing
/// straggler fates: a `Straggle` attempt's hedge duplicate is issued
/// immediately (concurrently), not on reply.
fn issue(
    lanes: &mut [Lane],
    pending: &mut usize,
    plan: Option<&ChaosPlan>,
    i: usize,
    start: usize,
) -> Result<(), HadasError> {
    let mut a = start;
    loop {
        let Some(&fate) = chain_of(plan, i).get(a) else { return Ok(()) };
        let lane_idx = (i + a) % lanes.len();
        lanes[lane_idx].queue.push_back(Dispatch { index: i, attempt: a as u32, fate });
        *pending += 1;
        pump(&mut lanes[lane_idx])?;
        if fate != AttemptFate::Straggle {
            return Ok(());
        }
        a += 1; // hedge the straggler concurrently
    }
}

/// Recomputes the dead-letter counters from the final result slots
/// (off-plan panics can dead-letter jobs the plan expected to land).
fn account_dead_letters<R>(
    slots: &[Option<R>],
    plan: Option<&ChaosPlan>,
    stats: &mut ExecTelemetry,
) {
    let mut jobs_dead = 0usize;
    let mut units_dead = 0usize;
    for (i, slot) in slots.iter().enumerate() {
        if slot.is_none() {
            jobs_dead += 1;
            units_dead += plan.and_then(|p| p.weights.get(i)).copied().unwrap_or(1);
        }
    }
    stats.dead_letter_jobs = jobs_dead;
    stats.dead_letter_units = units_dead;
}

/// Runs the supervised executor: `workers` lanes run the pure `run_job`
/// closure over the jobs, the supervisor replays the chaos plan's
/// recovery script (respawn, re-dispatch, retry, hedge, dead-letter),
/// and the caller receives one result slot per job **in schedule
/// order** (`None` = dead-lettered) plus the resilience telemetry.
/// Without a plan every job runs as a single clean attempt.
///
/// `workers <= 1` runs inline on the caller's thread (see the module
/// docs); the result is byte-identical either way.
///
/// # Errors
///
/// Returns [`HadasError::Internal`] if the executor loses a channel
/// outside the supervision protocol or a worker panic defeats the
/// bounded self-heal (bugs or non-pure jobs, not input conditions).
pub fn run_supervised<J, R, F>(
    jobs: &[J],
    workers: usize,
    run_job: F,
    plan: Option<&ChaosPlan>,
) -> Result<(Vec<Option<R>>, ExecTelemetry), HadasError>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let mut stats = plan.map_or_else(ExecTelemetry::default, |p| p.stats);
    if jobs.is_empty() {
        return Ok((Vec::new(), stats));
    }
    if workers <= 1 {
        // Single-lane mode: the supervisor could never reorder anything,
        // so run the fold inline — same dead-letter set, no threads.
        let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let dead = plan.is_some_and(|p| p.dead.get(i).copied().unwrap_or(false));
            slots.push(if dead { None } else { Some(run_job(job)) });
        }
        account_dead_letters(&slots, plan, &mut stats);
        return Ok((slots, stats));
    }

    let lanes_n = workers;
    let mut outcome: Option<Result<Vec<Option<R>>, HadasError>> = None;
    let run_job = &run_job;
    // The scope wrapper turns an unjoined worker panic into an outer
    // `Err`; a panic the supervisor already healed (bounded re-issue)
    // must not fail the run, so the supervisor's verdict is assembled
    // in `outcome` and consulted first.
    let _ = crossbeam::thread::scope(|scope| {
        let (reply_tx, reply_rx) = channel::unbounded::<Reply<R>>();
        let spawn_lane = |lane_idx: usize| -> Sender<Dispatch> {
            let (tx, rx) = channel::unbounded::<Dispatch>();
            let reply = reply_tx.clone();
            scope.spawn(move |_| worker_body(lane_idx, rx, reply, jobs, run_job));
            tx
        };
        let mut supervise = || -> Result<Vec<Option<R>>, HadasError> {
            let mut lanes: Vec<Lane> = (0..lanes_n)
                .map(|idx| Lane { tx: spawn_lane(idx), busy: false, queue: VecDeque::new() })
                .collect();
            let mut results: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
            let mut offplan_reissued = vec![false; jobs.len()];
            let mut offplan = ExecTelemetry::default();
            let mut pending = 0usize;
            for i in 0..jobs.len() {
                issue(&mut lanes, &mut pending, plan, i, 0)?;
            }
            while pending > 0 {
                // Replies land in seq-indexed slots, so completion
                // order never leaks into the assembled result vector.
                // lint:allow(det-unordered-reduction) reviewed
                let reply = reply_rx.recv().map_err(|_| {
                    HadasError::Internal("executor reply stream closed early".into())
                })?;
                pending -= 1;
                match reply {
                    Reply::Done { lane, index, result } => {
                        lanes[lane].busy = false;
                        pump(&mut lanes[lane])?;
                        if results[index].is_none() {
                            results[index] = Some(*result); // first result wins
                        }
                    }
                    Reply::Failed { lane, index, attempt } => {
                        lanes[lane].busy = false;
                        pump(&mut lanes[lane])?;
                        issue(&mut lanes, &mut pending, plan, index, attempt as usize + 1)?;
                    }
                    Reply::Down { lane, index, attempt } => {
                        // The lane is gone: respawn it before pumping its
                        // queue (the scope joins the dead thread later).
                        lanes[lane].tx = spawn_lane(lane);
                        lanes[lane].busy = false;
                        pump(&mut lanes[lane])?;
                        let a = attempt as usize;
                        if chain_of(plan, index).get(a) == Some(&AttemptFate::Crash) {
                            // On-plan crash: re-dispatch the next attempt.
                            issue(&mut lanes, &mut pending, plan, index, a + 1)?;
                        } else if !offplan_reissued[index] {
                            // A real (off-plan) panic: self-heal with one
                            // bounded re-issue of the same attempt on a
                            // fresh thread. The straggle chase already ran
                            // at the original enqueue, so this is a single
                            // dispatch.
                            offplan_reissued[index] = true;
                            offplan.crashes += 1;
                            offplan.respawns += 1;
                            offplan.redispatches += 1;
                            let fate =
                                chain_of(plan, index).get(a).copied().unwrap_or(AttemptFate::Ok);
                            let lane_idx = (index + a) % lanes_n;
                            lanes[lane_idx].queue.push_back(Dispatch { index, attempt, fate });
                            pending += 1;
                            pump(&mut lanes[lane_idx])?;
                        }
                    }
                }
            }
            // Drain: close every lane so its worker exits the recv loop;
            // the surrounding scope joins all (re)spawned threads.
            for lane in &mut lanes {
                let (closed_tx, _) = channel::unbounded::<Dispatch>();
                lane.tx = closed_tx;
            }
            stats.crashes += offplan.crashes;
            stats.respawns += offplan.respawns;
            stats.redispatches += offplan.redispatches;
            Ok(results)
        };
        outcome = Some(supervise());
    });
    match outcome {
        Some(Ok(slots)) => {
            account_dead_letters(&slots, plan, &mut stats);
            Ok((slots, stats))
        }
        Some(Err(e)) => Err(e),
        None => Err(HadasError::Internal("executor supervisor did not complete".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    /// A deterministic scripted resolver for unit tests: crash/fail
    /// schedules keyed on `(key, attempt)` membership.
    #[derive(Debug, Default)]
    struct Scripted {
        crashes: Vec<(u64, u32)>,
        fails: Vec<(u64, u32)>,
    }

    impl FaultModel for Scripted {
        fn eval_attempt(&self, key: u64, attempt: u32) -> AttemptOutcome {
            if self.fails.contains(&(key, attempt)) {
                AttemptOutcome::TransientFailure { cost_ms: 1.0 }
            } else {
                AttemptOutcome::Ok { cost_ms: 1.0 }
            }
        }
    }

    impl FateResolver for Scripted {
        fn crash_at(&self, key: u64, attempt: u32) -> bool {
            self.crashes.contains(&(key, attempt))
        }
    }

    fn specs(n: usize) -> Vec<JobSpec> {
        (0..n).map(|i| JobSpec { key: i as u64, est_ms: 1.0, weight: 1 }).collect()
    }

    fn payload(x: &u64) -> (u64, f64) {
        (x.wrapping_mul(0x9E37_79B9_7F4A_7C15), (*x as f64).sqrt() * 3.0)
    }

    #[test]
    fn results_land_in_schedule_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..40).collect();
        let (base, stats) = run_supervised(&jobs, 1, payload, None).unwrap();
        assert_eq!(stats, ExecTelemetry::default(), "a clean run needs no healing");
        for workers in [2, 3, 5, 8] {
            let (multi, _) = run_supervised(&jobs, workers, payload, None).unwrap();
            assert_eq!(base, multi, "the fold must not depend on lane count");
        }
        assert!(base.iter().all(Option::is_some));
    }

    #[test]
    fn empty_schedule_reduces_to_nothing() {
        let (out, stats) = run_supervised(&Vec::<u64>::new(), 4, payload, None).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.dead_letter_jobs, 0);
    }

    #[test]
    fn scripted_crashes_respawn_and_heal_byte_identically() {
        let jobs: Vec<u64> = (0..24).collect();
        let resolver = Scripted {
            crashes: vec![(3, 0), (11, 0), (11, 1), (17, 0)],
            fails: vec![(5, 0), (9, 0), (9, 1)],
        };
        let retry = RetryPolicy { max_attempts: 4, ..RetryPolicy::default() };
        let plan = ChaosPlan::build(&resolver, &retry, CircuitBreaker::new(8, 4), 3.0, &specs(24));
        assert_eq!(plan.stats.crashes, 4);
        assert_eq!(plan.stats.dead_letter_jobs, 0, "everything recovers in 4 attempts");
        let (clean, _) = run_supervised(&jobs, 3, payload, None).unwrap();
        for workers in [1, 2, 4, 8] {
            let (healed, stats) = run_supervised(&jobs, workers, payload, Some(&plan)).unwrap();
            assert_eq!(healed, clean, "recovery must erase the faults ({workers} workers)");
            assert_eq!(stats.crashes, 4);
            assert_eq!(stats.respawns, 4);
            assert_eq!(stats.dead_letter_units, 0);
        }
    }

    #[test]
    fn exhausted_jobs_dead_letter_into_none_slots() {
        let jobs: Vec<u64> = (0..6).collect();
        let resolver = Scripted { crashes: vec![(2, 0)], fails: Vec::new() };
        let retry = RetryPolicy { max_attempts: 1, ..RetryPolicy::default() };
        let sp: Vec<JobSpec> = (0..6).map(|i| JobSpec { key: i, est_ms: 1.0, weight: 5 }).collect();
        let plan = ChaosPlan::build(&resolver, &retry, CircuitBreaker::new(8, 4), 3.0, &sp);
        assert!(plan.dead[2], "a 1-attempt budget cannot survive the crash");
        for workers in [1, 3] {
            let (slots, stats) = run_supervised(&jobs, workers, payload, Some(&plan)).unwrap();
            assert!(slots[2].is_none(), "the dead job resolves to None, never silently lost");
            assert_eq!(slots.iter().filter(|s| s.is_some()).count(), 5);
            assert_eq!(stats.dead_letter_jobs, 1);
            assert_eq!(stats.dead_letter_units, 5);
        }
    }

    #[test]
    fn offplan_panics_are_healed_by_one_bounded_reissue() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let jobs: Vec<u64> = (0..10).collect();
        let first_hit = AtomicUsize::new(0);
        // Job 4 panics exactly once; the supervisor's bounded re-issue
        // must land it on a respawned lane.
        let flaky = |x: &u64| {
            if *x == 4 && first_hit.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected off-plan panic");
            }
            payload(x)
        };
        let (slots, stats) = run_supervised(&jobs, 3, flaky, None).unwrap();
        let (clean, _) = run_supervised(&jobs, 3, payload, None).unwrap();
        assert_eq!(slots, clean, "the healed run matches the clean one");
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.redispatches, 1);
        assert_eq!(stats.dead_letter_jobs, 0);
    }

    #[test]
    fn modeled_makespan_is_monotone_in_the_lane_count() {
        let sp = specs(37);
        let mut last = f64::INFINITY;
        for workers in [1usize, 2, 4, 8] {
            let m = modeled_makespan_ms(&sp, workers, None);
            assert!(m <= last, "{workers} lanes must not model slower than fewer");
            assert!(m > 0.0);
            last = m;
        }
        assert!(
            modeled_makespan_ms(&sp, 8, None) < modeled_makespan_ms(&sp, 1, None),
            "eight lanes must strictly beat one on a 37-job schedule"
        );
    }
}
