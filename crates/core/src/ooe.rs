use crate::checkpoint::SearchCheckpoint;
use crate::clock::Deadline;
use crate::executor::{
    modeled_makespan_ms, run_supervised, ChaosPlan, ExecTelemetry, FateResolver, JobSpec,
};
use crate::resilience::{CircuitBreaker, FaultModel, NoFaults, RetryPolicy, SearchTelemetry};
use crate::{DynamicFitness, Hadas, HadasConfig, HadasError, Ioe, IoeOutcome, StaticFitness};
use hadas_evo::{crowding_distance, discrete, fast_non_dominated_sort};
use hadas_exits::ExitPlacement;
use hadas_hw::DvfsSetting;
use hadas_space::{Genome, Subnet};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Salt separating the static-evaluation fault stream from the IOE seed
/// stream derived from the same genome hash.
const STATIC_FAULT_SALT: u64 = 0x5354_4154_4943_5f53; // "STATIC_S"
/// Salt for whole-IOE-run transient failures (a wedged accelerator run,
/// as opposed to one flaky candidate measurement inside it).
const IOE_RUN_FAULT_SALT: u64 = 0x494f_455f_5255_4e5f; // "IOE_RUN_"

/// Fraction of measurements the data-chaos injector poisons with NaN.
pub(crate) const DATA_CHAOS_RATE: f64 = 0.1;

/// Salt separating the data-chaos poison stream from the fault streams.
const DATA_CHAOS_SALT: u64 = 0x4441_5441_5f43_4841; // "DATA_CHA"

/// Deterministic data-chaos poison model: whether the measurement
/// identified by `key` comes back NaN-poisoned under chaos seed `seed`.
/// Pure in `(seed, key)`, so a resumed run replays the identical poison
/// history — the quarantine path stays byte-reproducible.
pub(crate) fn chaos_poisons(seed: u64, key: u64) -> bool {
    let mut h = DefaultHasher::new();
    DATA_CHAOS_SALT.hash(&mut h);
    seed.hash(&mut h);
    key.hash(&mut h);
    let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
    u < DATA_CHAOS_RATE
}

/// The static fitness assigned to a backbone whose measurement never
/// landed within its retry/timeout budget: zero accuracy at prohibitive
/// cost, so it is selected away without poisoning dominance arithmetic.
const FAILED_STATIC_FITNESS: StaticFitness =
    StaticFitness { accuracy_pct: 0.0, latency_ms: 1.0e9, energy_mj: 1.0e9 };

/// Consecutive dispatch failures that open the execution-plane circuit
/// breaker during supervised evaluation phases (mirrors the serving
/// pool's default shape).
const EXEC_BREAKER_THRESHOLD: u32 = 8;
/// Jobs an open execution-plane breaker stays open for before probing.
const EXEC_BREAKER_COOLDOWN: u32 = 4;
/// Hedge factor of the supervised evaluation phases: an attempt
/// straggling past `factor × est_ms` gets a concurrent hedge on the
/// next lane.
const EXEC_HEDGE_FACTOR: f64 = 3.0;
/// Virtual service-time estimate of one static backbone evaluation
/// (milliseconds). Uniform on purpose: the modeled scaling curve then
/// reflects pure lane balance, not a guessed cost model.
const STATIC_EVAL_EST_MS: f64 = 1.0;

/// Worker-lane count for the supervised evaluation phases: an explicit
/// request wins; `0` auto-sizes to the host's parallelism, capped at 8
/// (the widest configuration the chaos matrix pins byte-identity for —
/// correctness holds at any width, the cap just bounds thread churn on
/// big hosts).
fn effective_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    // Only sizes worker lanes — the front is byte-identical at any
    // width (tests/chaos.rs pins it), so the probe cannot leak.
    // lint:allow(det-ambient-env) reviewed
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8)
}

/// One backbone evaluated by the outer engine.
#[derive(Debug, Clone)]
pub struct EvaluatedBackbone {
    /// The decoded backbone.
    pub subnet: Subnet,
    /// Its static fitness `S(b)` (eq. (3)) at default DVFS.
    pub fitness: StaticFitness,
    /// Generation at which it was first evaluated.
    pub generation: usize,
    /// The inner-engine outcome, present if this backbone was promoted
    /// past the early-selection pruning (`b' ∈ P'`).
    pub ioe: Option<IoeOutcome>,
}

/// A fully resolved `(b*, x*, f*)` solution of the joint space.
#[derive(Debug, Clone)]
pub struct JointModel {
    /// The backbone.
    pub subnet: Subnet,
    /// Static fitness of the backbone alone.
    pub static_fitness: StaticFitness,
    /// The exit placement.
    pub placement: ExitPlacement,
    /// The DVFS setting.
    pub dvfs: DvfsSetting,
    /// Dynamic fitness of the assembled DyNN.
    pub dynamic: DynamicFitness,
}

/// Knobs for a fault-tolerant, resumable search run. `Default` is the
/// pre-existing behaviour: healthy substrate, no checkpointing, run to
/// budget completion.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// The substrate fault model consulted before every candidate
    /// evaluation (and every whole-IOE run). [`NoFaults`] by default.
    pub faults: Arc<dyn FaultModel>,
    /// Retry/backoff/timeout schedule per candidate.
    pub retry: RetryPolicy,
    /// Where to serialize a [`SearchCheckpoint`] at every generation
    /// boundary (atomically). `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume state loaded from a previous run's checkpoint. Must match
    /// this run's `HadasConfig` exactly.
    pub resume_from: Option<SearchCheckpoint>,
    /// Cooperative cancellation: when set, the run stops at the next
    /// generation boundary and returns the partial Pareto front.
    pub abort: Option<Arc<AtomicBool>>,
    /// Stop this call after completing this many generations (the chaos
    /// harness's deterministic "kill" point). Counted per call, so a
    /// resumed run gets its own allowance.
    pub stop_after_generations: Option<usize>,
    /// Wall-clock budget in seconds; on exhaustion the run stops at the
    /// next generation boundary with a partial front.
    pub time_budget_s: Option<f64>,
    /// Seed of the deterministic data-chaos injector: when set, a fixed
    /// fraction of candidate measurements (outer static evaluations and
    /// inner dynamic ones) come back NaN-poisoned. The engines must
    /// quarantine every poisoned fitness to the finite worst-case penalty
    /// — counted in [`SearchTelemetry::quarantined_evals`] — so the
    /// Pareto arithmetic never sees a non-finite number. `None` disables
    /// injection.
    pub data_chaos: Option<u64>,
    /// Worker lanes for the supervised evaluation phases (static
    /// population evaluations and nested IOE runs), driven through the
    /// shared [`crate::executor`]. `0` (the default) auto-sizes to the
    /// host's parallelism capped at 8. The serialized Pareto front is
    /// byte-identical at any worker count — lanes only change wall
    /// clock, never results.
    pub workers: usize,
    /// Execution-plane chaos: a [`FateResolver`] that scripts worker
    /// crashes, transient dispatch failures, and stragglers for the
    /// supervised executor (distinct from `faults`, which poisons the
    /// *measurements* themselves). Crashed lanes respawn and lost
    /// evaluations re-dispatch, so whenever nothing dead-letters the
    /// healed front is byte-identical to the fault-free run. `None`
    /// runs the executor clean.
    pub exec_chaos: Option<Arc<dyn FateResolver>>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            faults: Arc::new(NoFaults),
            retry: RetryPolicy::default(),
            checkpoint_path: None,
            resume_from: None,
            abort: None,
            stop_after_generations: None,
            time_budget_s: None,
            data_chaos: None,
            workers: 0,
            exec_chaos: None,
        }
    }
}

/// Outcome of a full bi-level HADAS run.
#[derive(Debug, Clone)]
pub struct OoeOutcome {
    backbones: Vec<EvaluatedBackbone>,
    telemetry: SearchTelemetry,
    exec: ExecTelemetry,
    modeled_ms: f64,
}

impl OoeOutcome {
    /// Every backbone evaluated, in evaluation order (the Fig. 5 top
    /// scatter).
    pub fn backbones(&self) -> &[EvaluatedBackbone] {
        &self.backbones
    }

    /// Fault-handling and interruption telemetry of the run that
    /// produced this outcome. Informational: not part of the
    /// deterministic Pareto payload.
    pub fn telemetry(&self) -> &SearchTelemetry {
        &self.telemetry
    }

    /// Whether the run stopped early (abort flag, generation cap, or
    /// time budget) and this is a partial front.
    pub fn interrupted(&self) -> bool {
        self.telemetry.interrupted
    }

    /// Execution-plane resilience telemetry of the supervised evaluation
    /// phases: crashes healed, lanes respawned, retries, hedges, and
    /// dead letters. Zero everywhere on a clean run. Informational, like
    /// [`OoeOutcome::telemetry`].
    pub fn exec_telemetry(&self) -> &ExecTelemetry {
        &self.exec
    }

    /// Deterministic virtual-time makespan of every supervised
    /// evaluation phase, in modeled milliseconds: each phase's jobs are
    /// dealt round-robin over the worker lanes and the slowest lane is
    /// charged. A pure function of `(config, seed, workers, chaos)` —
    /// no wall clock — so generation-throughput scaling curves derived
    /// from it reproduce bit-for-bit on any host.
    pub fn modeled_makespan_ms(&self) -> f64 {
        self.modeled_ms
    }

    /// Static plot axes `[accuracy, −energy]` of the whole history.
    pub fn static_axes(&self) -> Vec<Vec<f64>> {
        self.backbones.iter().map(|b| b.fitness.to_plot_axes()).collect()
    }

    /// The static Pareto front over `[accuracy, −energy]` (Fig. 5 top).
    pub fn static_pareto(&self) -> Vec<&EvaluatedBackbone> {
        let axes = self.static_axes();
        let fronts = fast_non_dominated_sort(&axes);
        match fronts.first() {
            Some(front) => front.iter().map(|&i| &self.backbones[i]).collect(),
            None => Vec::new(),
        }
    }

    /// All `(b, x, f)` combinations discovered by the nested IOEs.
    pub fn joint_models(&self) -> Vec<JointModel> {
        let mut out = Vec::new();
        for b in &self.backbones {
            if let Some(ioe) = &b.ioe {
                for s in &ioe.pareto {
                    out.push(JointModel {
                        subnet: b.subnet.clone(),
                        static_fitness: b.fitness,
                        placement: s.placement.clone(),
                        dvfs: s.dvfs,
                        dynamic: s.fitness,
                    });
                }
            }
        }
        out
    }

    /// The final Pareto set over (dynamic accuracy, −dynamic energy) —
    /// the `(b*, x*, f*)` solutions the paper returns at generation `G`.
    /// On an interrupted run this is the partial front over everything
    /// evaluated so far — graceful degradation, never an empty panic.
    pub fn pareto_models(&self) -> Vec<JointModel> {
        let all = self.joint_models();
        if all.is_empty() {
            return all;
        }
        let axes: Vec<Vec<f64>> =
            all.iter().map(|m| vec![m.dynamic.accuracy_pct, -m.dynamic.energy_mj]).collect();
        let fronts = fast_non_dominated_sort(&axes);
        fronts[0].iter().map(|&i| all[i].clone()).collect()
    }
}

/// The outer optimization engine (paper §IV-A): NSGA-II over the backbone
/// space **B** with nested IOE invocations for promoted candidates.
#[derive(Debug)]
pub struct Ooe<'a> {
    hadas: &'a Hadas,
    config: HadasConfig,
}

/// Mutable engine state at a generation boundary — exactly what a
/// [`SearchCheckpoint`] captures.
struct EngineState {
    generation: usize,
    rng: StdRng,
    population: Vec<Genome>,
    history: Vec<EvaluatedBackbone>,
    // Ordered on purpose: hash iteration order is per-process random,
    // and this map feeds checkpoint/resume state.
    seen: BTreeMap<Vec<usize>, usize>,
}

/// One static-evaluation job handed to the supervised executor: a
/// not-yet-seen genome, decoded, with its content-derived fault key
/// (stable across worker counts and resume).
struct StaticEvalJob {
    genes: Vec<usize>,
    subnet: Subnet,
    fault_key: u64,
}

/// One nested-IOE job handed to the supervised executor.
struct IoeEvalJob {
    history_idx: usize,
    subnet: Subnet,
    seed: u64,
}

impl<'a> Ooe<'a> {
    /// Creates an outer engine.
    pub fn new(hadas: &'a Hadas, config: HadasConfig) -> Self {
        Ooe { hadas, config }
    }

    /// Resolves the execution-plane chaos script for one supervised
    /// phase — a pure function of `(resolver, retry, specs)`, so the
    /// recovery choreography replays identically at every worker count.
    /// `None` (no exec chaos) runs each job as a single clean attempt.
    fn exec_plan(&self, opts: &SearchOptions, specs: &[JobSpec]) -> Option<ChaosPlan> {
        opts.exec_chaos.as_ref().map(|resolver| {
            ChaosPlan::build(
                resolver.as_ref(),
                &opts.retry,
                CircuitBreaker::new(EXEC_BREAKER_THRESHOLD, EXEC_BREAKER_COOLDOWN),
                EXEC_HEDGE_FACTOR,
                specs,
            )
        })
    }

    fn static_fitness(&self, subnet: &Subnet) -> Result<StaticFitness, HadasError> {
        let device = self.hadas.device();
        let cost = device.subnet_cost(subnet, &device.default_dvfs())?;
        Ok(StaticFitness {
            accuracy_pct: self.hadas.accuracy().backbone_accuracy(subnet),
            latency_ms: cost.latency_ms(),
            energy_mj: cost.energy_mj(),
        })
    }

    fn genome_seed(&self, genome: &Genome) -> u64 {
        let mut h = DefaultHasher::new();
        genome.genes().hash(&mut h);
        self.config.seed.hash(&mut h);
        h.finish()
    }

    /// Restores engine state from a checkpoint, or seeds a fresh run.
    fn initial_state(&self, opts: &SearchOptions) -> Result<EngineState, HadasError> {
        let space = self.hadas.space();
        let pop_size = self.config.ooe.population;
        match &opts.resume_from {
            Some(ckpt) => {
                ckpt.validate_against(&self.config)?;
                if ckpt.population.len() != pop_size {
                    return Err(HadasError::Checkpoint(format!(
                        "checkpoint population {} does not match configured population {pop_size}",
                        ckpt.population.len()
                    )));
                }
                let history = ckpt.restore_history(space)?;
                let seen = history
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (b.subnet.genome().genes().to_vec(), i))
                    .collect();
                Ok(EngineState {
                    generation: ckpt.generation,
                    rng: StdRng::from_state(ckpt.rng_state),
                    population: ckpt.population.iter().cloned().map(Genome::from_genes).collect(),
                    history,
                    seen,
                })
            }
            None => {
                let mut rng = StdRng::seed_from_u64(self.config.seed);
                let population = (0..pop_size).map(|_| space.sample(&mut rng)).collect();
                Ok(EngineState {
                    generation: 0,
                    rng,
                    population,
                    history: Vec::new(),
                    seen: BTreeMap::new(),
                })
            }
        }
    }

    fn write_checkpoint(
        &self,
        opts: &SearchOptions,
        state: &EngineState,
    ) -> Result<(), HadasError> {
        let Some(path) = &opts.checkpoint_path else { return Ok(()) };
        let genes: Vec<Vec<usize>> = state.population.iter().map(|g| g.genes().to_vec()).collect();
        SearchCheckpoint::capture(
            &self.config,
            state.generation,
            state.rng.state(),
            &genes,
            &state.history,
        )
        .write(path)
    }

    fn should_stop(opts: &SearchOptions, deadline: &Deadline, ran_this_call: usize) -> bool {
        if opts.abort.as_ref().is_some_and(|f| f.load(Ordering::Relaxed)) {
            return true;
        }
        if opts.stop_after_generations.is_some_and(|n| ran_this_call >= n) {
            return true;
        }
        deadline.expired()
    }

    /// Runs the bi-level search on a healthy substrate with no
    /// checkpointing — [`Ooe::run_with`] with default [`SearchOptions`].
    ///
    /// # Errors
    ///
    /// Returns configuration or evaluation errors.
    pub fn run(&self) -> Result<OoeOutcome, HadasError> {
        self.run_with(&SearchOptions::default())
    }

    /// Runs the bi-level search under explicit robustness options:
    /// fault-injected candidate scoring with retry/backoff/timeout,
    /// per-generation checkpointing, resume, and graceful early stop
    /// with a partial Pareto front.
    ///
    /// Per generation: evaluate `S` for the population, rank and prune to
    /// `P'` (early selection), run an IOE per promoted backbone (cached
    /// across generations, executed in parallel), re-rank by combined
    /// static + dynamic objectives into `P''`, then mutate/cross over to
    /// form the next population.
    ///
    /// Determinism: given the same `HadasConfig` and a fault model that
    /// is a pure function of `(key, attempt)`, a run killed at any
    /// generation boundary and resumed from its checkpoint produces a
    /// byte-identical Pareto front to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns configuration, checkpoint, or evaluation errors. Transient
    /// substrate faults are absorbed (retried, then degraded), not
    /// returned.
    pub fn run_with(&self, opts: &SearchOptions) -> Result<OoeOutcome, HadasError> {
        self.config.validate()?;
        opts.retry.validate()?;
        let space = self.hadas.space();
        let cards = space.gene_cardinalities();
        let pop_size = self.config.ooe.population;
        let generations = self.config.ooe.generations();
        // All wall-clock reads live behind the clock boundary.
        let deadline = Deadline::from_budget(opts.time_budget_s);
        let mut telemetry = SearchTelemetry::default();
        let mut exec = ExecTelemetry::default();
        let mut modeled_ms = 0.0f64;
        let lanes = effective_workers(opts.workers);

        let mut ioe_cache: BTreeMap<Vec<usize>, IoeOutcome> = BTreeMap::new();
        let mut state = self.initial_state(opts)?;
        // Re-warm the IOE cache from restored history so resumed runs do
        // not recompute inner searches they already paid for.
        for b in &state.history {
            if let Some(ioe) = &b.ioe {
                ioe_cache.insert(b.subnet.genome().genes().to_vec(), ioe.clone());
            }
        }

        let mut ran_this_call = 0usize;
        let mut completed = state.generation >= generations;
        while state.generation < generations {
            // Persist the exact state needed to (re-)run this generation;
            // a kill anywhere inside it resumes from this boundary.
            self.write_checkpoint(opts, &state)?;
            if Self::should_stop(opts, &deadline, ran_this_call) {
                telemetry.interrupted = true;
                break;
            }
            let generation = state.generation;

            // Static evaluation, driven through the supervised executor:
            // unique unseen genomes become jobs in first-appearance order,
            // the retry-with-backoff measurement is the (pure) job
            // closure, and the fold back into history runs on this thread
            // in job order — so history order, telemetry, quarantine, and
            // surfaced errors are identical at every worker count.
            let mut planned: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
            let mut jobs: Vec<StaticEvalJob> = Vec::new();
            for genome in &state.population {
                let key = genome.genes().to_vec();
                if state.seen.contains_key(&key) || planned.contains_key(&key) {
                    continue;
                }
                let subnet = space.decode(genome)?;
                let fault_key = self.genome_seed(genome) ^ STATIC_FAULT_SALT;
                planned.insert(key, jobs.len());
                jobs.push(StaticEvalJob { genes: genome.genes().to_vec(), subnet, fault_key });
            }
            let specs: Vec<JobSpec> = jobs
                .iter()
                .map(|j| JobSpec { key: j.fault_key, est_ms: STATIC_EVAL_EST_MS, weight: 1 })
                .collect();
            let plan = self.exec_plan(opts, &specs);
            modeled_ms += modeled_makespan_ms(&specs, lanes, plan.as_ref());
            let (slots, phase_exec) = run_supervised(
                &jobs,
                lanes,
                |job| {
                    opts.retry.run(opts.faults.as_ref(), job.fault_key, || {
                        self.static_fitness(&job.subnet)
                    })
                },
                plan.as_ref(),
            )?;
            exec.merge(&phase_exec);
            for (job, slot) in jobs.into_iter().zip(slots) {
                let fitness = match slot {
                    Some(Ok((value, receipt))) => {
                        let exhausted = value.is_none();
                        telemetry.absorb(&receipt, exhausted);
                        let mut fitness = value.unwrap_or(FAILED_STATIC_FITNESS);
                        // Data chaos: a poisoned measurement comes back
                        // NaN; the quarantine below must catch it.
                        if let Some(chaos) = opts.data_chaos {
                            if chaos_poisons(chaos, job.fault_key) {
                                fitness.accuracy_pct = f64::NAN;
                            }
                        }
                        // NaN-fitness quarantine: a non-finite vector
                        // would satisfy no ordering axiom and could sit
                        // unchallenged in release-mode dominance sorts.
                        // Degrade it to the finite worst case instead.
                        if !fitness.is_finite() {
                            telemetry.quarantined_evals += 1;
                            fitness = FAILED_STATIC_FITNESS;
                        }
                        fitness
                    }
                    Some(Err(e)) => return Err(e),
                    // Dead-lettered by the execution plane (every
                    // dispatch attempt crashed or failed): degrade like
                    // an exhausted measurement.
                    None => {
                        telemetry.exhausted_evals += 1;
                        FAILED_STATIC_FITNESS
                    }
                };
                state.history.push(EvaluatedBackbone {
                    subnet: job.subnet,
                    fitness,
                    generation,
                    ioe: None,
                });
                state.seen.insert(job.genes, state.history.len() - 1);
            }
            let mut indices = Vec::with_capacity(state.population.len());
            for genome in &state.population {
                let idx = *state.seen.get(genome.genes()).ok_or_else(|| {
                    HadasError::Internal("a population genome vanished from the eval index".into())
                })?;
                indices.push(idx);
            }

            // Early selection: rank by the full static vector of eq. (3).
            let pts: Vec<Vec<f64>> =
                indices.iter().map(|&i| state.history[i].fitness.to_maximisation()).collect();
            let order = rank_order(&pts);
            let promote =
                ((pop_size as f64 * self.config.prune_fraction).ceil() as usize).clamp(1, pop_size);
            let promoted: Vec<usize> = order.iter().take(promote).map(|&k| indices[k]).collect();

            // Nested IOEs for promoted backbones, driven through the same
            // supervised executor (cached across generations, and
            // individually fault-wrapped: a backbone whose inner run
            // keeps failing is skipped this generation, not fatal). The
            // fold below runs in job order on this thread, so cache
            // contents, telemetry (including the float overhead sum),
            // and the surfaced error no longer depend on completion
            // order.
            let ioe_jobs: Vec<IoeEvalJob> = promoted
                .iter()
                .copied()
                .filter(|&i| {
                    state.history[i].ioe.is_none()
                        && !ioe_cache.contains_key(state.history[i].subnet.genome().genes())
                })
                .map(|i| {
                    let subnet = state.history[i].subnet.clone();
                    let seed = self.genome_seed(subnet.genome());
                    IoeEvalJob { history_idx: i, subnet, seed }
                })
                .collect();
            let specs: Vec<JobSpec> = ioe_jobs
                .iter()
                .map(|j| JobSpec {
                    key: j.seed ^ IOE_RUN_FAULT_SALT,
                    // One inner run costs its candidate budget in virtual
                    // time; this keeps the modeled scaling curve honest
                    // about IOEs dominating a generation.
                    est_ms: self.config.ioe.iterations as f64,
                    weight: 1,
                })
                .collect();
            let plan = self.exec_plan(opts, &specs);
            modeled_ms += modeled_makespan_ms(&specs, lanes, plan.as_ref());
            let (slots, phase_exec) = run_supervised(
                &ioe_jobs,
                lanes,
                |job| {
                    let run_key = job.seed ^ IOE_RUN_FAULT_SALT;
                    opts.retry.run(opts.faults.as_ref(), run_key, || {
                        Ioe::new(self.hadas, job.subnet.clone(), self.config.clone())
                            .run_with_chaos(
                                job.seed,
                                opts.faults.as_ref(),
                                &opts.retry,
                                opts.data_chaos,
                            )
                    })
                },
                plan.as_ref(),
            )?;
            exec.merge(&phase_exec);
            // Keyed on the (deterministic) history index, not completion
            // order, so the surfaced error is the same at every worker
            // count.
            let mut errors: BTreeMap<usize, HadasError> = BTreeMap::new();
            for (job, slot) in ioe_jobs.into_iter().zip(slots) {
                match slot {
                    Some(Ok((Some((outcome, inner)), receipt))) => {
                        ioe_cache.insert(job.subnet.genome().genes().to_vec(), outcome);
                        telemetry.absorb(&receipt, false);
                        telemetry.retried_evals += inner.retried_evals;
                        telemetry.transient_failures += inner.transient_failures;
                        telemetry.timeouts += inner.timeouts;
                        telemetry.exhausted_evals += inner.exhausted_evals;
                        telemetry.quarantined_evals += inner.quarantined_evals;
                        telemetry.fault_overhead_ms += inner.fault_overhead_ms;
                    }
                    Some(Ok((None, receipt))) => {
                        // The whole inner run kept failing: the backbone
                        // simply stays unpromoted this generation and can
                        // be retried later.
                        telemetry.absorb(&receipt, true);
                    }
                    Some(Err(e)) => {
                        errors.insert(job.history_idx, e);
                    }
                    // Dead-lettered by the execution plane: same shape
                    // as an exhausted inner run — skipped, retryable
                    // next generation.
                    None => telemetry.exhausted_evals += 1,
                }
            }
            // Surface the error of the lowest-indexed failed backbone.
            if let Some((_, e)) = errors.into_iter().next() {
                return Err(e);
            }
            for &i in &promoted {
                if state.history[i].ioe.is_none() {
                    state.history[i].ioe =
                        ioe_cache.get(state.history[i].subnet.genome().genes()).cloned();
                }
            }

            ran_this_call += 1;
            telemetry.generations_completed += 1;
            if generation + 1 == generations {
                state.generation = generations;
                completed = true;
                break;
            }

            // Combined selection (P''): accuracy, energy, and the best
            // dynamic gain the backbone's IOE achieved. Kept to three
            // decorrelated objectives — with more, non-dominated sorting
            // degenerates (nearly every point lands in front 0) and the
            // selection pressure toward exit-friendly backbones vanishes.
            let combined: Vec<Vec<f64>> = indices
                .iter()
                .map(|&i| {
                    let best_gain = state.history[i]
                        .ioe
                        .as_ref()
                        // lint:allow(det-float-order) max is order-insensitive
                        .map(|o| o.pareto.iter().fold(0.0f64, |g, s| g.max(s.fitness.energy_gain)))
                        .unwrap_or(0.0);
                    vec![
                        state.history[i].fitness.accuracy_pct,
                        -state.history[i].fitness.energy_mj,
                        best_gain,
                    ]
                })
                .collect();
            let order = rank_order(&combined);
            let survivors: Vec<&Genome> =
                order.iter().take((pop_size / 2).max(2)).map(|&k| &state.population[k]).collect();

            // Mutation and crossover build the next population.
            let mut next: Vec<Genome> = survivors.iter().map(|&g| g.clone()).collect();
            while next.len() < pop_size {
                let a = survivors[state.rng.gen_range(0..survivors.len())];
                let b = survivors[state.rng.gen_range(0..survivors.len())];
                let genes = if state.rng.gen_bool(0.9) {
                    let child = discrete::uniform_crossover(&mut state.rng, a.genes(), b.genes());
                    discrete::reset_mutation(&mut state.rng, &child, &cards, 0.08)
                } else {
                    discrete::reset_mutation(&mut state.rng, a.genes(), &cards, 0.15)
                };
                next.push(Genome::from_genes(genes));
            }
            state.population = next;
            state.generation = generation + 1;
        }

        if completed {
            // A terminal checkpoint (generation == budget) makes resuming
            // a finished run a cheap no-op replay of its stored history.
            self.write_checkpoint(opts, &state)?;
        }
        Ok(OoeOutcome { backbones: state.history, telemetry, exec, modeled_ms })
    }
}

/// Orders point indices by (non-domination rank, descending crowding
/// distance) — NSGA-II's total preorder, best first.
fn rank_order(points: &[Vec<f64>]) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(points);
    let mut order = Vec::with_capacity(points.len());
    for front in fronts {
        let d = crowding_distance(points, &front);
        let mut keyed: Vec<(usize, f64)> = front.iter().copied().zip(d).collect();
        keyed.sort_by(|a, b| b.1.total_cmp(&a.1));
        order.extend(keyed.into_iter().map(|(i, _)| i));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::AttemptOutcome;
    use hadas_hw::HwTarget;

    fn quick_run(seed: u64) -> OoeOutcome {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        hadas.run(&HadasConfig::smoke_test().with_seed(seed)).unwrap()
    }

    #[test]
    fn run_produces_joint_models() {
        let out = quick_run(11);
        assert!(!out.backbones().is_empty());
        assert!(!out.joint_models().is_empty(), "promoted backbones must carry IOE results");
        assert!(!out.pareto_models().is_empty());
        assert!(!out.interrupted());
        assert_eq!(out.telemetry().exhausted_evals, 0, "healthy substrate: no give-ups");
    }

    #[test]
    fn static_pareto_is_non_dominated() {
        let out = quick_run(12);
        let front: Vec<Vec<f64>> =
            out.static_pareto().iter().map(|b| b.fitness.to_plot_axes()).collect();
        for a in &front {
            for b in &front {
                assert!(!hadas_evo::dominates(a, b));
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick_run(13);
        let b = quick_run(13);
        let pa: Vec<f64> = a.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        let pb: Vec<f64> = b.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn pareto_models_save_energy_over_their_backbone() {
        let out = quick_run(14);
        let best = out
            .pareto_models()
            .into_iter()
            .max_by(|a, b| a.dynamic.energy_gain.total_cmp(&b.dynamic.energy_gain))
            .unwrap();
        assert!(
            best.dynamic.energy_gain > 0.2,
            "joint search should find strong savings, got {}",
            best.dynamic.energy_gain
        );
    }

    #[test]
    fn rank_order_puts_dominating_points_first() {
        let pts = vec![vec![1.0, 1.0], vec![3.0, 3.0], vec![2.0, 2.0]];
        let order = rank_order(&pts);
        assert_eq!(order[0], 1);
        assert_eq!(order[2], 0);
    }

    #[test]
    fn abort_flag_emits_a_partial_front() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let flag = Arc::new(AtomicBool::new(true));
        let opts = SearchOptions { abort: Some(Arc::clone(&flag)), ..Default::default() };
        let out = Ooe::new(&hadas, HadasConfig::smoke_test()).run_with(&opts).unwrap();
        assert!(out.interrupted(), "pre-set abort flag must stop at the first boundary");
        assert!(out.backbones().is_empty(), "nothing was evaluated before the stop");
        assert!(out.pareto_models().is_empty());
    }

    #[test]
    fn stop_after_generations_caps_the_call() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let cfg = HadasConfig::smoke_test(); // 4 generations
        let opts = SearchOptions { stop_after_generations: Some(1), ..Default::default() };
        let out = Ooe::new(&hadas, cfg).run_with(&opts).unwrap();
        assert!(out.interrupted());
        assert_eq!(out.telemetry().generations_completed, 1);
        assert!(!out.backbones().is_empty(), "one full generation of evaluations");
        assert!(out.backbones().iter().all(|b| b.generation == 0));
    }

    /// Every attempt fails: all candidates must degrade, none may kill
    /// the engine, and the outcome is an empty-but-well-formed front.
    #[derive(Debug)]
    struct AlwaysDown;
    impl FaultModel for AlwaysDown {
        fn eval_attempt(&self, _key: u64, _attempt: u32) -> AttemptOutcome {
            AttemptOutcome::TransientFailure { cost_ms: 50.0 }
        }
    }

    fn front_energies(out: &OoeOutcome) -> Vec<f64> {
        out.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect()
    }

    #[test]
    fn worker_count_never_changes_the_front() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let cfg = HadasConfig::smoke_test().with_seed(31);
        let sequential = Ooe::new(&hadas, cfg.clone())
            .run_with(&SearchOptions { workers: 1, ..Default::default() })
            .unwrap();
        assert_eq!(sequential.exec_telemetry(), &ExecTelemetry::default());
        assert!(sequential.modeled_makespan_ms() > 0.0);
        for workers in [2, 4, 8] {
            let parallel = Ooe::new(&hadas, cfg.clone())
                .run_with(&SearchOptions { workers, ..Default::default() })
                .unwrap();
            assert_eq!(front_energies(&sequential), front_energies(&parallel));
            assert_eq!(sequential.backbones().len(), parallel.backbones().len());
            assert!(
                parallel.modeled_makespan_ms() <= sequential.modeled_makespan_ms(),
                "more lanes can only shrink the modeled makespan"
            );
        }
    }

    /// An execution-plane fate resolver that crashes the first attempt
    /// of every fourth job (by fault key) and never touches the
    /// measurement plane.
    #[derive(Debug)]
    struct QuarterCrasher;
    impl FaultModel for QuarterCrasher {
        fn eval_attempt(&self, _key: u64, _attempt: u32) -> AttemptOutcome {
            AttemptOutcome::Ok { cost_ms: 1.0 }
        }
    }
    impl crate::executor::FateResolver for QuarterCrasher {
        fn crash_at(&self, key: u64, attempt: u32) -> bool {
            attempt == 0 && key.is_multiple_of(4)
        }
    }

    #[test]
    fn exec_chaos_heals_to_the_fault_free_front() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let cfg = HadasConfig::smoke_test().with_seed(33);
        let clean = Ooe::new(&hadas, cfg.clone())
            .run_with(&SearchOptions { workers: 2, ..Default::default() })
            .unwrap();
        let chaotic = Ooe::new(&hadas, cfg)
            .run_with(&SearchOptions {
                workers: 4,
                exec_chaos: Some(Arc::new(QuarterCrasher)),
                ..Default::default()
            })
            .unwrap();
        let exec = chaotic.exec_telemetry();
        assert!(exec.crashes > 0, "a quarter of the jobs must crash once");
        assert_eq!(exec.respawns, exec.crashes, "every crash respawns its lane");
        assert_eq!(exec.dead_letter_jobs, 0, "first-attempt crashes always recover");
        assert_eq!(
            front_energies(&clean),
            front_energies(&chaotic),
            "healed execution chaos must be invisible in the front"
        );
        assert_eq!(clean.backbones().len(), chaotic.backbones().len());
        assert_eq!(clean.telemetry().quarantined_evals, chaotic.telemetry().quarantined_evals);
    }

    #[test]
    fn data_chaos_quarantines_nan_fitness_and_stays_deterministic() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let cfg = HadasConfig::smoke_test().with_seed(21);
        let opts = SearchOptions { data_chaos: Some(77), ..Default::default() };
        let out = Ooe::new(&hadas, cfg.clone()).run_with(&opts).unwrap();
        assert!(
            out.telemetry().quarantined_evals > 0,
            "chaos rate {DATA_CHAOS_RATE} over a whole run must poison something"
        );
        // Every fitness the outcome carries is finite: quarantine caught
        // all injected NaNs before they reached dominance arithmetic.
        for b in out.backbones() {
            assert!(b.fitness.is_finite(), "non-finite fitness escaped quarantine");
        }
        for m in out.pareto_models() {
            assert!(m.dynamic.accuracy_pct.is_finite());
            assert!(m.dynamic.energy_mj.is_finite());
        }
        // The poison stream is pure in (seed, key): identical runs agree.
        let again = Ooe::new(&hadas, cfg).run_with(&opts).unwrap();
        assert_eq!(out.telemetry().quarantined_evals, again.telemetry().quarantined_evals);
        let pa: Vec<f64> = out.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        let pb: Vec<f64> = again.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn chaos_poison_stream_is_pure_and_hits_the_configured_rate() {
        let hits = (0..20_000).filter(|&k| chaos_poisons(5, k)).count();
        let rate = hits as f64 / 20_000.0;
        assert!(
            (rate - DATA_CHAOS_RATE).abs() < 0.02,
            "empirical poison rate {rate} far from {DATA_CHAOS_RATE}"
        );
        for k in 0..100 {
            assert_eq!(chaos_poisons(9, k), chaos_poisons(9, k));
        }
        // Different seeds give different streams.
        let a: Vec<bool> = (0..256).map(|k| chaos_poisons(1, k)).collect();
        let b: Vec<bool> = (0..256).map(|k| chaos_poisons(2, k)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn a_dead_substrate_degrades_instead_of_erroring() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let mut cfg = HadasConfig::smoke_test();
        cfg.ooe = crate::EngineBudget::new(6, 12); // keep it tiny
        cfg.ioe = crate::EngineBudget::new(4, 8);
        let opts = SearchOptions { faults: Arc::new(AlwaysDown), ..Default::default() };
        let out = Ooe::new(&hadas, cfg).run_with(&opts).unwrap();
        assert!(out.telemetry().exhausted_evals > 0);
        assert!(out.telemetry().transient_failures > 0);
        assert!(
            out.joint_models().is_empty(),
            "nothing can be measured on a dead substrate, but the run still finishes"
        );
    }
}
