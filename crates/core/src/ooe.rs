use crate::checkpoint::SearchCheckpoint;
use crate::clock::Deadline;
use crate::resilience::{FaultModel, NoFaults, RetryPolicy, SearchTelemetry};
use crate::{DynamicFitness, Hadas, HadasConfig, HadasError, Ioe, IoeOutcome, StaticFitness};
use hadas_evo::{crowding_distance, discrete, fast_non_dominated_sort};
use hadas_exits::ExitPlacement;
use hadas_hw::DvfsSetting;
use hadas_space::{Genome, Subnet};
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Salt separating the static-evaluation fault stream from the IOE seed
/// stream derived from the same genome hash.
const STATIC_FAULT_SALT: u64 = 0x5354_4154_4943_5f53; // "STATIC_S"
/// Salt for whole-IOE-run transient failures (a wedged accelerator run,
/// as opposed to one flaky candidate measurement inside it).
const IOE_RUN_FAULT_SALT: u64 = 0x494f_455f_5255_4e5f; // "IOE_RUN_"

/// Fraction of measurements the data-chaos injector poisons with NaN.
pub(crate) const DATA_CHAOS_RATE: f64 = 0.1;

/// Salt separating the data-chaos poison stream from the fault streams.
const DATA_CHAOS_SALT: u64 = 0x4441_5441_5f43_4841; // "DATA_CHA"

/// Deterministic data-chaos poison model: whether the measurement
/// identified by `key` comes back NaN-poisoned under chaos seed `seed`.
/// Pure in `(seed, key)`, so a resumed run replays the identical poison
/// history — the quarantine path stays byte-reproducible.
pub(crate) fn chaos_poisons(seed: u64, key: u64) -> bool {
    let mut h = DefaultHasher::new();
    DATA_CHAOS_SALT.hash(&mut h);
    seed.hash(&mut h);
    key.hash(&mut h);
    let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
    u < DATA_CHAOS_RATE
}

/// The static fitness assigned to a backbone whose measurement never
/// landed within its retry/timeout budget: zero accuracy at prohibitive
/// cost, so it is selected away without poisoning dominance arithmetic.
const FAILED_STATIC_FITNESS: StaticFitness =
    StaticFitness { accuracy_pct: 0.0, latency_ms: 1.0e9, energy_mj: 1.0e9 };

/// One backbone evaluated by the outer engine.
#[derive(Debug, Clone)]
pub struct EvaluatedBackbone {
    /// The decoded backbone.
    pub subnet: Subnet,
    /// Its static fitness `S(b)` (eq. (3)) at default DVFS.
    pub fitness: StaticFitness,
    /// Generation at which it was first evaluated.
    pub generation: usize,
    /// The inner-engine outcome, present if this backbone was promoted
    /// past the early-selection pruning (`b' ∈ P'`).
    pub ioe: Option<IoeOutcome>,
}

/// A fully resolved `(b*, x*, f*)` solution of the joint space.
#[derive(Debug, Clone)]
pub struct JointModel {
    /// The backbone.
    pub subnet: Subnet,
    /// Static fitness of the backbone alone.
    pub static_fitness: StaticFitness,
    /// The exit placement.
    pub placement: ExitPlacement,
    /// The DVFS setting.
    pub dvfs: DvfsSetting,
    /// Dynamic fitness of the assembled DyNN.
    pub dynamic: DynamicFitness,
}

/// Knobs for a fault-tolerant, resumable search run. `Default` is the
/// pre-existing behaviour: healthy substrate, no checkpointing, run to
/// budget completion.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// The substrate fault model consulted before every candidate
    /// evaluation (and every whole-IOE run). [`NoFaults`] by default.
    pub faults: Arc<dyn FaultModel>,
    /// Retry/backoff/timeout schedule per candidate.
    pub retry: RetryPolicy,
    /// Where to serialize a [`SearchCheckpoint`] at every generation
    /// boundary (atomically). `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume state loaded from a previous run's checkpoint. Must match
    /// this run's `HadasConfig` exactly.
    pub resume_from: Option<SearchCheckpoint>,
    /// Cooperative cancellation: when set, the run stops at the next
    /// generation boundary and returns the partial Pareto front.
    pub abort: Option<Arc<AtomicBool>>,
    /// Stop this call after completing this many generations (the chaos
    /// harness's deterministic "kill" point). Counted per call, so a
    /// resumed run gets its own allowance.
    pub stop_after_generations: Option<usize>,
    /// Wall-clock budget in seconds; on exhaustion the run stops at the
    /// next generation boundary with a partial front.
    pub time_budget_s: Option<f64>,
    /// Seed of the deterministic data-chaos injector: when set, a fixed
    /// fraction of candidate measurements (outer static evaluations and
    /// inner dynamic ones) come back NaN-poisoned. The engines must
    /// quarantine every poisoned fitness to the finite worst-case penalty
    /// — counted in [`SearchTelemetry::quarantined_evals`] — so the
    /// Pareto arithmetic never sees a non-finite number. `None` disables
    /// injection.
    pub data_chaos: Option<u64>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            faults: Arc::new(NoFaults),
            retry: RetryPolicy::default(),
            checkpoint_path: None,
            resume_from: None,
            abort: None,
            stop_after_generations: None,
            time_budget_s: None,
            data_chaos: None,
        }
    }
}

/// Outcome of a full bi-level HADAS run.
#[derive(Debug, Clone)]
pub struct OoeOutcome {
    backbones: Vec<EvaluatedBackbone>,
    telemetry: SearchTelemetry,
}

impl OoeOutcome {
    /// Every backbone evaluated, in evaluation order (the Fig. 5 top
    /// scatter).
    pub fn backbones(&self) -> &[EvaluatedBackbone] {
        &self.backbones
    }

    /// Fault-handling and interruption telemetry of the run that
    /// produced this outcome. Informational: not part of the
    /// deterministic Pareto payload.
    pub fn telemetry(&self) -> &SearchTelemetry {
        &self.telemetry
    }

    /// Whether the run stopped early (abort flag, generation cap, or
    /// time budget) and this is a partial front.
    pub fn interrupted(&self) -> bool {
        self.telemetry.interrupted
    }

    /// Static plot axes `[accuracy, −energy]` of the whole history.
    pub fn static_axes(&self) -> Vec<Vec<f64>> {
        self.backbones.iter().map(|b| b.fitness.to_plot_axes()).collect()
    }

    /// The static Pareto front over `[accuracy, −energy]` (Fig. 5 top).
    pub fn static_pareto(&self) -> Vec<&EvaluatedBackbone> {
        let axes = self.static_axes();
        let fronts = fast_non_dominated_sort(&axes);
        match fronts.first() {
            Some(front) => front.iter().map(|&i| &self.backbones[i]).collect(),
            None => Vec::new(),
        }
    }

    /// All `(b, x, f)` combinations discovered by the nested IOEs.
    pub fn joint_models(&self) -> Vec<JointModel> {
        let mut out = Vec::new();
        for b in &self.backbones {
            if let Some(ioe) = &b.ioe {
                for s in &ioe.pareto {
                    out.push(JointModel {
                        subnet: b.subnet.clone(),
                        static_fitness: b.fitness,
                        placement: s.placement.clone(),
                        dvfs: s.dvfs,
                        dynamic: s.fitness,
                    });
                }
            }
        }
        out
    }

    /// The final Pareto set over (dynamic accuracy, −dynamic energy) —
    /// the `(b*, x*, f*)` solutions the paper returns at generation `G`.
    /// On an interrupted run this is the partial front over everything
    /// evaluated so far — graceful degradation, never an empty panic.
    pub fn pareto_models(&self) -> Vec<JointModel> {
        let all = self.joint_models();
        if all.is_empty() {
            return all;
        }
        let axes: Vec<Vec<f64>> =
            all.iter().map(|m| vec![m.dynamic.accuracy_pct, -m.dynamic.energy_mj]).collect();
        let fronts = fast_non_dominated_sort(&axes);
        fronts[0].iter().map(|&i| all[i].clone()).collect()
    }
}

/// The outer optimization engine (paper §IV-A): NSGA-II over the backbone
/// space **B** with nested IOE invocations for promoted candidates.
#[derive(Debug)]
pub struct Ooe<'a> {
    hadas: &'a Hadas,
    config: HadasConfig,
}

/// Mutable engine state at a generation boundary — exactly what a
/// [`SearchCheckpoint`] captures.
struct EngineState {
    generation: usize,
    rng: StdRng,
    population: Vec<Genome>,
    history: Vec<EvaluatedBackbone>,
    // Ordered on purpose: hash iteration order is per-process random,
    // and this map feeds checkpoint/resume state.
    seen: BTreeMap<Vec<usize>, usize>,
}

impl<'a> Ooe<'a> {
    /// Creates an outer engine.
    pub fn new(hadas: &'a Hadas, config: HadasConfig) -> Self {
        Ooe { hadas, config }
    }

    fn static_fitness(&self, subnet: &Subnet) -> Result<StaticFitness, HadasError> {
        let device = self.hadas.device();
        let cost = device.subnet_cost(subnet, &device.default_dvfs())?;
        Ok(StaticFitness {
            accuracy_pct: self.hadas.accuracy().backbone_accuracy(subnet),
            latency_ms: cost.latency_ms(),
            energy_mj: cost.energy_mj(),
        })
    }

    fn genome_seed(&self, genome: &Genome) -> u64 {
        let mut h = DefaultHasher::new();
        genome.genes().hash(&mut h);
        self.config.seed.hash(&mut h);
        h.finish()
    }

    /// Restores engine state from a checkpoint, or seeds a fresh run.
    fn initial_state(&self, opts: &SearchOptions) -> Result<EngineState, HadasError> {
        let space = self.hadas.space();
        let pop_size = self.config.ooe.population;
        match &opts.resume_from {
            Some(ckpt) => {
                ckpt.validate_against(&self.config)?;
                if ckpt.population.len() != pop_size {
                    return Err(HadasError::Checkpoint(format!(
                        "checkpoint population {} does not match configured population {pop_size}",
                        ckpt.population.len()
                    )));
                }
                let history = ckpt.restore_history(space)?;
                let seen = history
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (b.subnet.genome().genes().to_vec(), i))
                    .collect();
                Ok(EngineState {
                    generation: ckpt.generation,
                    rng: StdRng::from_state(ckpt.rng_state),
                    population: ckpt.population.iter().cloned().map(Genome::from_genes).collect(),
                    history,
                    seen,
                })
            }
            None => {
                let mut rng = StdRng::seed_from_u64(self.config.seed);
                let population = (0..pop_size).map(|_| space.sample(&mut rng)).collect();
                Ok(EngineState {
                    generation: 0,
                    rng,
                    population,
                    history: Vec::new(),
                    seen: BTreeMap::new(),
                })
            }
        }
    }

    fn write_checkpoint(
        &self,
        opts: &SearchOptions,
        state: &EngineState,
    ) -> Result<(), HadasError> {
        let Some(path) = &opts.checkpoint_path else { return Ok(()) };
        let genes: Vec<Vec<usize>> = state.population.iter().map(|g| g.genes().to_vec()).collect();
        SearchCheckpoint::capture(
            &self.config,
            state.generation,
            state.rng.state(),
            &genes,
            &state.history,
        )
        .write(path)
    }

    fn should_stop(opts: &SearchOptions, deadline: &Deadline, ran_this_call: usize) -> bool {
        if opts.abort.as_ref().is_some_and(|f| f.load(Ordering::Relaxed)) {
            return true;
        }
        if opts.stop_after_generations.is_some_and(|n| ran_this_call >= n) {
            return true;
        }
        deadline.expired()
    }

    /// Runs the bi-level search on a healthy substrate with no
    /// checkpointing — [`Ooe::run_with`] with default [`SearchOptions`].
    ///
    /// # Errors
    ///
    /// Returns configuration or evaluation errors.
    pub fn run(&self) -> Result<OoeOutcome, HadasError> {
        self.run_with(&SearchOptions::default())
    }

    /// Runs the bi-level search under explicit robustness options:
    /// fault-injected candidate scoring with retry/backoff/timeout,
    /// per-generation checkpointing, resume, and graceful early stop
    /// with a partial Pareto front.
    ///
    /// Per generation: evaluate `S` for the population, rank and prune to
    /// `P'` (early selection), run an IOE per promoted backbone (cached
    /// across generations, executed in parallel), re-rank by combined
    /// static + dynamic objectives into `P''`, then mutate/cross over to
    /// form the next population.
    ///
    /// Determinism: given the same `HadasConfig` and a fault model that
    /// is a pure function of `(key, attempt)`, a run killed at any
    /// generation boundary and resumed from its checkpoint produces a
    /// byte-identical Pareto front to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns configuration, checkpoint, or evaluation errors. Transient
    /// substrate faults are absorbed (retried, then degraded), not
    /// returned.
    pub fn run_with(&self, opts: &SearchOptions) -> Result<OoeOutcome, HadasError> {
        self.config.validate()?;
        opts.retry.validate()?;
        let space = self.hadas.space();
        let cards = space.gene_cardinalities();
        let pop_size = self.config.ooe.population;
        let generations = self.config.ooe.generations();
        // All wall-clock reads live behind the clock boundary.
        let deadline = Deadline::from_budget(opts.time_budget_s);
        let mut telemetry = SearchTelemetry::default();

        let ioe_cache: Mutex<BTreeMap<Vec<usize>, IoeOutcome>> = Mutex::new(BTreeMap::new());
        let mut state = self.initial_state(opts)?;
        // Re-warm the IOE cache from restored history so resumed runs do
        // not recompute inner searches they already paid for.
        for b in &state.history {
            if let Some(ioe) = &b.ioe {
                ioe_cache.lock().insert(b.subnet.genome().genes().to_vec(), ioe.clone());
            }
        }

        let mut ran_this_call = 0usize;
        let mut completed = state.generation >= generations;
        while state.generation < generations {
            // Persist the exact state needed to (re-)run this generation;
            // a kill anywhere inside it resumes from this boundary.
            self.write_checkpoint(opts, &state)?;
            if Self::should_stop(opts, &deadline, ran_this_call) {
                telemetry.interrupted = true;
                break;
            }
            let generation = state.generation;

            // Static evaluation (deduplicated against history), wrapped
            // in retry-with-backoff under the per-candidate budget.
            let mut indices = Vec::with_capacity(state.population.len());
            for genome in &state.population {
                let key = genome.genes().to_vec();
                let idx = match state.seen.get(&key) {
                    Some(&i) => i,
                    None => {
                        let subnet = space.decode(genome)?;
                        let fault_key = self.genome_seed(genome) ^ STATIC_FAULT_SALT;
                        let (value, receipt) =
                            opts.retry.run(opts.faults.as_ref(), fault_key, || {
                                self.static_fitness(&subnet)
                            })?;
                        let exhausted = value.is_none();
                        telemetry.absorb(&receipt, exhausted);
                        let mut fitness = value.unwrap_or(FAILED_STATIC_FITNESS);
                        // Data chaos: a poisoned measurement comes back
                        // NaN; the quarantine below must catch it.
                        if let Some(chaos) = opts.data_chaos {
                            if chaos_poisons(chaos, fault_key) {
                                fitness.accuracy_pct = f64::NAN;
                            }
                        }
                        // NaN-fitness quarantine: a non-finite vector
                        // would satisfy no ordering axiom and could sit
                        // unchallenged in release-mode dominance sorts.
                        // Degrade it to the finite worst case instead.
                        if !fitness.is_finite() {
                            telemetry.quarantined_evals += 1;
                            fitness = FAILED_STATIC_FITNESS;
                        }
                        state.history.push(EvaluatedBackbone {
                            subnet,
                            fitness,
                            generation,
                            ioe: None,
                        });
                        state.seen.insert(key, state.history.len() - 1);
                        state.history.len() - 1
                    }
                };
                indices.push(idx);
            }

            // Early selection: rank by the full static vector of eq. (3).
            let pts: Vec<Vec<f64>> =
                indices.iter().map(|&i| state.history[i].fitness.to_maximisation()).collect();
            let order = rank_order(&pts);
            let promote =
                ((pop_size as f64 * self.config.prune_fraction).ceil() as usize).clamp(1, pop_size);
            let promoted: Vec<usize> = order.iter().take(promote).map(|&k| indices[k]).collect();

            // Nested IOEs for promoted backbones (parallel, cached, and
            // individually fault-wrapped: a backbone whose inner run
            // keeps failing is skipped this generation, not fatal).
            let pending: Vec<usize> = promoted
                .iter()
                .copied()
                .filter(|&i| {
                    state.history[i].ioe.is_none()
                        && !ioe_cache.lock().contains_key(state.history[i].subnet.genome().genes())
                })
                .collect();
            // Keyed on the (deterministic) history index, not completion
            // order, so the surfaced error is the same whichever worker
            // finishes first.
            let errors: Mutex<BTreeMap<usize, HadasError>> = Mutex::new(BTreeMap::new());
            let sub_telemetry: Mutex<SearchTelemetry> = Mutex::new(SearchTelemetry::default());
            crossbeam::thread::scope(|scope| {
                for &i in &pending {
                    let subnet = state.history[i].subnet.clone();
                    let seed = self.genome_seed(subnet.genome());
                    let cache = &ioe_cache;
                    let errors = &errors;
                    let sub_telemetry = &sub_telemetry;
                    let hadas = self.hadas;
                    let config = self.config.clone();
                    let faults = Arc::clone(&opts.faults);
                    let retry = opts.retry;
                    let data_chaos = opts.data_chaos;
                    scope.spawn(move |_| {
                        let run_key = seed ^ IOE_RUN_FAULT_SALT;
                        let attempt = retry.run(faults.as_ref(), run_key, || {
                            Ioe::new(hadas, subnet.clone(), config.clone()).run_with_chaos(
                                seed,
                                faults.as_ref(),
                                &retry,
                                data_chaos,
                            )
                        });
                        match attempt {
                            Ok((Some((outcome, inner)), receipt)) => {
                                cache.lock().insert(subnet.genome().genes().to_vec(), outcome);
                                let mut t = sub_telemetry.lock();
                                t.absorb(&receipt, false);
                                t.retried_evals += inner.retried_evals;
                                t.transient_failures += inner.transient_failures;
                                t.timeouts += inner.timeouts;
                                t.exhausted_evals += inner.exhausted_evals;
                                t.quarantined_evals += inner.quarantined_evals;
                                t.fault_overhead_ms += inner.fault_overhead_ms;
                            }
                            Ok((None, receipt)) => {
                                // The whole inner run kept failing: the
                                // backbone simply stays unpromoted this
                                // generation and can be retried later.
                                sub_telemetry.lock().absorb(&receipt, true);
                            }
                            Err(e) => {
                                errors.lock().insert(i, e);
                            }
                        }
                    });
                }
            })
            .map_err(|_| HadasError::Internal("an IOE worker thread panicked".into()))?;
            // Surface the error of the lowest-indexed failed backbone.
            if let Some((_, e)) = errors.into_inner().into_iter().next() {
                return Err(e);
            }
            {
                let sub = sub_telemetry.into_inner();
                telemetry.retried_evals += sub.retried_evals;
                telemetry.transient_failures += sub.transient_failures;
                telemetry.timeouts += sub.timeouts;
                telemetry.exhausted_evals += sub.exhausted_evals;
                telemetry.quarantined_evals += sub.quarantined_evals;
                telemetry.fault_overhead_ms += sub.fault_overhead_ms;
            }
            for &i in &promoted {
                if state.history[i].ioe.is_none() {
                    state.history[i].ioe =
                        ioe_cache.lock().get(state.history[i].subnet.genome().genes()).cloned();
                }
            }

            ran_this_call += 1;
            telemetry.generations_completed += 1;
            if generation + 1 == generations {
                state.generation = generations;
                completed = true;
                break;
            }

            // Combined selection (P''): accuracy, energy, and the best
            // dynamic gain the backbone's IOE achieved. Kept to three
            // decorrelated objectives — with more, non-dominated sorting
            // degenerates (nearly every point lands in front 0) and the
            // selection pressure toward exit-friendly backbones vanishes.
            let combined: Vec<Vec<f64>> = indices
                .iter()
                .map(|&i| {
                    let best_gain = state.history[i]
                        .ioe
                        .as_ref()
                        // lint:allow(det-float-order) max is order-insensitive
                        .map(|o| o.pareto.iter().fold(0.0f64, |g, s| g.max(s.fitness.energy_gain)))
                        .unwrap_or(0.0);
                    vec![
                        state.history[i].fitness.accuracy_pct,
                        -state.history[i].fitness.energy_mj,
                        best_gain,
                    ]
                })
                .collect();
            let order = rank_order(&combined);
            let survivors: Vec<&Genome> =
                order.iter().take((pop_size / 2).max(2)).map(|&k| &state.population[k]).collect();

            // Mutation and crossover build the next population.
            let mut next: Vec<Genome> = survivors.iter().map(|&g| g.clone()).collect();
            while next.len() < pop_size {
                let a = survivors[state.rng.gen_range(0..survivors.len())];
                let b = survivors[state.rng.gen_range(0..survivors.len())];
                let genes = if state.rng.gen_bool(0.9) {
                    let child = discrete::uniform_crossover(&mut state.rng, a.genes(), b.genes());
                    discrete::reset_mutation(&mut state.rng, &child, &cards, 0.08)
                } else {
                    discrete::reset_mutation(&mut state.rng, a.genes(), &cards, 0.15)
                };
                next.push(Genome::from_genes(genes));
            }
            state.population = next;
            state.generation = generation + 1;
        }

        if completed {
            // A terminal checkpoint (generation == budget) makes resuming
            // a finished run a cheap no-op replay of its stored history.
            self.write_checkpoint(opts, &state)?;
        }
        Ok(OoeOutcome { backbones: state.history, telemetry })
    }
}

/// Orders point indices by (non-domination rank, descending crowding
/// distance) — NSGA-II's total preorder, best first.
fn rank_order(points: &[Vec<f64>]) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(points);
    let mut order = Vec::with_capacity(points.len());
    for front in fronts {
        let d = crowding_distance(points, &front);
        let mut keyed: Vec<(usize, f64)> = front.iter().copied().zip(d).collect();
        keyed.sort_by(|a, b| b.1.total_cmp(&a.1));
        order.extend(keyed.into_iter().map(|(i, _)| i));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::AttemptOutcome;
    use hadas_hw::HwTarget;

    fn quick_run(seed: u64) -> OoeOutcome {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        hadas.run(&HadasConfig::smoke_test().with_seed(seed)).unwrap()
    }

    #[test]
    fn run_produces_joint_models() {
        let out = quick_run(11);
        assert!(!out.backbones().is_empty());
        assert!(!out.joint_models().is_empty(), "promoted backbones must carry IOE results");
        assert!(!out.pareto_models().is_empty());
        assert!(!out.interrupted());
        assert_eq!(out.telemetry().exhausted_evals, 0, "healthy substrate: no give-ups");
    }

    #[test]
    fn static_pareto_is_non_dominated() {
        let out = quick_run(12);
        let front: Vec<Vec<f64>> =
            out.static_pareto().iter().map(|b| b.fitness.to_plot_axes()).collect();
        for a in &front {
            for b in &front {
                assert!(!hadas_evo::dominates(a, b));
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick_run(13);
        let b = quick_run(13);
        let pa: Vec<f64> = a.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        let pb: Vec<f64> = b.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn pareto_models_save_energy_over_their_backbone() {
        let out = quick_run(14);
        let best = out
            .pareto_models()
            .into_iter()
            .max_by(|a, b| a.dynamic.energy_gain.total_cmp(&b.dynamic.energy_gain))
            .unwrap();
        assert!(
            best.dynamic.energy_gain > 0.2,
            "joint search should find strong savings, got {}",
            best.dynamic.energy_gain
        );
    }

    #[test]
    fn rank_order_puts_dominating_points_first() {
        let pts = vec![vec![1.0, 1.0], vec![3.0, 3.0], vec![2.0, 2.0]];
        let order = rank_order(&pts);
        assert_eq!(order[0], 1);
        assert_eq!(order[2], 0);
    }

    #[test]
    fn abort_flag_emits_a_partial_front() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let flag = Arc::new(AtomicBool::new(true));
        let opts = SearchOptions { abort: Some(Arc::clone(&flag)), ..Default::default() };
        let out = Ooe::new(&hadas, HadasConfig::smoke_test()).run_with(&opts).unwrap();
        assert!(out.interrupted(), "pre-set abort flag must stop at the first boundary");
        assert!(out.backbones().is_empty(), "nothing was evaluated before the stop");
        assert!(out.pareto_models().is_empty());
    }

    #[test]
    fn stop_after_generations_caps_the_call() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let cfg = HadasConfig::smoke_test(); // 4 generations
        let opts = SearchOptions { stop_after_generations: Some(1), ..Default::default() };
        let out = Ooe::new(&hadas, cfg).run_with(&opts).unwrap();
        assert!(out.interrupted());
        assert_eq!(out.telemetry().generations_completed, 1);
        assert!(!out.backbones().is_empty(), "one full generation of evaluations");
        assert!(out.backbones().iter().all(|b| b.generation == 0));
    }

    /// Every attempt fails: all candidates must degrade, none may kill
    /// the engine, and the outcome is an empty-but-well-formed front.
    #[derive(Debug)]
    struct AlwaysDown;
    impl FaultModel for AlwaysDown {
        fn eval_attempt(&self, _key: u64, _attempt: u32) -> AttemptOutcome {
            AttemptOutcome::TransientFailure { cost_ms: 50.0 }
        }
    }

    #[test]
    fn data_chaos_quarantines_nan_fitness_and_stays_deterministic() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let cfg = HadasConfig::smoke_test().with_seed(21);
        let opts = SearchOptions { data_chaos: Some(77), ..Default::default() };
        let out = Ooe::new(&hadas, cfg.clone()).run_with(&opts).unwrap();
        assert!(
            out.telemetry().quarantined_evals > 0,
            "chaos rate {DATA_CHAOS_RATE} over a whole run must poison something"
        );
        // Every fitness the outcome carries is finite: quarantine caught
        // all injected NaNs before they reached dominance arithmetic.
        for b in out.backbones() {
            assert!(b.fitness.is_finite(), "non-finite fitness escaped quarantine");
        }
        for m in out.pareto_models() {
            assert!(m.dynamic.accuracy_pct.is_finite());
            assert!(m.dynamic.energy_mj.is_finite());
        }
        // The poison stream is pure in (seed, key): identical runs agree.
        let again = Ooe::new(&hadas, cfg).run_with(&opts).unwrap();
        assert_eq!(out.telemetry().quarantined_evals, again.telemetry().quarantined_evals);
        let pa: Vec<f64> = out.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        let pb: Vec<f64> = again.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn chaos_poison_stream_is_pure_and_hits_the_configured_rate() {
        let hits = (0..20_000).filter(|&k| chaos_poisons(5, k)).count();
        let rate = hits as f64 / 20_000.0;
        assert!(
            (rate - DATA_CHAOS_RATE).abs() < 0.02,
            "empirical poison rate {rate} far from {DATA_CHAOS_RATE}"
        );
        for k in 0..100 {
            assert_eq!(chaos_poisons(9, k), chaos_poisons(9, k));
        }
        // Different seeds give different streams.
        let a: Vec<bool> = (0..256).map(|k| chaos_poisons(1, k)).collect();
        let b: Vec<bool> = (0..256).map(|k| chaos_poisons(2, k)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn a_dead_substrate_degrades_instead_of_erroring() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let mut cfg = HadasConfig::smoke_test();
        cfg.ooe = crate::EngineBudget::new(6, 12); // keep it tiny
        cfg.ioe = crate::EngineBudget::new(4, 8);
        let opts = SearchOptions { faults: Arc::new(AlwaysDown), ..Default::default() };
        let out = Ooe::new(&hadas, cfg).run_with(&opts).unwrap();
        assert!(out.telemetry().exhausted_evals > 0);
        assert!(out.telemetry().transient_failures > 0);
        assert!(
            out.joint_models().is_empty(),
            "nothing can be measured on a dead substrate, but the run still finishes"
        );
    }
}
