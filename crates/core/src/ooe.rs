use crate::{DynamicFitness, Hadas, HadasConfig, HadasError, Ioe, IoeOutcome, StaticFitness};
use hadas_evo::{crowding_distance, discrete, fast_non_dominated_sort};
use hadas_exits::ExitPlacement;
use hadas_hw::DvfsSetting;
use hadas_space::{Genome, Subnet};
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// One backbone evaluated by the outer engine.
#[derive(Debug, Clone)]
pub struct EvaluatedBackbone {
    /// The decoded backbone.
    pub subnet: Subnet,
    /// Its static fitness `S(b)` (eq. (3)) at default DVFS.
    pub fitness: StaticFitness,
    /// Generation at which it was first evaluated.
    pub generation: usize,
    /// The inner-engine outcome, present if this backbone was promoted
    /// past the early-selection pruning (`b' ∈ P'`).
    pub ioe: Option<IoeOutcome>,
}

/// A fully resolved `(b*, x*, f*)` solution of the joint space.
#[derive(Debug, Clone)]
pub struct JointModel {
    /// The backbone.
    pub subnet: Subnet,
    /// Static fitness of the backbone alone.
    pub static_fitness: StaticFitness,
    /// The exit placement.
    pub placement: ExitPlacement,
    /// The DVFS setting.
    pub dvfs: DvfsSetting,
    /// Dynamic fitness of the assembled DyNN.
    pub dynamic: DynamicFitness,
}

/// Outcome of a full bi-level HADAS run.
#[derive(Debug, Clone)]
pub struct OoeOutcome {
    backbones: Vec<EvaluatedBackbone>,
}

impl OoeOutcome {
    /// Every backbone evaluated, in evaluation order (the Fig. 5 top
    /// scatter).
    pub fn backbones(&self) -> &[EvaluatedBackbone] {
        &self.backbones
    }

    /// Static plot axes `[accuracy, −energy]` of the whole history.
    pub fn static_axes(&self) -> Vec<Vec<f64>> {
        self.backbones.iter().map(|b| b.fitness.to_plot_axes()).collect()
    }

    /// The static Pareto front over `[accuracy, −energy]` (Fig. 5 top).
    pub fn static_pareto(&self) -> Vec<&EvaluatedBackbone> {
        let axes = self.static_axes();
        let fronts = fast_non_dominated_sort(&axes);
        match fronts.first() {
            Some(front) => front.iter().map(|&i| &self.backbones[i]).collect(),
            None => Vec::new(),
        }
    }

    /// All `(b, x, f)` combinations discovered by the nested IOEs.
    pub fn joint_models(&self) -> Vec<JointModel> {
        let mut out = Vec::new();
        for b in &self.backbones {
            if let Some(ioe) = &b.ioe {
                for s in &ioe.pareto {
                    out.push(JointModel {
                        subnet: b.subnet.clone(),
                        static_fitness: b.fitness,
                        placement: s.placement.clone(),
                        dvfs: s.dvfs,
                        dynamic: s.fitness,
                    });
                }
            }
        }
        out
    }

    /// The final Pareto set over (dynamic accuracy, −dynamic energy) —
    /// the `(b*, x*, f*)` solutions the paper returns at generation `G`.
    pub fn pareto_models(&self) -> Vec<JointModel> {
        let all = self.joint_models();
        if all.is_empty() {
            return all;
        }
        let axes: Vec<Vec<f64>> =
            all.iter().map(|m| vec![m.dynamic.accuracy_pct, -m.dynamic.energy_mj]).collect();
        let fronts = fast_non_dominated_sort(&axes);
        fronts[0].iter().map(|&i| all[i].clone()).collect()
    }
}

/// The outer optimization engine (paper §IV-A): NSGA-II over the backbone
/// space **B** with nested IOE invocations for promoted candidates.
#[derive(Debug)]
pub struct Ooe<'a> {
    hadas: &'a Hadas,
    config: HadasConfig,
}

impl<'a> Ooe<'a> {
    /// Creates an outer engine.
    pub fn new(hadas: &'a Hadas, config: HadasConfig) -> Self {
        Ooe { hadas, config }
    }

    fn static_fitness(&self, subnet: &Subnet) -> Result<StaticFitness, HadasError> {
        let device = self.hadas.device();
        let cost = device.subnet_cost(subnet, &device.default_dvfs())?;
        Ok(StaticFitness {
            accuracy_pct: self.hadas.accuracy().backbone_accuracy(subnet),
            latency_ms: cost.latency_ms(),
            energy_mj: cost.energy_mj(),
        })
    }

    fn genome_seed(&self, genome: &Genome) -> u64 {
        let mut h = DefaultHasher::new();
        genome.genes().hash(&mut h);
        self.config.seed.hash(&mut h);
        h.finish()
    }

    /// Runs the bi-level search.
    ///
    /// Per generation: evaluate `S` for the population, rank and prune to
    /// `P'` (early selection), run an IOE per promoted backbone (cached
    /// across generations, executed in parallel), re-rank by combined
    /// static + dynamic objectives into `P''`, then mutate/cross over to
    /// form the next population.
    ///
    /// # Errors
    ///
    /// Returns configuration or evaluation errors.
    pub fn run(&self) -> Result<OoeOutcome, HadasError> {
        self.config.validate()?;
        let space = self.hadas.space();
        let cards = space.gene_cardinalities();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let pop_size = self.config.ooe.population;
        let generations = self.config.ooe.generations();

        let ioe_cache: Mutex<HashMap<Vec<usize>, IoeOutcome>> = Mutex::new(HashMap::new());
        let mut history: Vec<EvaluatedBackbone> = Vec::new();
        let mut seen: HashMap<Vec<usize>, usize> = HashMap::new(); // genome -> history idx

        let mut population: Vec<Genome> = (0..pop_size).map(|_| space.sample(&mut rng)).collect();

        for generation in 0..generations {
            // Static evaluation (deduplicated against history).
            let mut indices = Vec::with_capacity(population.len());
            for genome in &population {
                let key = genome.genes().to_vec();
                let idx = match seen.get(&key) {
                    Some(&i) => i,
                    None => {
                        let subnet = space.decode(genome)?;
                        let fitness = self.static_fitness(&subnet)?;
                        history.push(EvaluatedBackbone { subnet, fitness, generation, ioe: None });
                        seen.insert(key, history.len() - 1);
                        history.len() - 1
                    }
                };
                indices.push(idx);
            }

            // Early selection: rank by the full static vector of eq. (3).
            let pts: Vec<Vec<f64>> =
                indices.iter().map(|&i| history[i].fitness.to_maximisation()).collect();
            let order = rank_order(&pts);
            let promote =
                ((pop_size as f64 * self.config.prune_fraction).ceil() as usize).clamp(1, pop_size);
            let promoted: Vec<usize> = order.iter().take(promote).map(|&k| indices[k]).collect();

            // Nested IOEs for promoted backbones (parallel, cached).
            let pending: Vec<usize> = promoted
                .iter()
                .copied()
                .filter(|&i| {
                    history[i].ioe.is_none()
                        && !ioe_cache.lock().contains_key(history[i].subnet.genome().genes())
                })
                .collect();
            let errors: Mutex<Vec<HadasError>> = Mutex::new(Vec::new());
            crossbeam::thread::scope(|scope| {
                for &i in &pending {
                    let subnet = history[i].subnet.clone();
                    let seed = self.genome_seed(subnet.genome());
                    let cache = &ioe_cache;
                    let errors = &errors;
                    let hadas = self.hadas;
                    let config = self.config.clone();
                    scope.spawn(move |_| match Ioe::new(hadas, subnet.clone(), config).run(seed) {
                        Ok(outcome) => {
                            cache.lock().insert(subnet.genome().genes().to_vec(), outcome);
                        }
                        Err(e) => errors.lock().push(e),
                    });
                }
            })
            .map_err(|_| HadasError::Internal("an IOE worker thread panicked".into()))?;
            if let Some(e) = errors.into_inner().into_iter().next() {
                return Err(e);
            }
            for &i in &promoted {
                if history[i].ioe.is_none() {
                    history[i].ioe =
                        ioe_cache.lock().get(history[i].subnet.genome().genes()).cloned();
                }
            }

            if generation + 1 == generations {
                break;
            }

            // Combined selection (P''): accuracy, energy, and the best
            // dynamic gain the backbone's IOE achieved. Kept to three
            // decorrelated objectives — with more, non-dominated sorting
            // degenerates (nearly every point lands in front 0) and the
            // selection pressure toward exit-friendly backbones vanishes.
            let combined: Vec<Vec<f64>> = indices
                .iter()
                .map(|&i| {
                    let best_gain = history[i]
                        .ioe
                        .as_ref()
                        .map(|o| o.pareto.iter().fold(0.0f64, |g, s| g.max(s.fitness.energy_gain)))
                        .unwrap_or(0.0);
                    vec![history[i].fitness.accuracy_pct, -history[i].fitness.energy_mj, best_gain]
                })
                .collect();
            let order = rank_order(&combined);
            let survivors: Vec<&Genome> =
                order.iter().take((pop_size / 2).max(2)).map(|&k| &population[k]).collect();

            // Mutation and crossover build the next population.
            let mut next: Vec<Genome> = survivors.iter().map(|&g| g.clone()).collect();
            while next.len() < pop_size {
                let a = survivors[rng.gen_range(0..survivors.len())];
                let b = survivors[rng.gen_range(0..survivors.len())];
                let genes = if rng.gen_bool(0.9) {
                    let child = discrete::uniform_crossover(&mut rng, a.genes(), b.genes());
                    discrete::reset_mutation(&mut rng, &child, &cards, 0.08)
                } else {
                    discrete::reset_mutation(&mut rng, a.genes(), &cards, 0.15)
                };
                next.push(Genome::from_genes(genes));
            }
            population = next;
        }

        Ok(OoeOutcome { backbones: history })
    }
}

/// Orders point indices by (non-domination rank, descending crowding
/// distance) — NSGA-II's total preorder, best first.
fn rank_order(points: &[Vec<f64>]) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(points);
    let mut order = Vec::with_capacity(points.len());
    for front in fronts {
        let d = crowding_distance(points, &front);
        let mut keyed: Vec<(usize, f64)> = front.iter().copied().zip(d).collect();
        keyed.sort_by(|a, b| b.1.total_cmp(&a.1));
        order.extend(keyed.into_iter().map(|(i, _)| i));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadas_hw::HwTarget;

    fn quick_run(seed: u64) -> OoeOutcome {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        hadas.run(&HadasConfig::smoke_test().with_seed(seed)).unwrap()
    }

    #[test]
    fn run_produces_joint_models() {
        let out = quick_run(11);
        assert!(!out.backbones().is_empty());
        assert!(!out.joint_models().is_empty(), "promoted backbones must carry IOE results");
        assert!(!out.pareto_models().is_empty());
    }

    #[test]
    fn static_pareto_is_non_dominated() {
        let out = quick_run(12);
        let front: Vec<Vec<f64>> =
            out.static_pareto().iter().map(|b| b.fitness.to_plot_axes()).collect();
        for a in &front {
            for b in &front {
                assert!(!hadas_evo::dominates(a, b));
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick_run(13);
        let b = quick_run(13);
        let pa: Vec<f64> = a.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        let pb: Vec<f64> = b.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn pareto_models_save_energy_over_their_backbone() {
        let out = quick_run(14);
        let best = out
            .pareto_models()
            .into_iter()
            .max_by(|a, b| a.dynamic.energy_gain.total_cmp(&b.dynamic.energy_gain))
            .unwrap();
        assert!(
            best.dynamic.energy_gain > 0.2,
            "joint search should find strong savings, got {}",
            best.dynamic.energy_gain
        );
    }

    #[test]
    fn rank_order_puts_dominating_points_first() {
        let pts = vec![vec![1.0, 1.0], vec![3.0, 3.0], vec![2.0, 2.0]];
        let order = rank_order(&pts);
        assert_eq!(order[0], 1);
        assert_eq!(order[2], 0);
    }
}
