//! Deployment selection: turning an inner-search Pareto set into the one
//! configuration to ship.
//!
//! The paper reports its Table III picks under an implicit convention this
//! module makes explicit: a dynamic model may spend its early-exit latency
//! headroom on lower DVFS frequencies, but must not end up *slower* than
//! the static baseline; within that envelope, pick the cheapest
//! configuration that holds the accuracy bar.

use crate::{IoeOutcome, IoeSolution};

/// Constraints for picking a deployment configuration from a Pareto set.
///
/// ```
/// use hadas::DeploymentPicker;
///
/// let picker = DeploymentPicker::new()
///     .max_latency_ms(25.0)
///     .min_accuracy_pct(92.0);
/// assert_eq!(picker.max_latency_ms_value(), Some(25.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeploymentPicker {
    max_latency_ms: Option<f64>,
    min_accuracy_pct: Option<f64>,
    max_energy_mj: Option<f64>,
}

impl DeploymentPicker {
    /// A picker with no constraints (pure energy minimisation).
    pub fn new() -> Self {
        DeploymentPicker::default()
    }

    /// Requires the dynamic model to be no slower than `ms` per inference
    /// — typically the static backbone's latency.
    pub fn max_latency_ms(mut self, ms: f64) -> Self {
        self.max_latency_ms = Some(ms);
        self
    }

    /// Requires at least this ideal-mapping accuracy (percent).
    pub fn min_accuracy_pct(mut self, pct: f64) -> Self {
        self.min_accuracy_pct = Some(pct);
        self
    }

    /// Requires at most this expected energy per inference (mJ).
    pub fn max_energy_mj(mut self, mj: f64) -> Self {
        self.max_energy_mj = Some(mj);
        self
    }

    /// The configured latency cap, if any.
    pub fn max_latency_ms_value(&self) -> Option<f64> {
        self.max_latency_ms
    }

    /// The configured accuracy floor, if any.
    pub fn min_accuracy_pct_value(&self) -> Option<f64> {
        self.min_accuracy_pct
    }

    fn admits(&self, s: &IoeSolution) -> bool {
        self.max_latency_ms.is_none_or(|ms| s.fitness.latency_ms <= ms)
            && self.min_accuracy_pct.is_none_or(|pct| s.fitness.accuracy_pct >= pct)
            && self.max_energy_mj.is_none_or(|mj| s.fitness.energy_mj <= mj)
    }

    /// The minimum-energy Pareto solution satisfying every constraint, or
    /// `None` if the set admits nothing.
    pub fn pick<'a>(&self, outcome: &'a IoeOutcome) -> Option<&'a IoeSolution> {
        outcome
            .pareto
            .iter()
            .filter(|s| self.admits(s))
            .min_by(|a, b| a.fitness.energy_mj.total_cmp(&b.fitness.energy_mj))
    }

    /// The maximum-accuracy Pareto solution satisfying every constraint —
    /// the pick for accuracy-first deployments.
    pub fn pick_accurate<'a>(&self, outcome: &'a IoeOutcome) -> Option<&'a IoeSolution> {
        outcome
            .pareto
            .iter()
            .filter(|s| self.admits(s))
            .max_by(|a, b| a.fitness.accuracy_pct.total_cmp(&b.fitness.accuracy_pct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hadas, HadasConfig};
    use hadas_hw::HwTarget;
    use hadas_space::baselines;

    fn outcome() -> IoeOutcome {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let subnet = hadas.space().decode(&baselines::baseline_genome(3)).unwrap();
        hadas.run_ioe(&subnet, &HadasConfig::smoke_test(), 5).unwrap()
    }

    #[test]
    fn unconstrained_pick_is_min_energy() {
        let out = outcome();
        let pick = DeploymentPicker::new().pick(&out).unwrap();
        for s in &out.pareto {
            assert!(pick.fitness.energy_mj <= s.fitness.energy_mj);
        }
    }

    #[test]
    fn latency_cap_is_respected() {
        let out = outcome();
        let median = {
            let mut l: Vec<f64> = out.pareto.iter().map(|s| s.fitness.latency_ms).collect();
            l.sort_by(f64::total_cmp);
            l[l.len() / 2]
        };
        let picker = DeploymentPicker::new().max_latency_ms(median);
        if let Some(pick) = picker.pick(&out) {
            assert!(pick.fitness.latency_ms <= median);
        }
    }

    #[test]
    fn accuracy_floor_is_respected_and_can_be_infeasible() {
        let out = outcome();
        let impossible = DeploymentPicker::new().min_accuracy_pct(99.9);
        assert!(impossible.pick(&out).is_none());
        let best = out.pareto.iter().map(|s| s.fitness.accuracy_pct).fold(f64::MIN, f64::max);
        let feasible = DeploymentPicker::new().min_accuracy_pct(best - 0.01);
        let pick = feasible.pick(&out).unwrap();
        assert!(pick.fitness.accuracy_pct >= best - 0.01);
    }

    #[test]
    fn accurate_pick_maximises_accuracy() {
        let out = outcome();
        let pick = DeploymentPicker::new().pick_accurate(&out).unwrap();
        for s in &out.pareto {
            assert!(pick.fitness.accuracy_pct >= s.fitness.accuracy_pct);
        }
    }

    #[test]
    fn energy_cap_filters() {
        let out = outcome();
        let min_e = out.pareto.iter().map(|s| s.fitness.energy_mj).fold(f64::INFINITY, f64::min);
        let picker = DeploymentPicker::new().max_energy_mj(min_e - 1.0);
        assert!(picker.pick(&out).is_none());
    }
}
