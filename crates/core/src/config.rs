use crate::HadasError;
use serde::{Deserialize, Serialize};

/// Population size and evaluation budget of one evolutionary engine.
///
/// The paper expresses budgets as `#iterations = G × P` — 450 for the OOE
/// and 3500 for the IOE in its experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineBudget {
    /// Population size `P`.
    pub population: usize,
    /// Total evaluations `G × P`.
    pub iterations: usize,
}

impl EngineBudget {
    /// Creates a budget.
    pub fn new(population: usize, iterations: usize) -> Self {
        EngineBudget { population, iterations }
    }

    /// Number of generations this budget affords (at least 1).
    pub fn generations(&self) -> usize {
        (self.iterations / self.population).max(1)
    }
}

/// Configuration of a full HADAS run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HadasConfig {
    /// Master seed; the whole bi-level search is deterministic given it.
    pub seed: u64,
    /// Outer (backbone) engine budget.
    pub ooe: EngineBudget,
    /// Inner (exits × DVFS) engine budget, spent per selected backbone.
    pub ioe: EngineBudget,
    /// Fraction of each OOE generation promoted to the IOE stage (the
    /// early-selection pruning `P' ⊂ P`).
    pub prune_fraction: f64,
    /// Trade-off exponent γ of the `dissimᵞ` regularizer (eq. (6)).
    pub gamma: f64,
    /// Whether the dissimilarity regularizer is applied at all (the
    /// Fig. 7 ablation disables it).
    pub use_dissimilarity: bool,
}

impl HadasConfig {
    /// The paper's experimental budgets: OOE 450 iterations, IOE 3500.
    pub fn paper() -> Self {
        HadasConfig {
            seed: 0x44415445, // "DATE"
            ooe: EngineBudget::new(30, 450),
            ioe: EngineBudget::new(50, 3500),
            prune_fraction: 0.25,
            gamma: 1.0,
            use_dissimilarity: true,
        }
    }

    /// A reduced-budget configuration that preserves the paper's shape
    /// while finishing quickly — used by examples and integration tests.
    pub fn smoke_test() -> Self {
        HadasConfig {
            seed: 7,
            ooe: EngineBudget::new(10, 40),
            ioe: EngineBudget::new(12, 60),
            prune_fraction: 0.3,
            gamma: 1.0,
            use_dissimilarity: true,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the dissimilarity settings (for the Fig. 7 ablation).
    pub fn with_dissimilarity(mut self, enabled: bool, gamma: f64) -> Self {
        self.use_dissimilarity = enabled;
        self.gamma = gamma;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for degenerate budgets or an
    /// out-of-range prune fraction.
    pub fn validate(&self) -> Result<(), HadasError> {
        if self.ooe.population < 2 || self.ioe.population < 2 {
            return Err(HadasError::InvalidConfig("populations must be at least 2".into()));
        }
        if self.ooe.iterations < self.ooe.population || self.ioe.iterations < self.ioe.population {
            return Err(HadasError::InvalidConfig(
                "budgets must cover at least one generation".into(),
            ));
        }
        if !(0.0 < self.prune_fraction && self.prune_fraction <= 1.0) {
            return Err(HadasError::InvalidConfig(format!(
                "prune fraction {} outside (0, 1]",
                self.prune_fraction
            )));
        }
        if self.gamma < 0.0 || !self.gamma.is_finite() {
            return Err(HadasError::InvalidConfig(format!("gamma {} must be ≥ 0", self.gamma)));
        }
        Ok(())
    }
}

impl Default for HadasConfig {
    fn default() -> Self {
        HadasConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budgets_match_section_v() {
        let cfg = HadasConfig::paper();
        assert_eq!(cfg.ooe.iterations, 450);
        assert_eq!(cfg.ioe.iterations, 3500);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn generations_derive_from_budget() {
        let b = EngineBudget::new(50, 3500);
        assert_eq!(b.generations(), 70);
        assert_eq!(EngineBudget::new(10, 5).generations(), 1);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let mut cfg = HadasConfig::smoke_test();
        cfg.prune_fraction = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = HadasConfig::smoke_test();
        cfg.ooe.population = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = HadasConfig::smoke_test();
        cfg.gamma = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let cfg = HadasConfig::smoke_test().with_seed(99).with_dissimilarity(false, 0.0);
        assert_eq!(cfg.seed, 99);
        assert!(!cfg.use_dissimilarity);
    }
}
