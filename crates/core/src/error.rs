use std::error::Error;
use std::fmt;

/// Errors produced by the HADAS engines.
#[derive(Debug)]
#[non_exhaustive]
pub enum HadasError {
    /// The backbone space rejected a genome.
    Space(hadas_space::SpaceError),
    /// The hardware simulator rejected a query.
    Hw(hadas_hw::HwError),
    /// An exit placement was invalid.
    Exit(hadas_exits::ExitError),
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// An internal engine invariant was broken (e.g. a worker thread
    /// panicked). Indicates a bug rather than bad input.
    Internal(String),
}

impl fmt::Display for HadasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HadasError::Space(e) => write!(f, "search space error: {e}"),
            HadasError::Hw(e) => write!(f, "hardware model error: {e}"),
            HadasError::Exit(e) => write!(f, "exit placement error: {e}"),
            HadasError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HadasError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl Error for HadasError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HadasError::Space(e) => Some(e),
            HadasError::Hw(e) => Some(e),
            HadasError::Exit(e) => Some(e),
            HadasError::InvalidConfig(_) | HadasError::Internal(_) => None,
        }
    }
}

impl From<hadas_space::SpaceError> for HadasError {
    fn from(e: hadas_space::SpaceError) -> Self {
        HadasError::Space(e)
    }
}

impl From<hadas_hw::HwError> for HadasError {
    fn from(e: hadas_hw::HwError) -> Self {
        HadasError::Hw(e)
    }
}

impl From<hadas_exits::ExitError> for HadasError {
    fn from(e: hadas_exits::ExitError) -> Self {
        HadasError::Exit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain_through() {
        let e =
            HadasError::from(hadas_hw::HwError::ExitPositionOutOfRange { position: 9, layers: 5 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("hardware"));
    }
}
