use std::error::Error;
use std::fmt;

/// Errors produced by the HADAS engines.
#[derive(Debug)]
#[non_exhaustive]
pub enum HadasError {
    /// The backbone space rejected a genome.
    Space(hadas_space::SpaceError),
    /// The hardware simulator rejected a query.
    Hw(hadas_hw::HwError),
    /// An exit placement was invalid.
    Exit(hadas_exits::ExitError),
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// A search checkpoint could not be written, read, or applied
    /// (I/O failure, corrupt JSON, or a config/space mismatch between
    /// the checkpoint and the resuming run).
    Checkpoint(String),
    /// A candidate evaluation kept failing transiently until its retry
    /// and timeout budget ran out (fault-injection or flaky substrate).
    /// The search degrades the candidate rather than dying, but callers
    /// that evaluate single candidates surface it.
    EvalExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// Simulated milliseconds burned across attempts and backoff.
        spent_ms: f64,
    },
    /// An internal engine invariant was broken (e.g. a worker thread
    /// panicked). Indicates a bug rather than bad input.
    Internal(String),
}

impl fmt::Display for HadasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HadasError::Space(e) => write!(f, "search space error: {e}"),
            HadasError::Hw(e) => write!(f, "hardware model error: {e}"),
            HadasError::Exit(e) => write!(f, "exit placement error: {e}"),
            HadasError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HadasError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            HadasError::EvalExhausted { attempts, spent_ms } => write!(
                f,
                "candidate evaluation exhausted its fault budget after {attempts} attempts \
                 ({spent_ms:.1} ms simulated)"
            ),
            HadasError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl Error for HadasError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HadasError::Space(e) => Some(e),
            HadasError::Hw(e) => Some(e),
            HadasError::Exit(e) => Some(e),
            HadasError::InvalidConfig(_)
            | HadasError::Checkpoint(_)
            | HadasError::EvalExhausted { .. }
            | HadasError::Internal(_) => None,
        }
    }
}

impl From<hadas_space::SpaceError> for HadasError {
    fn from(e: hadas_space::SpaceError) -> Self {
        HadasError::Space(e)
    }
}

impl From<hadas_hw::HwError> for HadasError {
    fn from(e: hadas_hw::HwError) -> Self {
        HadasError::Hw(e)
    }
}

impl From<hadas_exits::ExitError> for HadasError {
    fn from(e: hadas_exits::ExitError) -> Self {
        HadasError::Exit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain_through() {
        let e =
            HadasError::from(hadas_hw::HwError::ExitPositionOutOfRange { position: 9, layers: 5 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("hardware"));
    }
}
