//! Serialisable experiment records: every bench binary exports its rows
//! and series as JSON so figures can be re-plotted outside the harness.

use crate::{DynamicFitness, StaticFitness};
use serde::{Deserialize, Serialize};

/// One scatter point of Fig. 5 (top or bottom).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// X coordinate (energy mJ for the top row, energy gain for the bottom).
    pub x: f64,
    /// Y coordinate (accuracy % for the top row, mean `N_i` for the bottom).
    pub y: f64,
    /// Whether the point lies on its run's Pareto front.
    pub pareto: bool,
}

/// One hardware setting's worth of Fig. 5 data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Panel {
    /// Hardware setting name.
    pub hardware: String,
    /// Explored points by HADAS.
    pub hadas: Vec<ScatterPoint>,
    /// Baseline points (a0..a6 for the top row; optimized-baseline IOE
    /// points for the bottom row).
    pub baselines: Vec<ScatterPoint>,
}

/// One bar pair of Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Bar {
    /// Hardware setting name.
    pub hardware: String,
    /// Hypervolume of the HADAS front.
    pub hadas_hv: f64,
    /// Hypervolume of the optimized-baseline front.
    pub baseline_hv: f64,
    /// Fraction of HADAS solutions dominating a baseline solution.
    pub hadas_rod: f64,
    /// Fraction of baseline solutions dominating a HADAS solution.
    pub baseline_rod: f64,
}

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Model name (`AttentiveNAS_a0`, `HADAS_b1`, ...).
    pub model: String,
    /// Static accuracy (%).
    pub baseline_acc: f64,
    /// Early-exit (ideal mapping) accuracy (%).
    pub eex_acc: f64,
    /// Static energy at default clocks (mJ).
    pub baseline_energy_mj: f64,
    /// Dynamic energy with early exits at default clocks (mJ).
    pub eex_energy_mj: f64,
    /// Dynamic energy with early exits and optimised DVFS (mJ).
    pub eex_dvfs_energy_mj: f64,
}

/// A static-vs-dynamic record used by the Fig. 1 motivation bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Bars {
    /// Model name.
    pub model: String,
    /// Static fitness.
    pub static_fitness: StaticFitness,
    /// Dynamic fitness with exits only (default DVFS).
    pub dyn_fitness: DynamicFitness,
    /// Dynamic fitness with exits and optimised DVFS.
    pub dyn_hw_fitness: DynamicFitness,
}

/// Wraps a serialisable record with the experiment id for JSON export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment<T> {
    /// Experiment identifier (e.g. `"fig5_ooe"`).
    pub id: String,
    /// The payload rows/panels.
    pub data: T,
}

impl<T: Serialize> Experiment<T> {
    /// Creates a record.
    pub fn new(id: impl Into<String>, data: T) -> Self {
        Experiment { id: id.into(), data }
    }

    /// Serialises to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if the payload cannot be serialised
    /// (unrepresentable floats).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_round_trips_json() {
        let e = Experiment::new(
            "fig6",
            vec![Fig6Bar {
                hardware: "TX2 Pascal GPU".into(),
                hadas_hv: 1.25,
                baseline_hv: 1.05,
                hadas_rod: 0.7,
                baseline_rod: 0.1,
            }],
        );
        let json = e.to_json().unwrap();
        let back: Experiment<Vec<Fig6Bar>> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn scatter_points_serialize_compactly() {
        let p = ScatterPoint { x: 1.0, y: 2.0, pareto: true };
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("\"pareto\":true"));
    }
}
