//! Engine-level integration tests: IOE caching inside the OOE, stability
//! under thread scheduling, configuration error paths, and outcome
//! accessor invariants.

use hadas::{EngineBudget, Hadas, HadasConfig, HadasError};
use hadas_hw::HwTarget;
use std::collections::HashMap;

fn cfg() -> HadasConfig {
    HadasConfig::smoke_test()
}

#[test]
fn duplicate_backbones_reuse_their_ioe_outcome() {
    // The OOE caches IOE runs by genome: a backbone surviving several
    // generations must carry exactly one IOE outcome (same object state),
    // and the number of distinct promoted genomes bounds the IOE work.
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let outcome = hadas.run(&cfg()).expect("runs");
    let mut per_genome: HashMap<Vec<usize>, usize> = HashMap::new();
    for b in outcome.backbones() {
        if b.ioe.is_some() {
            *per_genome.entry(b.subnet.genome().genes().to_vec()).or_default() += 1;
        }
    }
    // History deduplicates genomes, so each appears at most once at all.
    assert!(per_genome.values().all(|&c| c == 1));
    assert!(!per_genome.is_empty());
}

#[test]
fn parallel_ioe_execution_is_deterministic() {
    // The nested IOEs run on worker threads; thread interleaving must not
    // leak into results because each IOE is seeded by its genome.
    let hadas = Hadas::for_target(HwTarget::AgxCarmelCpu);
    let runs: Vec<Vec<(f64, f64)>> = (0..3)
        .map(|_| {
            let outcome = hadas.run(&cfg().with_seed(99)).expect("runs");
            let mut v: Vec<(f64, f64)> = outcome
                .pareto_models()
                .iter()
                .map(|m| (m.dynamic.energy_mj, m.dynamic.accuracy_pct))
                .collect();
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
            v
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn invalid_configs_are_rejected_up_front() {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let mut bad = cfg();
    bad.prune_fraction = 2.0;
    assert!(matches!(hadas.run(&bad), Err(HadasError::InvalidConfig(_))));
    let mut bad = cfg();
    bad.ioe = EngineBudget::new(4, 2); // budget below one generation
    assert!(matches!(hadas.run(&bad), Err(HadasError::InvalidConfig(_))));
}

#[test]
fn outcome_accessors_are_consistent() {
    let hadas = Hadas::for_target(HwTarget::Tx2DenverCpu);
    let outcome = hadas.run(&cfg()).expect("runs");
    assert_eq!(outcome.static_axes().len(), outcome.backbones().len());
    // Every joint model's backbone exists in the history.
    for m in outcome.joint_models() {
        assert!(outcome.backbones().iter().any(|b| b.subnet.genome() == m.subnet.genome()));
    }
    // The Pareto models are a subset of the joint models by fitness.
    let joint: Vec<(f64, f64)> = outcome
        .joint_models()
        .iter()
        .map(|m| (m.dynamic.energy_mj, m.dynamic.accuracy_pct))
        .collect();
    for m in outcome.pareto_models() {
        assert!(joint.contains(&(m.dynamic.energy_mj, m.dynamic.accuracy_pct)));
    }
}

#[test]
fn larger_ooe_budgets_never_shrink_the_explored_set() {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let small = {
        let mut c = cfg();
        c.ooe = EngineBudget::new(8, 24);
        hadas.run(&c).expect("runs").backbones().len()
    };
    let large = {
        let mut c = cfg();
        c.ooe = EngineBudget::new(8, 64);
        hadas.run(&c).expect("runs").backbones().len()
    };
    assert!(large >= small, "large {large} vs small {small}");
}

#[test]
fn every_generation_contributes_to_history() {
    let hadas = Hadas::for_target(HwTarget::AgxVoltaGpu);
    let mut c = cfg();
    c.ooe = EngineBudget::new(8, 48); // 6 generations
    let outcome = hadas.run(&c).expect("runs");
    let max_gen = outcome.backbones().iter().map(|b| b.generation).max().unwrap_or(0);
    assert!(max_gen >= 3, "evolution should progress over generations, got {max_gen}");
}
