//! Property-based tests for the gray-failure health plane — the
//! per-device state machine demotes only through real hysteresis (never
//! on thin evidence, never within a `clean_epochs` window of a dirty
//! verdict), escalation takes repeated independent convictions, and the
//! epoch judge convicts exactly on its documented thresholds.

use hadas_fleet::{judge, DetectionConfig, EpochEvidence, HealthMachine, HealthState, Verdict};
use proptest::prelude::*;

/// Monotone severity rank of a detector state.
fn severity(s: HealthState) -> usize {
    match s {
        HealthState::Healthy => 0,
        HealthState::Suspect => 1,
        HealthState::Probation => 2,
        HealthState::Recovering => 3,
        HealthState::Quarantined => 4,
    }
}

fn verdicts(max_len: usize) -> impl Strategy<Value = Vec<Verdict>> {
    proptest::collection::vec(
        prop_oneof![Just(Verdict::Dirty), Just(Verdict::Clean), Just(Verdict::NoEvidence)],
        1..max_len,
    )
}

fn config_strategy() -> impl Strategy<Value = DetectionConfig> {
    (1usize..4, 1usize..4).prop_map(|(clean_epochs, quarantine_epochs)| DetectionConfig {
        clean_epochs,
        quarantine_epochs,
        ..DetectionConfig::enabled()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hysteresis, no flapping: for ANY verdict sequence, the machine
    /// never demotes toward Healthy unless at least `clean_epochs` clean
    /// verdicts landed since the last dirty one — the only exception is
    /// the quarantine timer releasing into Recovering, which is what
    /// probation is for. A dirty verdict itself never demotes.
    #[test]
    fn demotion_requires_a_full_clean_streak(
        config in config_strategy(),
        seq in verdicts(48),
    ) {
        let mut m = HealthMachine::default();
        let mut cleans_since_dirty = 0usize;
        for &v in &seq {
            match v {
                Verdict::Dirty => cleans_since_dirty = 0,
                Verdict::Clean => cleans_since_dirty += 1,
                Verdict::NoEvidence => {}
            }
            let before = m.state();
            let transition = m.step(&config, v);
            if let Some((from, to)) = transition {
                prop_assert_eq!(from, before);
                prop_assert_eq!(to, m.state());
                let timer_release =
                    from == HealthState::Quarantined && to == HealthState::Recovering;
                if severity(to) < severity(from) && !timer_release {
                    prop_assert!(v == Verdict::Clean, "only a clean verdict demotes");
                    prop_assert!(
                        cleans_since_dirty >= config.clean_epochs,
                        "demoted {from:?} -> {to:?} after only {cleans_since_dirty} clean \
                         verdict(s) since the last dirty one (need {})",
                        config.clean_epochs
                    );
                }
                if v == Verdict::Dirty {
                    prop_assert!(
                        severity(to) >= severity(from) || timer_release,
                        "a dirty verdict demoted {from:?} -> {to:?}"
                    );
                }
            }
        }
    }

    /// Escalation takes repeated convictions: Quarantined is at least
    /// three dirty verdicts away from Healthy, and a no-evidence epoch
    /// never moves the machine at all (outside the quarantine timer).
    #[test]
    fn quarantine_needs_three_convictions_and_silence_holds_state(
        config in config_strategy(),
        seq in verdicts(48),
    ) {
        let mut m = HealthMachine::default();
        let mut dirty_seen = 0usize;
        for &v in &seq {
            let before = m.state();
            m.step(&config, v);
            if v == Verdict::Dirty {
                dirty_seen += 1;
            }
            if m.state() == HealthState::Quarantined {
                prop_assert!(
                    dirty_seen >= 3,
                    "quarantined after only {dirty_seen} dirty verdict(s)"
                );
            }
            if v == Verdict::NoEvidence && before != HealthState::Quarantined {
                prop_assert!(m.state() == before, "a no-evidence epoch must hold the state");
            }
        }
    }

    /// The machine is pure in its verdict sequence: replaying the same
    /// sequence yields the same state at every step.
    #[test]
    fn stepping_is_pure_in_the_verdict_sequence(
        config in config_strategy(),
        seq in verdicts(32),
    ) {
        let mut a = HealthMachine::default();
        let mut b = HealthMachine::default();
        for &v in &seq {
            let ta = a.step(&config, v);
            let tb = b.step(&config, v);
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(a.state(), b.state());
        }
    }

    /// The epoch judge convicts exactly on its documented thresholds:
    /// defect or gap counts at threshold convict outright; otherwise a
    /// thin epoch (served below `min_served`) yields no evidence, and a
    /// full epoch convicts iff the latency divergence clears the
    /// median-relative bar.
    #[test]
    fn judge_matches_its_documented_thresholds(
        defects in 0usize..4,
        gaps in 0usize..4,
        served in 0usize..32,
        observed in 0.1f64..400.0,
        modeled in 0.1f64..100.0,
        median in 0.0f64..8.0,
    ) {
        let config = DetectionConfig::enabled();
        let evidence = EpochEvidence {
            defects,
            gaps,
            served,
            observed_mean_ms: observed,
            modeled_ms: modeled,
        };
        let verdict = judge(&config, &evidence, median);
        if defects >= config.defect_threshold || gaps >= config.gap_threshold {
            prop_assert_eq!(verdict, Verdict::Dirty);
        } else if served < config.min_served {
            prop_assert_eq!(verdict, Verdict::NoEvidence);
        } else {
            let bar = config.divergence_factor * median.max(1.0);
            let diverged = observed / modeled > bar;
            prop_assert_eq!(verdict, if diverged { Verdict::Dirty } else { Verdict::Clean });
        }
    }
}
