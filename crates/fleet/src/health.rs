//! Online gray-failure detection: the per-device health state machine
//! and the windowed evidence that drives it.
//!
//! Gray failures degrade a device without crashing it — a frozen health
//! sensor, a glitching thermal reading, a silently slow unit. Crash-stop
//! supervision (the unit executor) never sees them, and post-hoc health
//! condensation sees them too late. This module closes the gap with an
//! *online* judgment at every epoch barrier:
//!
//! ```text
//!             dirty           dirty              dirty
//!   Healthy ───────▶ Suspect ───────▶ Probation ───────▶ Quarantined
//!      ▲                │ ▲               │                   │ timer
//!      │   clean streak │ └── clean streak┘                   ▼
//!      └────────────────┘      dirty ┌──────────────▶ Recovering
//!      ▲                             └──────────────────── │
//!      └────────────── clean streak ───────────────────────┘
//! ```
//!
//! Evidence per epoch: sanitizer defect counts (corrupt/stale/frozen
//! telemetry), sample-window gaps (dropped telemetry), and
//! modeled-vs-observed latency divergence (silent slowdowns, judged
//! against the fleet median so systemic queueing does not convict
//! everyone). Demotions toward `Healthy` require a *streak* of
//! [`DetectionConfig::clean_epochs`] consecutive clean epochs —
//! hysteresis that stops a flapping device from oscillating the machine
//! — and `Quarantined` holds for [`DetectionConfig::quarantine_epochs`]
//! before probing resumes. Every step is a pure function of the verdict
//! sequence, so transitions replay identically at any worker count.

use hadas::HadasError;
use serde::{Deserialize, Serialize};

/// Health-verdict thresholds shared by the online detector and the
/// post-hoc [`crate::DeviceHealthReport`] condensation — one policy,
/// two consumers, so the run's final verdict can never disagree with
/// the detector's about what "healthy" means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// Brownout tiers at or above this index mark the unit unhealthy
    /// (default 2 = `ForceEarlyExit`; tier 0/1 load shedding is normal
    /// operation).
    pub max_tier: usize,
    /// Thermal caps below this mark the unit unhealthy (default 1.0:
    /// any throttling at all).
    pub min_thermal_cap: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy { max_tier: 2, min_thermal_cap: 1.0 }
    }
}

impl HealthPolicy {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for a cap outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), HadasError> {
        if !self.min_thermal_cap.is_finite() || !(0.0..=1.0).contains(&self.min_thermal_cap) {
            return Err(HadasError::InvalidConfig(
                "health min_thermal_cap must lie in [0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// The policy's verdict over a condensed trace: tier and cap within
    /// bounds and nothing dead-lettered.
    pub fn trace_healthy(&self, worst_tier: usize, min_cap: f64, dead_lettered: usize) -> bool {
        worst_tier < self.max_tier && min_cap >= self.min_thermal_cap && dead_lettered == 0
    }
}

/// Knobs of the online gray-failure detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionConfig {
    /// Whether the detector runs at epoch barriers.
    pub enabled: bool,
    /// Sanitizer defects in one epoch at or above this count make the
    /// epoch dirty (≥ 1).
    pub defect_threshold: usize,
    /// Dropped sample windows in one epoch at or above this count make
    /// the epoch dirty (≥ 1).
    pub gap_threshold: usize,
    /// Observed/modeled latency ratio beyond `divergence_factor ×` the
    /// fleet-median ratio makes the epoch dirty (> 1) — the silent-
    /// slowdown signal.
    pub divergence_factor: f64,
    /// Minimum requests served in the epoch before latency divergence
    /// counts as evidence (≥ 1; starved epochs are no-evidence).
    pub min_served: usize,
    /// Consecutive clean epochs required for any demotion toward
    /// `Healthy` (≥ 1; ≥ 2 gives flap immunity).
    pub clean_epochs: usize,
    /// Epochs a device stays `Quarantined` before probing resumes (≥ 1).
    pub quarantine_epochs: usize,
    /// Probe dispatches allowed per epoch while a device is in
    /// `Probation`/`Recovering` (≥ 1).
    pub probe_quota: usize,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            enabled: false,
            defect_threshold: 1,
            gap_threshold: 1,
            divergence_factor: 2.5,
            min_served: 4,
            clean_epochs: 2,
            quarantine_epochs: 2,
            probe_quota: 8,
        }
    }
}

impl DetectionConfig {
    /// The default detector, switched on.
    pub fn enabled() -> Self {
        DetectionConfig { enabled: true, ..Default::default() }
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for zero thresholds/streaks
    /// or a divergence factor ≤ 1.
    pub fn validate(&self) -> Result<(), HadasError> {
        if self.defect_threshold == 0 || self.gap_threshold == 0 {
            return Err(HadasError::InvalidConfig(
                "detection defect/gap thresholds must be ≥ 1".into(),
            ));
        }
        if !self.divergence_factor.is_finite() || self.divergence_factor <= 1.0 {
            return Err(HadasError::InvalidConfig(
                "detection divergence_factor must be > 1".into(),
            ));
        }
        if self.min_served == 0 || self.clean_epochs == 0 || self.quarantine_epochs == 0 {
            return Err(HadasError::InvalidConfig(
                "detection min_served, clean_epochs, quarantine_epochs must be ≥ 1".into(),
            ));
        }
        if self.probe_quota == 0 {
            return Err(HadasError::InvalidConfig("detection probe_quota must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// The per-device detector state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Full traffic; no recent evidence against the device.
    Healthy,
    /// First dirty epoch seen; full traffic, one more convicts.
    Suspect,
    /// Probe-only trickle; a dirty epoch quarantines.
    Probation,
    /// No dispatches at all; in-flight work was re-dispatched.
    Quarantined,
    /// Probe-only trickle after the quarantine timer; a clean streak
    /// returns the device to service, a dirty epoch re-quarantines.
    Recovering,
}

impl HealthState {
    /// The serialized spelling of the state.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Probation => "probation",
            HealthState::Quarantined => "quarantined",
            HealthState::Recovering => "recovering",
        }
    }

    /// Whether the router may send normal (non-probe) traffic.
    pub fn accepts_traffic(self) -> bool {
        matches!(self, HealthState::Healthy | HealthState::Suspect)
    }

    /// Whether the router sends only probe trickle.
    pub fn probe_only(self) -> bool {
        matches!(self, HealthState::Probation | HealthState::Recovering)
    }
}

/// One epoch's verdict over one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Evidence present, nothing incriminating: grows the clean streak.
    Clean,
    /// Incriminating evidence: escalates (and resets the streak).
    Dirty,
    /// Not enough signal to judge either way (quarantined device, or a
    /// starved epoch): neither grows nor resets the streak.
    NoEvidence,
}

/// The windowed evidence one device exposes at an epoch barrier — all
/// deltas over the epoch just served.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochEvidence {
    /// Sanitizer defects tagged this epoch.
    pub defects: usize,
    /// Sample windows opened but never emitted this epoch.
    pub gaps: usize,
    /// Requests served this epoch.
    pub served: usize,
    /// Mean observed completion latency this epoch (ms).
    pub observed_mean_ms: f64,
    /// Modeled per-request latency under the device's current mode (ms).
    pub modeled_ms: f64,
}

impl EpochEvidence {
    /// Observed/modeled latency ratio (1.0 when either side is missing —
    /// no divergence claim without both numbers).
    pub fn divergence(&self) -> f64 {
        if self.modeled_ms > 0.0 && self.observed_mean_ms > 0.0 {
            self.observed_mean_ms / self.modeled_ms
        } else {
            1.0
        }
    }
}

/// The pure epoch judgment: defect counts and sample gaps convict
/// directly; latency divergence convicts only relative to the fleet
/// median (`divergence > factor × max(1, median)`), so a fleet-wide
/// queueing wave does not convict every device at once. An epoch that
/// served fewer than `min_served` requests and tagged nothing yields
/// [`Verdict::NoEvidence`].
pub fn judge(
    config: &DetectionConfig,
    evidence: &EpochEvidence,
    fleet_median_divergence: f64,
) -> Verdict {
    if evidence.defects >= config.defect_threshold || evidence.gaps >= config.gap_threshold {
        return Verdict::Dirty;
    }
    if evidence.served >= config.min_served {
        let bar = config.divergence_factor * fleet_median_divergence.max(1.0);
        if evidence.divergence() > bar {
            return Verdict::Dirty;
        }
        return Verdict::Clean;
    }
    Verdict::NoEvidence
}

/// The per-device health state machine. Stepped once per epoch barrier
/// with that epoch's [`Verdict`]; pure in the verdict sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthMachine {
    state: HealthState,
    clean_streak: usize,
    quarantined_for: usize,
}

impl Default for HealthMachine {
    fn default() -> Self {
        HealthMachine { state: HealthState::Healthy, clean_streak: 0, quarantined_for: 0 }
    }
}

impl HealthMachine {
    /// The current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Steps the machine with one epoch verdict, returning
    /// `Some((from, to))` when the state changed.
    pub fn step(
        &mut self,
        config: &DetectionConfig,
        verdict: Verdict,
    ) -> Option<(HealthState, HealthState)> {
        let from = self.state;
        match verdict {
            Verdict::Dirty => self.clean_streak = 0,
            Verdict::Clean => self.clean_streak += 1,
            Verdict::NoEvidence => {}
        }
        let to = match (from, verdict) {
            // The quarantine timer ticks regardless of verdict — no
            // traffic flows, so verdicts carry no new evidence anyway.
            (HealthState::Quarantined, _) => {
                self.quarantined_for += 1;
                if self.quarantined_for >= config.quarantine_epochs {
                    self.quarantined_for = 0;
                    self.clean_streak = 0;
                    HealthState::Recovering
                } else {
                    HealthState::Quarantined
                }
            }
            (state, Verdict::Dirty) => match state {
                HealthState::Healthy => HealthState::Suspect,
                HealthState::Suspect => HealthState::Probation,
                HealthState::Probation | HealthState::Recovering => HealthState::Quarantined,
                HealthState::Quarantined => HealthState::Quarantined,
            },
            (state, Verdict::Clean) if self.clean_streak >= config.clean_epochs => {
                self.clean_streak = 0;
                match state {
                    HealthState::Healthy => HealthState::Healthy,
                    HealthState::Suspect | HealthState::Recovering => HealthState::Healthy,
                    HealthState::Probation => HealthState::Suspect,
                    HealthState::Quarantined => HealthState::Quarantined,
                }
            }
            (state, _) => state,
        };
        self.state = to;
        (from != to).then_some((from, to))
    }
}

/// One recorded state transition, serialized in the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthTransition {
    /// Epoch barrier at which the transition fired (0-based).
    pub epoch: usize,
    /// Device index.
    pub device: usize,
    /// State left.
    pub from: String,
    /// State entered.
    pub to: String,
}

/// Serialized gray-failure-detection accounting inside the fleet
/// report. All scheduling-plane quantities folded in device order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionSummary {
    /// Whether the detector ran.
    pub enabled: bool,
    /// Final per-device states, in device order.
    pub final_states: Vec<String>,
    /// Every state transition, in `(epoch, device)` order.
    pub transitions: Vec<HealthTransition>,
    /// Dirty epoch verdicts across all devices.
    pub dirty_epochs: usize,
    /// Devices that were quarantined at least once.
    pub quarantined_devices: usize,
    /// Probe dispatches routed to `Probation`/`Recovering` devices.
    pub probe_assignments: usize,
    /// In-flight requests pulled off newly quarantined devices and
    /// re-routed.
    pub redispatched: usize,
    /// Re-dispatched requests that were lost — structurally zero; the
    /// quarantine analogue of the zero-drop swap invariant.
    pub redispatch_dropped: usize,
}

impl DetectionSummary {
    /// The summary of a run without the detector over `devices` units.
    pub fn disabled(devices: usize) -> Self {
        DetectionSummary {
            enabled: false,
            final_states: vec![HealthState::Healthy.name().to_string(); devices],
            transitions: Vec::new(),
            dirty_epochs: 0,
            quarantined_devices: 0,
            probe_assignments: 0,
            redispatched: 0,
            redispatch_dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectionConfig {
        DetectionConfig::enabled()
    }

    #[test]
    fn default_configs_validate_and_degenerates_are_rejected() {
        assert!(DetectionConfig::default().validate().is_ok());
        assert!(DetectionConfig::enabled().enabled);
        assert!(HealthPolicy::default().validate().is_ok());
        let bad = |f: fn(&mut DetectionConfig)| {
            let mut c = DetectionConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.defect_threshold = 0));
        assert!(bad(|c| c.gap_threshold = 0));
        assert!(bad(|c| c.divergence_factor = 1.0));
        assert!(bad(|c| c.min_served = 0));
        assert!(bad(|c| c.clean_epochs = 0));
        assert!(bad(|c| c.quarantine_epochs = 0));
        assert!(bad(|c| c.probe_quota = 0));
        assert!(HealthPolicy { min_thermal_cap: 1.5, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn policy_verdict_matches_the_legacy_hard_coded_thresholds() {
        let p = HealthPolicy::default();
        assert!(p.trace_healthy(1, 1.0, 0));
        assert!(!p.trace_healthy(2, 1.0, 0), "tier ≥ 2 is unhealthy");
        assert!(!p.trace_healthy(0, 0.9, 0), "any throttling is unhealthy");
        assert!(!p.trace_healthy(0, 1.0, 5), "dead letters are unhealthy");
        let lax = HealthPolicy { max_tier: 3, min_thermal_cap: 0.5 };
        assert!(lax.trace_healthy(2, 0.6, 0), "a laxer policy relabels the same trace");
    }

    #[test]
    fn judge_convicts_on_defects_gaps_and_relative_divergence() {
        let c = cfg();
        let clean = EpochEvidence {
            served: 50,
            observed_mean_ms: 30.0,
            modeled_ms: 25.0,
            ..Default::default()
        };
        assert_eq!(judge(&c, &clean, 1.0), Verdict::Clean);
        let defective = EpochEvidence { defects: 1, ..clean };
        assert_eq!(judge(&c, &defective, 1.0), Verdict::Dirty);
        let gappy = EpochEvidence { gaps: 1, ..clean };
        assert_eq!(judge(&c, &gappy, 1.0), Verdict::Dirty);
        let slow = EpochEvidence { observed_mean_ms: 200.0, ..clean };
        assert_eq!(judge(&c, &slow, 1.0), Verdict::Dirty, "8× divergence vs median 1 convicts");
        assert_eq!(
            judge(&c, &slow, 7.0),
            Verdict::Clean,
            "the same ratio is clean when the whole fleet runs at 7× — systemic queueing"
        );
        let starved = EpochEvidence { served: 2, ..clean };
        assert_eq!(judge(&c, &starved, 1.0), Verdict::NoEvidence);
    }

    #[test]
    fn machine_escalates_through_the_ladder_and_demotes_on_streaks() {
        let c = cfg();
        let mut m = HealthMachine::default();
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.step(&c, Verdict::Dirty), Some((HealthState::Healthy, HealthState::Suspect)));
        assert_eq!(
            m.step(&c, Verdict::Dirty),
            Some((HealthState::Suspect, HealthState::Probation))
        );
        assert_eq!(
            m.step(&c, Verdict::Dirty),
            Some((HealthState::Probation, HealthState::Quarantined))
        );
        // The quarantine timer: quarantine_epochs = 2 barriers pass.
        assert_eq!(m.step(&c, Verdict::NoEvidence), None);
        assert_eq!(
            m.step(&c, Verdict::NoEvidence),
            Some((HealthState::Quarantined, HealthState::Recovering))
        );
        // Two clean probe epochs heal; one is not enough.
        assert_eq!(m.step(&c, Verdict::Clean), None);
        assert_eq!(
            m.step(&c, Verdict::Clean),
            Some((HealthState::Recovering, HealthState::Healthy))
        );
    }

    #[test]
    fn flapping_verdicts_cannot_oscillate_the_machine() {
        let c = cfg();
        let mut m = HealthMachine::default();
        let mut states = vec![m.state()];
        for i in 0..12 {
            let v = if i % 2 == 0 { Verdict::Dirty } else { Verdict::Clean };
            m.step(&c, v);
            states.push(m.state());
        }
        // Monotone escalation Healthy → … → Quarantined, then the timer
        // cycle — never a demotion, because the clean streak never
        // reaches clean_epochs = 2 under alternation.
        assert!(
            !states.windows(2).any(|w| demotes(w[0], w[1])),
            "alternating verdicts must never demote: {states:?}"
        );
        assert!(states.contains(&HealthState::Quarantined));
    }

    fn rank(s: HealthState) -> usize {
        match s {
            HealthState::Healthy => 0,
            HealthState::Suspect => 1,
            HealthState::Probation => 2,
            HealthState::Recovering => 3,
            HealthState::Quarantined => 4,
        }
    }

    fn demotes(from: HealthState, to: HealthState) -> bool {
        // Quarantined → Recovering is the timer, not a demotion verdict.
        rank(to) < rank(from)
            && !(from == HealthState::Quarantined && to == HealthState::Recovering)
    }

    #[test]
    fn recovering_relapse_goes_straight_back_to_quarantine() {
        let c = cfg();
        let mut m = HealthMachine::default();
        for v in [Verdict::Dirty, Verdict::Dirty, Verdict::Dirty] {
            m.step(&c, v);
        }
        m.step(&c, Verdict::NoEvidence);
        m.step(&c, Verdict::NoEvidence);
        assert_eq!(m.state(), HealthState::Recovering);
        assert_eq!(
            m.step(&c, Verdict::Dirty),
            Some((HealthState::Recovering, HealthState::Quarantined))
        );
    }

    #[test]
    fn no_evidence_freezes_the_streak() {
        let c = cfg();
        let mut m = HealthMachine::default();
        m.step(&c, Verdict::Dirty); // Suspect
        m.step(&c, Verdict::Clean); // streak 1
        m.step(&c, Verdict::NoEvidence); // streak stays 1
        assert_eq!(m.state(), HealthState::Suspect);
        m.step(&c, Verdict::Clean); // streak 2 ⇒ heal
        assert_eq!(m.state(), HealthState::Healthy);
    }

    #[test]
    fn state_names_and_routing_classes_are_consistent() {
        for (state, name) in [
            (HealthState::Healthy, "healthy"),
            (HealthState::Suspect, "suspect"),
            (HealthState::Probation, "probation"),
            (HealthState::Quarantined, "quarantined"),
            (HealthState::Recovering, "recovering"),
        ] {
            assert_eq!(state.name(), name);
            assert!(
                !(state.accepts_traffic() && state.probe_only()),
                "{name} cannot be both open and probe-only"
            );
        }
        assert!(!HealthState::Quarantined.accepts_traffic());
        assert!(!HealthState::Quarantined.probe_only());
    }

    #[test]
    fn disabled_summary_reports_every_device_healthy() {
        let s = DetectionSummary::disabled(3);
        assert!(!s.enabled);
        assert_eq!(s.final_states.len(), 3);
        assert!(s.transitions.is_empty());
        assert_eq!(s.redispatch_dropped, 0);
    }
}
