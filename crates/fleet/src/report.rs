//! The serialized outcome of one fleet run.

use crate::{DetectionSummary, DeviceHealthReport, DeviceSummary, ReconfigSummary, RouterSummary};
use hadas::HadasError;
use hadas_runtime::LatencySummary;
use hadas_serve::{accounting_balances, fingerprint64, zero_fingerprint_field, SloSummary};
use serde::{Deserialize, Serialize};

/// Schema tag stamped into every serialized [`FleetReport`]. Bump on
/// any report shape change; [`FleetReport::from_json`] refuses other
/// versions, mirroring `SearchCheckpoint`'s gated restore.
/// v2: gray-failure detection summary, per-unit telemetry integrity and
/// detector states, probe-assignment routing counter.
pub const FLEET_REPORT_SCHEMA: u32 = 2;

/// Aggregate outcome of one fleet run, folded from the per-device
/// traces in device-index order.
///
/// Determinism contract: the router's schedule and every device's
/// schedule are computed single-threaded on the shared virtual clock;
/// devices reduce as pure supervised jobs; results fold in device
/// order. The serialized report is therefore byte-identical across
/// fleet worker counts — worker count deliberately does **not**
/// serialize — and byte-identical to the fault-free run under injected
/// unit crashes whenever zero units dead-letter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Report schema version ([`FLEET_REPORT_SCHEMA`]); stamped by
    /// [`FleetReport::to_json`].
    pub schema: u32,
    /// FNV-1a fingerprint of the serialized report with this field
    /// zeroed; stamped by [`FleetReport::to_json`], checked by
    /// [`FleetReport::from_json`]. Zero while in memory. Leads the
    /// struct so fingerprint zeroing always targets the fleet-level
    /// field.
    pub fingerprint: u64,
    /// Device units in the fleet.
    pub devices: usize,
    /// Canonical device-mix echo (see [`crate::canonical_spec`]).
    pub device_mix: String,
    /// Configured simulated-user volume.
    pub users: usize,
    /// Fleet-wide mean offered load (requests/s).
    pub rps: f64,
    /// Arrival-stream duration `users / rps` (seconds).
    pub duration_s: f64,
    /// The run seed.
    pub seed: u64,
    /// Requests offered by the fleet-wide arrival stream.
    pub offered: usize,
    /// Requests the router admitted to some device.
    pub routed: usize,
    /// Requests no device admitted (router-level rejection, per class in
    /// [`FleetReport::router`]).
    pub fleet_rejected: usize,
    /// Requests served across all units.
    pub served: usize,
    /// Requests shed by device admission control.
    pub shed: usize,
    /// Requests rejected by device brownout ladders.
    pub rejected: usize,
    /// Requests lost with dead-lettered units (zero whenever unit
    /// supervision heals — the precondition of the chaos byte-identity
    /// contract). The conservation identity extends the serve plane's
    /// [`accounting_balances`]: `served + shed + rejected +
    /// dead_lettered == routed` and `routed + fleet_rejected ==
    /// offered`.
    pub dead_lettered: usize,
    /// Completion time of the last batch on any unit (seconds).
    pub makespan_s: f64,
    /// `served / max(makespan, duration)` (requests/s) — the modeled
    /// fleet throughput the scaling bench asserts monotone in device
    /// count.
    pub throughput_rps: f64,
    /// Total energy drawn across units (joules).
    pub energy_j: f64,
    /// Total voltage-sag energy across units (joules).
    pub sag_energy_j: f64,
    /// Global completion-latency distribution, merged from per-unit
    /// histograms via `Histogram::merge` in device order.
    pub latency: LatencySummary,
    /// Global deadline accounting, split by SLO class.
    pub slo: SloSummary,
    /// Name of the workload-drift scenario in force (`"none"`).
    pub scenario: String,
    /// Live-reconfiguration accounting: swaps, rollbacks, the zero-drop
    /// counter, and final anchors ([`ReconfigSummary::disabled`] for a
    /// pinned-mode fleet).
    pub reconfig: ReconfigSummary,
    /// Gray-failure-detection accounting: per-device final states,
    /// transitions, quarantine re-dispatch counters
    /// ([`DetectionSummary::disabled`] when the detector is off).
    pub detection: DetectionSummary,
    /// Router accounting: the per-device decision histogram and
    /// per-class admission counters.
    pub router: RouterSummary,
    /// Per-unit request accounting, in device order.
    pub per_device: Vec<DeviceSummary>,
    /// Per-unit condensed health telemetry, in device order.
    pub health: Vec<DeviceHealthReport>,
    /// Units whose health verdict came back unhealthy.
    pub unhealthy_devices: usize,
}

impl FleetReport {
    /// Serialises the report as pretty JSON — the byte-identical
    /// artifact the fleet determinism contract is stated over.
    ///
    /// # Errors
    ///
    /// Propagates serialisation failures (none for this struct in
    /// practice).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        let mut stamped = self.clone();
        stamped.schema = FLEET_REPORT_SCHEMA;
        stamped.fingerprint = 0;
        let zeroed = serde_json::to_string_pretty(&stamped)?;
        stamped.fingerprint = fingerprint64(zeroed.as_bytes());
        serde_json::to_string_pretty(&stamped)
    }

    /// Parses a serialized fleet report, refusing stale schemas and
    /// content whose fingerprint does not match the bytes — the same
    /// gated restore contract as `SearchCheckpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::Checkpoint`] for unparsable JSON, a schema
    /// other than [`FLEET_REPORT_SCHEMA`], or a fingerprint mismatch
    /// (tampered or truncated content).
    pub fn from_json(json: &str) -> Result<Self, HadasError> {
        let report: FleetReport = serde_json::from_str(json)
            .map_err(|e| HadasError::Checkpoint(format!("parse fleet report: {e}")))?;
        if report.schema != FLEET_REPORT_SCHEMA {
            return Err(HadasError::Checkpoint(format!(
                "fleet report schema {} unsupported (expected {FLEET_REPORT_SCHEMA})",
                report.schema
            )));
        }
        let zeroed = zero_fingerprint_field(json).ok_or_else(|| {
            HadasError::Checkpoint("fleet report carries no fingerprint field".to_string())
        })?;
        let expected = fingerprint64(zeroed.as_bytes());
        if report.fingerprint != expected {
            return Err(HadasError::Checkpoint(format!(
                "fleet report fingerprint {:#018x} does not match its content ({expected:#018x})",
                report.fingerprint
            )));
        }
        Ok(report)
    }

    /// Whether the fleet-level request-conservation identity holds: the
    /// serve plane's [`accounting_balances`] over the routed volume,
    /// plus router conservation `routed + fleet_rejected == offered`.
    pub fn accounting_balances(&self) -> bool {
        accounting_balances(self.served, self.shed, self.rejected, self.dead_lettered, self.routed)
            && self.routed + self.fleet_rejected == self.offered
    }
}
