//! Device units: the fleet's view of one supervised serve engine.
//!
//! A unit's lifecycle under the fleet supervisor is a small state
//! machine (see DESIGN.md "Fleet plane"):
//!
//! ```text
//! Spawned ──run──▶ Reporting ──fold──▶ Healthy | Unhealthy
//!    ▲                 │crash
//!    └──── respawn ◀───┘          (attempt budget exhausted ⇒ DeadLettered)
//! ```
//!
//! The unit's periodic [`hadas_serve::HealthSample`]s condense into one
//! [`DeviceHealthReport`] per unit — the night-report idiom: queue
//! depth, brownout tier, thermal cap, sag energy, dead letters — and a
//! [`DeviceSummary`] carries the unit's request accounting into the
//! fleet report. Both are scheduling-plane quantities, byte-identical
//! across fleet worker counts and recovered unit crashes.

use crate::{HealthPolicy, HealthState};
use hadas_serve::ServeTrace;
use serde::{Deserialize, Serialize};

/// The condensed health telemetry of one device unit over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceHealthReport {
    /// Device index in the fleet.
    pub device: usize,
    /// CLI spelling of the device's hardware target.
    pub target: String,
    /// The governor the replica ran.
    pub governor: String,
    /// Control windows observed.
    pub windows: usize,
    /// Deepest batcher backlog seen at a window boundary.
    pub max_queue_depth: usize,
    /// Most degraded brownout tier latched (tier index, 0 = Normal).
    pub worst_tier: usize,
    /// Tightest thermal frequency cap in force (`1.0` = never capped).
    pub min_thermal_cap: f64,
    /// Control windows opened under an active thermal cap.
    pub throttled_windows: usize,
    /// Extra joules paid to voltage sag beyond nominal mode costs.
    pub sag_energy_j: f64,
    /// Requests lost by the unit (assigned requests of a dead-lettered
    /// unit; zero whenever supervision heals).
    pub dead_lettered: usize,
    /// Telemetry defects the sanitizer tagged on this unit's health
    /// channel (corrupt readings, stale/frozen replays).
    pub telemetry_defects: usize,
    /// Sample windows the unit opened but never emitted (dropped
    /// telemetry).
    pub dropped_windows: usize,
    /// The gray-failure detector's final state for this unit
    /// (`"healthy"` when detection was off).
    pub state: String,
    /// The post-hoc verdict under the fleet's [`HealthPolicy`]: tier and
    /// thermal cap within policy bounds and nothing dead-lettered.
    pub healthy: bool,
}

fn default_state() -> String {
    HealthState::Healthy.name().to_string()
}

impl DeviceHealthReport {
    /// Condenses a unit's serve trace into its health report under the
    /// fleet's shared verdict policy.
    pub(crate) fn from_trace(
        device: usize,
        target: &str,
        governor: &str,
        trace: &ServeTrace,
        policy: &HealthPolicy,
        state: &str,
    ) -> Self {
        let mut max_depth = 0usize;
        let mut worst_tier = 0usize;
        let mut min_cap = 1.0f64;
        for s in &trace.health {
            max_depth = max_depth.max(s.queue_depth);
            worst_tier = worst_tier.max(s.tier.index());
            min_cap = min_cap.min(s.thermal_cap);
        }
        let dead = trace.report.dead_lettered;
        DeviceHealthReport {
            device,
            target: target.to_string(),
            governor: governor.to_string(),
            windows: trace.health.len(),
            max_queue_depth: max_depth,
            worst_tier,
            min_thermal_cap: min_cap,
            throttled_windows: trace.report.throttled_windows,
            sag_energy_j: trace.report.sag_energy_j,
            dead_lettered: dead,
            telemetry_defects: trace.report.telemetry.defects.total(),
            dropped_windows: trace.report.telemetry.dropped_windows,
            state: state.to_string(),
            healthy: policy.trace_healthy(worst_tier, min_cap, dead),
        }
    }

    /// The report of a unit whose every supervised attempt failed: its
    /// assigned requests are dead letters and the unit is unhealthy.
    pub(crate) fn dead_unit(device: usize, target: &str, governor: &str, assigned: usize) -> Self {
        DeviceHealthReport {
            device,
            target: target.to_string(),
            governor: governor.to_string(),
            windows: 0,
            max_queue_depth: 0,
            worst_tier: 0,
            min_thermal_cap: 1.0,
            throttled_windows: 0,
            sag_energy_j: 0.0,
            dead_lettered: assigned,
            telemetry_defects: 0,
            dropped_windows: 0,
            state: default_state(),
            healthy: false,
        }
    }
}

/// Per-unit request accounting and headline costs inside the fleet
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSummary {
    /// Device index in the fleet.
    pub device: usize,
    /// CLI spelling of the device's hardware target.
    pub target: String,
    /// The governor the replica ran.
    pub governor: String,
    /// Requests the router assigned to this unit.
    pub assigned: usize,
    /// Requests the unit served.
    pub served: usize,
    /// Requests the unit shed at admission.
    pub shed: usize,
    /// Requests the unit's brownout ladder rejected.
    pub rejected: usize,
    /// Requests lost with the unit (zero whenever supervision heals).
    pub dead_lettered: usize,
    /// Mode switches the unit latched — governor moves within its
    /// window plus live operating-point swaps.
    pub mode_switches: usize,
    /// Energy the unit drew (joules).
    pub energy_j: f64,
    /// Served requests that missed their deadline.
    pub slo_violations: usize,
    /// The unit's p99 completion latency (ms; 0 when nothing served).
    pub p99_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_unit_reports_are_unhealthy_and_carry_their_assignment() {
        let r = DeviceHealthReport::dead_unit(3, "tx2-gpu", "queue", 120);
        assert!(!r.healthy);
        assert_eq!(r.dead_lettered, 120);
        assert_eq!(r.windows, 0);
        assert_eq!(r.device, 3);
        assert_eq!(r.state, "healthy", "detection state defaults to healthy");
        assert_eq!(r.telemetry_defects + r.dropped_windows, 0);
    }
}
