//! Fleet-plane configuration: the device mix, the global arrival
//! stream, the router's cost weights, and the supervision knobs shared
//! with the serve plane.

use crate::{DetectionConfig, HealthPolicy, ReconfigConfig};
use hadas::{HadasError, RetryPolicy};
use hadas_hw::HwTarget;
use hadas_runtime::{FaultConfig, GrayFaultConfig, Scenario};
use hadas_serve::GovernorKind;

/// The per-replica DVFS-governor rotation applied when no governor is
/// pinned: replicas of one hardware profile differentiate into distinct
/// operating points (the fleet's "hw profile × DVFS state" axis).
pub const GOVERNOR_ROTATION: [GovernorKind; 3] =
    [GovernorKind::Queue, GovernorKind::Latency, GovernorKind::Static];

/// Configuration of one fleet run. Everything downstream — the global
/// arrival stream, routing decisions, per-device schedules, unit chaos —
/// is a pure function of this struct plus the searched device planes,
/// which is what makes a [`crate::FleetReport`] reproducible and
/// byte-identical across fleet worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// One hardware target per device unit (see
    /// [`crate::parse_device_spec`]); device index = position.
    pub devices: Vec<HwTarget>,
    /// Simulated users: the target arrival-stream volume. The stream
    /// duration is `users / rps`, so scaling users scales the run.
    pub users: usize,
    /// Fleet-wide mean offered load (requests per second).
    pub rps: f64,
    /// Fleet supervisor worker lanes driving device units (≥ 1); any
    /// value yields a byte-identical report.
    pub workers: usize,
    /// Seed of the arrival stream and SLO-class assignment.
    pub seed: u64,
    /// Interactive-class deadline (milliseconds).
    pub slo_ms: f64,
    /// Bulk-class deadline multiplier (≥ 1).
    pub bulk_slo_factor: f64,
    /// Fraction of requests in the bulk class (`[0, 1]`).
    pub bulk_fraction: f64,
    /// Maximum requests per device batch (≥ 1).
    pub batch_max: usize,
    /// Pin every device to one governor; `None` rotates
    /// [`GOVERNOR_ROTATION`] across replicas.
    pub governor: Option<GovernorKind>,
    /// Router cost weight: seconds of estimated finish-time penalty per
    /// joule of estimated request energy (≥ 0). Zero routes on latency
    /// alone.
    pub energy_weight: f64,
    /// Optional substrate-fault template applied per device (thermal
    /// throttle, voltage sag); device `d` runs it with seed
    /// `template.seed + d`. Scheduling-plane: present identically in
    /// fault-free and chaos runs.
    pub faults: Option<FaultConfig>,
    /// Optional execution-plane chaos over *device units*: the fleet
    /// supervisor replays crashes/retries/hedges of whole device runs
    /// and heals them with seq-preserving re-dispatch. Use
    /// [`FaultConfig::worker_chaos`].
    pub chaos: Option<FaultConfig>,
    /// Straggler hedge factor for unit supervision (> 1).
    pub hedge_factor: f64,
    /// Per-unit retry budget under chaos.
    pub retry: RetryPolicy,
    /// Failing units before the supervisor's circuit breaker trips.
    pub breaker_threshold: u32,
    /// Units an open breaker waits before probing again.
    pub breaker_cooldown: u32,
    /// Optional long-horizon workload-drift scenario (diurnal cycles,
    /// thermal seasons, battery decay, demand shifts). Modulates the
    /// fleet-wide arrival stream and every device's thermal substrate;
    /// composes with `faults`. Scheduling-plane, pure in `(seed, t)`.
    pub scenario: Option<Scenario>,
    /// Whether the live reconfiguration controller runs (epoch-wise
    /// operating-point swaps against the drift; see
    /// [`crate::ReconfigSummary`]). Off = pinned-mode fleet.
    pub reconfigure: bool,
    /// Controller knobs for the reconfiguration plane (consulted only
    /// with `reconfigure` on).
    pub reconfig: ReconfigConfig,
    /// Optional gray-failure injection template: the engine stamps each
    /// unit's copy with its device index, and the cyclic assignment
    /// ([`GrayFaultConfig::device_is_gray`]) picks which units degrade.
    /// Telemetry-plane chaos, pure in `(device, window, seed)`.
    pub gray: Option<GrayFaultConfig>,
    /// Online gray-failure detection knobs (state machine, evidence
    /// thresholds, probe quota). Detection runs only when
    /// `detection.enabled`.
    pub detection: DetectionConfig,
    /// The shared device-health verdict policy: drives both post-hoc
    /// trace condensation ([`crate::DeviceHealthReport`]) and the online
    /// detector's notion of a healthy trace.
    pub health: HealthPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: HwTarget::ALL.iter().copied().cycle().take(8).collect(),
            users: 4_000,
            rps: 400.0,
            workers: 1,
            seed: 0,
            slo_ms: 120.0,
            bulk_slo_factor: 10.0,
            bulk_fraction: 0.3,
            batch_max: 8,
            governor: None,
            energy_weight: 0.02,
            faults: None,
            chaos: None,
            hedge_factor: 3.0,
            retry: RetryPolicy::default(),
            breaker_threshold: 8,
            breaker_cooldown: 4,
            scenario: None,
            reconfigure: false,
            reconfig: ReconfigConfig::default(),
            gray: None,
            detection: DetectionConfig::default(),
            health: HealthPolicy::default(),
        }
    }
}

impl FleetConfig {
    /// The arrival-stream duration implied by the user volume:
    /// `users / rps` seconds.
    pub fn duration_s(&self) -> f64 {
        self.users as f64 / self.rps
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for an empty fleet,
    /// non-positive volumes/rates/deadlines, out-of-range fractions or
    /// weights, or invalid embedded fault/retry configurations.
    pub fn validate(&self) -> Result<(), HadasError> {
        if self.devices.is_empty() {
            return Err(HadasError::InvalidConfig("a fleet needs ≥ 1 device".into()));
        }
        if self.users == 0 {
            return Err(HadasError::InvalidConfig("users must be ≥ 1".into()));
        }
        if !self.rps.is_finite() || self.rps <= 0.0 {
            return Err(HadasError::InvalidConfig("rps must be positive".into()));
        }
        if self.workers == 0 || self.batch_max == 0 {
            return Err(HadasError::InvalidConfig("workers and batch_max must be ≥ 1".into()));
        }
        if !self.slo_ms.is_finite() || self.slo_ms <= 0.0 {
            return Err(HadasError::InvalidConfig("slo_ms must be positive".into()));
        }
        if !self.bulk_slo_factor.is_finite() || self.bulk_slo_factor < 1.0 {
            return Err(HadasError::InvalidConfig("bulk_slo_factor must be ≥ 1".into()));
        }
        if !self.bulk_fraction.is_finite() || !(0.0..=1.0).contains(&self.bulk_fraction) {
            return Err(HadasError::InvalidConfig("bulk_fraction must lie in [0, 1]".into()));
        }
        if !self.energy_weight.is_finite() || self.energy_weight < 0.0 {
            return Err(HadasError::InvalidConfig("energy_weight must be ≥ 0".into()));
        }
        if let Some(f) = &self.faults {
            f.validate()?;
        }
        if let Some(c) = &self.chaos {
            c.validate()?;
        }
        if !self.hedge_factor.is_finite() || self.hedge_factor <= 1.0 {
            return Err(HadasError::InvalidConfig(
                "hedge_factor must be a finite value > 1".into(),
            ));
        }
        self.retry.validate()?;
        self.reconfig.validate()?;
        if let Some(g) = &self.gray {
            g.validate()?;
        }
        self.detection.validate()?;
        self.health.validate()?;
        Ok(())
    }

    /// The name of the drift scenario in force (`"none"` without one).
    pub fn scenario_name(&self) -> &str {
        self.scenario.as_ref().map_or("none", Scenario::name)
    }

    /// The governor driving device `d`: the pinned kind, or the replica
    /// rotation ([`GOVERNOR_ROTATION`]) keyed on the device index.
    pub fn governor_of(&self, device: usize) -> GovernorKind {
        self.governor.unwrap_or(GOVERNOR_ROTATION[device % GOVERNOR_ROTATION.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = FleetConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.devices.len(), 8);
        assert!((c.duration_s() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let bad = |f: fn(&mut FleetConfig)| {
            let mut c = FleetConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.devices.clear()));
        assert!(bad(|c| c.users = 0));
        assert!(bad(|c| c.rps = 0.0));
        assert!(bad(|c| c.workers = 0));
        assert!(bad(|c| c.batch_max = 0));
        assert!(bad(|c| c.slo_ms = -5.0));
        assert!(bad(|c| c.bulk_slo_factor = 0.5));
        assert!(bad(|c| c.bulk_fraction = 2.0));
        assert!(bad(|c| c.energy_weight = f64::NAN));
        assert!(bad(|c| c.hedge_factor = 1.0));
        assert!(bad(|c| c.retry.max_attempts = 0));
        assert!(bad(|c| c.chaos = Some(FaultConfig { crash_rate: 2.0, ..FaultConfig::default() })));
        assert!(bad(|c| c.reconfig.epochs = 0));
        assert!(bad(|c| c.reconfig.pressure_threshold = -0.5));
        assert!(bad(|c| {
            c.gray = Some(GrayFaultConfig { slowdown_factor: 1.0, ..GrayFaultConfig::default() })
        }));
        assert!(bad(|c| c.detection.clean_epochs = 0));
        assert!(bad(|c| c.health.min_thermal_cap = f64::NAN));
    }

    #[test]
    fn scenario_name_echoes_the_drift_in_force() {
        let calm = FleetConfig::default();
        assert_eq!(calm.scenario_name(), "none");
        let drifted = FleetConfig {
            scenario: Some(Scenario::from_name("diurnal", 7, 10.0).unwrap()),
            ..FleetConfig::default()
        };
        assert_eq!(drifted.scenario_name(), "diurnal");
        assert!(drifted.validate().is_ok());
    }

    #[test]
    fn governor_rotation_differentiates_replicas() {
        let c = FleetConfig::default();
        assert_eq!(c.governor_of(0), GovernorKind::Queue);
        assert_eq!(c.governor_of(1), GovernorKind::Latency);
        assert_eq!(c.governor_of(2), GovernorKind::Static);
        assert_eq!(c.governor_of(3), GovernorKind::Queue);
        let pinned = FleetConfig { governor: Some(GovernorKind::Static), ..FleetConfig::default() };
        assert_eq!(pinned.governor_of(1), GovernorKind::Static);
    }
}
