//! The fleet engine: N heterogeneous device units in shared virtual
//! time, supervised through the core executor, under the global router.
//!
//! One run is two deterministic passes. First the *scheduling pass*,
//! single-threaded: generate the fleet-wide arrival stream, route every
//! request to a device (or fleet-reject it), and fix each unit's serve
//! configuration. Then the *execution pass*: each unit becomes one
//! supervised executor job — spawned on a fleet worker lane, monitored
//! (crashes surface as lane deaths, retried with seq-preserving
//! re-dispatch of the unit's whole in-flight substream), and reduced by
//! the pure per-unit serve run. Results fold in device-index order, so
//! the serialized [`FleetReport`] is byte-identical across fleet worker
//! counts and under injected unit crashes that heal with zero dead
//! letters.

use crate::router::{route, DeviceEstimate};
use crate::{DeviceHealthReport, DeviceSummary, FleetConfig, FleetReport};
use hadas::executor::{run_supervised, ChaosPlan, JobSpec};
use hadas::{CircuitBreaker, Hadas, HadasConfig, HadasError};
use hadas_hw::HwTarget;
use hadas_runtime::{modes_from_pareto, FaultConfig, FaultInjector, Histogram, OperatingMode};
use hadas_serve::{
    generate_requests, BrownoutConfig, Request, ResilienceTelemetry, ServeConfig, ServeEngine,
    ServeTrace, SloSummary,
};

/// One searched deployment plane: the HADAS engine and Pareto mode
/// ladder every device of one hardware target shares.
#[derive(Debug)]
pub struct DevicePlane {
    target: HwTarget,
    hadas: Hadas,
    modes: Vec<OperatingMode>,
}

impl DevicePlane {
    /// The hardware target this plane deploys to.
    pub fn target(&self) -> HwTarget {
        self.target
    }

    /// The deployed mode ladder (index 0 = most accurate).
    pub fn modes(&self) -> &[OperatingMode] {
        &self.modes
    }
}

/// Searches one deployment plane per *distinct* target among `targets`
/// (in [`HwTarget::ALL`] order): runs the bi-level search under
/// `search` and deploys the top-3 Pareto mode ladder. Device replicas
/// of one target share the plane; the governor rotation differentiates
/// them.
///
/// # Errors
///
/// Returns [`HadasError::InvalidConfig`] for an empty target list, or
/// whatever the search/mode extraction surfaces.
pub fn build_planes(
    targets: &[HwTarget],
    search: &HadasConfig,
) -> Result<Vec<DevicePlane>, HadasError> {
    let mut planes = Vec::new();
    for target in HwTarget::ALL {
        if !targets.contains(&target) {
            continue;
        }
        let hadas = Hadas::for_target(target);
        let outcome = hadas.run(search)?;
        let modes = modes_from_pareto(&hadas, &outcome, 3)?;
        planes.push(DevicePlane { target, hadas, modes });
    }
    if planes.is_empty() {
        return Err(HadasError::InvalidConfig("no targets to build device planes for".into()));
    }
    Ok(planes)
}

/// One device unit as a supervised executor job: everything the pure
/// unit run needs, fixed at schedule time.
#[derive(Debug, Clone)]
struct DeviceJob {
    device: usize,
    plane: usize,
    config: ServeConfig,
    requests: Vec<Request>,
}

/// The outcome of one fleet run: the deterministic report plus the
/// supervisor's out-of-band resilience telemetry (unit crashes healed,
/// retries, hedges — deliberately *not* serialized in the report).
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// The deterministic serialized report.
    pub report: FleetReport,
    /// Fleet supervisor counters; the side channel where healed unit
    /// faults remain visible.
    pub telemetry: ResilienceTelemetry,
}

/// The fleet serving engine over a set of searched device planes.
#[derive(Debug)]
pub struct FleetEngine<'a> {
    planes: &'a [DevicePlane],
    plane_ix: Vec<usize>,
    config: FleetConfig,
}

impl<'a> FleetEngine<'a> {
    /// Builds a fleet over the device planes, validating the
    /// configuration and resolving every device's target to its plane.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] if the configuration fails
    /// [`FleetConfig::validate`] or a device's target has no plane.
    pub fn new(planes: &'a [DevicePlane], config: FleetConfig) -> Result<Self, HadasError> {
        config.validate()?;
        let mut plane_ix = Vec::with_capacity(config.devices.len());
        for (d, target) in config.devices.iter().enumerate() {
            let ix = planes.iter().position(|p| p.target == *target).ok_or_else(|| {
                HadasError::InvalidConfig(format!(
                    "device {d} targets {} but no plane was built for it",
                    target.cli_name()
                ))
            })?;
            plane_ix.push(ix);
        }
        Ok(FleetEngine { planes, plane_ix, config })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The router's modeled per-request cost of device `d`: the plane's
    /// mode-0 (most accurate) serve cost at nominal difficulty.
    fn estimate_of(&self, d: usize) -> DeviceEstimate {
        let outcome = self.planes[self.plane_ix[d]].modes[0].serve(0.5);
        DeviceEstimate { service_s: outcome.cost.latency_s, energy_j: outcome.cost.energy_j }
    }

    /// The serve configuration of device `d`: the fleet's SLO envelope,
    /// the replica's governor, the per-device substrate fault stream,
    /// and the always-on brownout ladder composing with the router's
    /// modeled admission.
    fn device_config(&self, d: usize, duration_s: f64) -> ServeConfig {
        ServeConfig {
            seed: self.config.seed,
            duration_s,
            rps: self.config.rps,
            workers: 1,
            batch_max: self.config.batch_max,
            slo_ms: self.config.slo_ms,
            bulk_slo_factor: self.config.bulk_slo_factor,
            bulk_fraction: self.config.bulk_fraction,
            governor: self.config.governor_of(d),
            faults: self.config.faults.as_ref().map(|f| FaultConfig {
                seed: f.seed.wrapping_add(d as u64),
                horizon_s: duration_s,
                ..f.clone()
            }),
            chaos: None,
            hedge_factor: self.config.hedge_factor,
            retry: self.config.retry,
            breaker_threshold: self.config.breaker_threshold,
            breaker_cooldown: self.config.breaker_cooldown,
            brownout: Some(BrownoutConfig::default()),
            ..ServeConfig::default()
        }
    }

    /// Runs the fleet to completion (see module docs for the two-pass
    /// structure and the determinism contract).
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for invalid embedded
    /// configurations, or [`HadasError::Internal`] if a unit breaks the
    /// request-conservation identity or the supervisor breaks protocol.
    pub fn run(&self) -> Result<FleetRun, HadasError> {
        let duration_s = self.config.duration_s();
        let n = self.config.devices.len();

        // Scheduling pass: one fleet-wide arrival stream, routed.
        let gen_cfg = ServeConfig {
            seed: self.config.seed,
            duration_s,
            rps: self.config.rps,
            slo_ms: self.config.slo_ms,
            bulk_slo_factor: self.config.bulk_slo_factor,
            bulk_fraction: self.config.bulk_fraction,
            ..ServeConfig::default()
        };
        let requests = generate_requests(&gen_cfg, None);
        let offered = requests.len();
        let estimates: Vec<DeviceEstimate> = (0..n).map(|d| self.estimate_of(d)).collect();
        let routing = route(&self.config, &estimates, requests);

        let jobs: Vec<DeviceJob> = routing
            .substreams
            .into_iter()
            .enumerate()
            .map(|(d, substream)| DeviceJob {
                device: d,
                plane: self.plane_ix[d],
                config: self.device_config(d, duration_s),
                requests: substream,
            })
            .collect();
        for job in &jobs {
            job.config.validate()?;
        }

        // Unit-level chaos script: pure in (seed, schedule), so the
        // recovery replay is identical at any fleet worker count.
        let plan = match &self.config.chaos {
            Some(c) => {
                let injector =
                    FaultInjector::new(FaultConfig { horizon_s: duration_s, ..c.clone() })?;
                let specs: Vec<JobSpec> = jobs
                    .iter()
                    .map(|j| JobSpec {
                        key: j.device as u64,
                        est_ms: estimates[j.device].service_s * 1e3 * j.requests.len() as f64,
                        weight: j.requests.len(),
                    })
                    .collect();
                Some(ChaosPlan::build(
                    &injector,
                    &self.config.retry,
                    CircuitBreaker::new(
                        self.config.breaker_threshold,
                        self.config.breaker_cooldown,
                    ),
                    self.config.hedge_factor,
                    &specs,
                ))
            }
            None => None,
        };

        // Execution pass: device units as supervised jobs.
        let planes = self.planes;
        let run_unit = |job: &DeviceJob| -> Result<ServeTrace, HadasError> {
            let plane = &planes[job.plane];
            ServeEngine::new(&plane.hadas, plane.modes.clone(), job.config.clone())?
                .run_requests(job.requests.clone())
        };
        let (slots, telemetry) =
            run_supervised(&jobs, self.config.workers, run_unit, plan.as_ref())?;

        // Fold in device-index order.
        let mut served = 0usize;
        let mut shed = 0usize;
        let mut rejected = 0usize;
        let mut dead_lettered = 0usize;
        let mut energy = 0.0f64;
        let mut sag_energy = 0.0f64;
        let mut makespan = 0.0f64;
        let mut global = Histogram::new();
        let mut violations = 0usize;
        let mut interactive = (0usize, 0usize);
        let mut bulk = (0usize, 0usize);
        let mut per_device = Vec::with_capacity(n);
        let mut health = Vec::with_capacity(n);
        for (job, slot) in jobs.iter().zip(slots) {
            let d = job.device;
            let assigned = job.requests.len();
            let target = planes[job.plane].target.cli_name();
            let governor = self.config.governor_of(d).name();
            match slot {
                None => {
                    // The unit's whole substream died with it: account
                    // it as dead letters, never silently lost.
                    dead_lettered += assigned;
                    per_device.push(DeviceSummary {
                        device: d,
                        target: target.to_string(),
                        governor: governor.to_string(),
                        assigned,
                        served: 0,
                        shed: 0,
                        rejected: 0,
                        dead_lettered: assigned,
                        energy_j: 0.0,
                        slo_violations: 0,
                        p99_ms: 0.0,
                    });
                    health.push(DeviceHealthReport::dead_unit(d, target, governor, assigned));
                }
                Some(Err(e)) => return Err(e),
                Some(Ok(trace)) => {
                    let r = &trace.report;
                    if !r.accounting_balances() || r.offered != assigned {
                        return Err(HadasError::Internal(format!(
                            "device {d} broke request conservation \
                             ({} + {} + {} + {} vs {assigned} assigned)",
                            r.served, r.shed, r.rejected, r.dead_lettered
                        )));
                    }
                    served += r.served;
                    shed += r.shed;
                    rejected += r.rejected;
                    dead_lettered += r.dead_lettered;
                    energy += r.energy_j;
                    sag_energy += r.sag_energy_j;
                    makespan = makespan.max(r.makespan_s);
                    global.merge(&trace.latencies);
                    violations += r.slo.violations;
                    interactive.0 += r.slo.interactive_served;
                    interactive.1 += r.slo.interactive_violations;
                    bulk.0 += r.slo.bulk_served;
                    bulk.1 += r.slo.bulk_violations;
                    per_device.push(DeviceSummary {
                        device: d,
                        target: target.to_string(),
                        governor: governor.to_string(),
                        assigned,
                        served: r.served,
                        shed: r.shed,
                        rejected: r.rejected,
                        dead_lettered: r.dead_lettered,
                        energy_j: r.energy_j,
                        slo_violations: r.slo.violations,
                        p99_ms: r.latency.p99_ms,
                    });
                    health.push(DeviceHealthReport::from_trace(d, target, governor, &trace));
                }
            }
        }

        let routed = routing.summary.routed();
        let unhealthy = health.iter().filter(|h| !h.healthy).count();
        let report = FleetReport {
            devices: n,
            device_mix: crate::canonical_spec(&self.config.devices),
            users: self.config.users,
            rps: self.config.rps,
            duration_s,
            seed: self.config.seed,
            offered,
            routed,
            fleet_rejected: routing.summary.rejected(),
            served,
            shed,
            rejected,
            dead_lettered,
            makespan_s: makespan,
            throughput_rps: served as f64 / makespan.max(duration_s),
            energy_j: energy,
            sag_energy_j: sag_energy,
            latency: global.summary(),
            slo: SloSummary {
                target_ms: self.config.slo_ms,
                violations,
                violation_rate: violations as f64 / served.max(1) as f64,
                interactive_served: interactive.0,
                interactive_violations: interactive.1,
                bulk_served: bulk.0,
                bulk_violations: bulk.1,
            },
            router: routing.summary,
            per_device,
            health,
            unhealthy_devices: unhealthy,
        };
        if !report.accounting_balances() {
            return Err(HadasError::Internal("fleet report broke request conservation".into()));
        }
        Ok(FleetRun { report, telemetry })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadas_runtime::FaultConfig;

    fn planes() -> Vec<DevicePlane> {
        build_planes(&[HwTarget::Tx2PascalGpu, HwTarget::AgxCarmelCpu], &HadasConfig::smoke_test())
            .unwrap()
    }

    fn small_config() -> FleetConfig {
        FleetConfig {
            devices: vec![
                HwTarget::Tx2PascalGpu,
                HwTarget::AgxCarmelCpu,
                HwTarget::Tx2PascalGpu,
                HwTarget::AgxCarmelCpu,
            ],
            users: 900,
            rps: 300.0,
            seed: 42,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn reports_are_byte_identical_across_fleet_worker_counts() {
        let planes = planes();
        let base = FleetEngine::new(&planes, small_config()).unwrap().run().unwrap();
        let base_json = base.report.to_json().unwrap();
        assert!(base.report.accounting_balances());
        assert!(base.report.served > 0, "the fleet must serve");
        for workers in [2usize, 4, 8] {
            let cfg = FleetConfig { workers, ..small_config() };
            let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
            assert_eq!(
                run.report.to_json().unwrap(),
                base_json,
                "fleet worker count {workers} must not leak into the report"
            );
        }
    }

    #[test]
    fn unit_chaos_heals_back_to_the_fault_free_report() {
        let planes = planes();
        let clean = FleetEngine::new(&planes, small_config()).unwrap().run().unwrap();
        let mut healed_something = false;
        for seed in [3u64, 5, 7, 11] {
            let cfg = FleetConfig {
                chaos: Some(FaultConfig {
                    crash_rate: 0.25,
                    transient_rate: 0.15,
                    ..FaultConfig::worker_chaos(seed)
                }),
                retry: hadas::RetryPolicy { max_attempts: 6, ..hadas::RetryPolicy::default() },
                workers: 3,
                ..small_config()
            };
            let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
            if run.telemetry.crashes > 0 || run.telemetry.retries > 0 {
                healed_something = true;
            }
            assert_eq!(run.report.dead_lettered, 0, "six attempts must recover (seed {seed})");
            assert_eq!(
                run.report.to_json().unwrap(),
                clean.report.to_json().unwrap(),
                "healed chaos must be invisible in the report (seed {seed})"
            );
        }
        assert!(healed_something, "some seed must actually inject unit faults");
    }

    #[test]
    fn dead_units_surface_as_dead_letters_not_loss() {
        let planes = planes();
        let cfg = FleetConfig {
            chaos: Some(FaultConfig {
                crash_rate: 0.9,
                transient_rate: 0.0,
                timeout_rate: 0.0,
                ..FaultConfig::worker_chaos(13)
            }),
            retry: hadas::RetryPolicy { max_attempts: 1, ..hadas::RetryPolicy::default() },
            workers: 2,
            ..small_config()
        };
        let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
        assert!(run.report.dead_lettered > 0, "crash rate 0.9 × 1 attempt must kill a unit");
        assert!(run.report.accounting_balances(), "dead letters stay conserved");
        assert_eq!(
            run.report.unhealthy_devices,
            run.report.health.iter().filter(|h| !h.healthy).count()
        );
        assert!(run.report.health.iter().any(|h| !h.healthy));
    }

    #[test]
    fn missing_plane_is_an_invalid_config() {
        let planes = build_planes(&[HwTarget::Tx2PascalGpu], &HadasConfig::smoke_test()).unwrap();
        let cfg = FleetConfig { devices: vec![HwTarget::AgxVoltaGpu], ..FleetConfig::default() };
        assert!(FleetEngine::new(&planes, cfg).is_err());
    }

    #[test]
    fn health_reports_cover_every_device_in_order() {
        let planes = planes();
        let run = FleetEngine::new(&planes, small_config()).unwrap().run().unwrap();
        assert_eq!(run.report.health.len(), 4);
        assert_eq!(run.report.per_device.len(), 4);
        for (d, (h, s)) in run.report.health.iter().zip(&run.report.per_device).enumerate() {
            assert_eq!(h.device, d);
            assert_eq!(s.device, d);
            assert_eq!(s.assigned, run.report.router.assigned[d]);
            assert_eq!(s.served + s.shed + s.rejected + s.dead_lettered, s.assigned);
        }
    }
}
