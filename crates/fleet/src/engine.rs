//! The fleet engine: N heterogeneous device units in shared virtual
//! time, supervised through the core executor, under the global router.
//!
//! One run is two deterministic passes. First the *scheduling pass*,
//! single-threaded: generate the fleet-wide arrival stream (drift
//! scenario included), route every request to a device (or fleet-reject
//! it), and fix each unit's serve configuration. Then the *execution
//! pass*: each unit becomes one supervised executor job — spawned on a
//! fleet worker lane, monitored (crashes surface as lane deaths,
//! retried with seq-preserving re-dispatch of the unit's whole
//! in-flight substream), and reduced by the pure per-unit serve run.
//! Results fold in device-index order, so the serialized
//! [`FleetReport`] is byte-identical across fleet worker counts and
//! under injected unit crashes that heal with zero dead letters.
//!
//! With `FleetConfig::reconfigure` on, the run is segmented into epochs
//! (see [`crate::ReconfigConfig`]): each epoch routes its stream slice
//! under refreshed estimates, serves every device one segment forward,
//! and the controller slides per-device mode windows along the full
//! Pareto front via zero-drop snapshot swaps — the same two-pass
//! structure applied per epoch, so every byte-identity contract above
//! carries over, and a mid-swap unit crash heals exactly like any other
//! unit crash.

use crate::health::{
    judge, DetectionSummary, EpochEvidence, HealthMachine, HealthTransition, Verdict,
};
use crate::reconfig::{decide_anchor, AnchorDecision, EpochPressure, RECONFIG_WINDOW};
use crate::router::{route, DeviceEstimate, LaneState, Router};
use crate::{
    DeviceHealthReport, DeviceSummary, FleetConfig, FleetReport, HealthState, ReconfigSummary,
    RouterSummary,
};
use hadas::executor::{run_supervised, ChaosPlan, JobSpec};
use hadas::{CircuitBreaker, Hadas, HadasConfig, HadasError};
use hadas_hw::HwTarget;
use hadas_runtime::{
    modes_from_pareto, FaultConfig, FaultInjector, GrayFaultConfig, Histogram, OperatingMode,
};
use hadas_serve::{
    generate_requests, BrownoutConfig, EngineSnapshot, Request, ResilienceTelemetry, ServeConfig,
    ServeEngine, ServeTrace, SessionState, SloSummary,
};

/// One searched deployment plane: the HADAS engine, the pinned top-3
/// mode ladder, and the latency-monotone reconfiguration staircase
/// every device of one hardware target shares.
#[derive(Debug)]
pub struct DevicePlane {
    target: HwTarget,
    hadas: Hadas,
    modes: Vec<OperatingMode>,
    front: Vec<OperatingMode>,
}

impl DevicePlane {
    /// The hardware target this plane deploys to.
    pub fn target(&self) -> HwTarget {
        self.target
    }

    /// The deployed pinned-mode ladder (index 0 = most accurate).
    pub fn modes(&self) -> &[OperatingMode] {
        &self.modes
    }

    /// The reconfiguration staircase: the latency-monotone subset of
    /// the accuracy-sorted Pareto front (each step strictly reduces the
    /// modeled per-request service time, and on a Pareto front that
    /// also means cheaper energy in practice). Anchor 0 is the most
    /// accurate point; escalating is guaranteed to speed the device up,
    /// which the raw accuracy ordering does **not** guarantee — the
    /// full front trades accuracy against energy too, so it contains
    /// accuracy-lower points that are *slower*.
    pub fn front(&self) -> &[OperatingMode] {
        &self.front
    }

    /// The contiguous [`RECONFIG_WINDOW`]-mode slice of the staircase
    /// at `anchor` (clipped to the staircase's end, so the deepest
    /// anchors run shrunken windows down to a single mode).
    pub(crate) fn window(&self, anchor: usize) -> Vec<OperatingMode> {
        let lo = anchor.min(self.front.len() - 1);
        let hi = (lo + RECONFIG_WINDOW).min(self.front.len());
        self.front[lo..hi].to_vec()
    }

    /// The deepest window anchor this staircase admits.
    pub(crate) fn max_anchor(&self) -> usize {
        self.front.len() - 1
    }
}

/// Searches one deployment plane per *distinct* target among `targets`
/// (in [`HwTarget::ALL`] order): runs the bi-level search under
/// `search` and deploys both the top-3 Pareto mode ladder and the
/// latency-monotone reconfiguration staircase (see
/// [`DevicePlane::front`]). Device replicas of one target share the
/// plane; the governor rotation differentiates them.
///
/// # Errors
///
/// Returns [`HadasError::InvalidConfig`] for an empty target list, or
/// whatever the search/mode extraction surfaces.
pub fn build_planes(
    targets: &[HwTarget],
    search: &HadasConfig,
) -> Result<Vec<DevicePlane>, HadasError> {
    let mut planes = Vec::new();
    for target in HwTarget::ALL {
        if !targets.contains(&target) {
            continue;
        }
        let hadas = Hadas::for_target(target);
        let outcome = hadas.run(search)?;
        let modes = modes_from_pareto(&hadas, &outcome, 3)?;
        // The reconfiguration staircase: walk the accuracy-sorted front
        // and keep a point only if it strictly lowers the modeled
        // service time, so every escalation is a real speed-up.
        let mut front = Vec::new();
        let mut fastest = f64::INFINITY;
        for mode in modes_from_pareto(&hadas, &outcome, usize::MAX)? {
            let latency_s = mode.serve(0.5).cost.latency_s;
            if latency_s < fastest {
                fastest = latency_s;
                front.push(mode);
            }
        }
        planes.push(DevicePlane { target, hadas, modes, front });
    }
    if planes.is_empty() {
        return Err(HadasError::InvalidConfig("no targets to build device planes for".into()));
    }
    Ok(planes)
}

/// One device unit as a supervised executor job: everything the pure
/// unit run needs, fixed at schedule time.
#[derive(Debug, Clone)]
struct DeviceJob {
    device: usize,
    plane: usize,
    config: ServeConfig,
    requests: Vec<Request>,
}

/// One device × epoch segment as a supervised executor job under the
/// reconfiguration plane: the session state rides in, the post-segment
/// state rides out.
#[derive(Debug, Clone)]
struct EpochJob {
    device: usize,
    plane: usize,
    anchor: usize,
    config: ServeConfig,
    state: SessionState,
    requests: Vec<Request>,
    drain: bool,
}

/// What one device contributed to the fold: a completed trace, or a
/// dead unit whose assignment became dead letters.
enum UnitOutcome {
    Dead { assigned: usize },
    Done { assigned: usize, trace: Box<ServeTrace> },
}

/// The outcome of one fleet run: the deterministic report plus the
/// supervisor's out-of-band resilience telemetry (unit crashes healed,
/// retries, hedges — deliberately *not* serialized in the report).
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// The deterministic serialized report.
    pub report: FleetReport,
    /// Fleet supervisor counters; the side channel where healed unit
    /// faults remain visible.
    pub telemetry: ResilienceTelemetry,
}

/// The fleet serving engine over a set of searched device planes.
#[derive(Debug)]
pub struct FleetEngine<'a> {
    planes: &'a [DevicePlane],
    plane_ix: Vec<usize>,
    config: FleetConfig,
}

impl<'a> FleetEngine<'a> {
    /// Builds a fleet over the device planes, validating the
    /// configuration and resolving every device's target to its plane.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] if the configuration fails
    /// [`FleetConfig::validate`] or a device's target has no plane.
    pub fn new(planes: &'a [DevicePlane], config: FleetConfig) -> Result<Self, HadasError> {
        config.validate()?;
        let mut plane_ix = Vec::with_capacity(config.devices.len());
        for (d, target) in config.devices.iter().enumerate() {
            let ix = planes.iter().position(|p| p.target == *target).ok_or_else(|| {
                HadasError::InvalidConfig(format!(
                    "device {d} targets {} but no plane was built for it",
                    target.cli_name()
                ))
            })?;
            plane_ix.push(ix);
        }
        Ok(FleetEngine { planes, plane_ix, config })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The router's modeled per-request cost of device `d` under the
    /// pinned ladder: the plane's mode-0 (most accurate) serve cost at
    /// nominal difficulty.
    fn estimate_of(&self, d: usize) -> DeviceEstimate {
        let outcome = self.planes[self.plane_ix[d]].modes[0].serve(0.5);
        DeviceEstimate { service_s: outcome.cost.latency_s, energy_j: outcome.cost.energy_j }
    }

    /// The router's modeled per-request cost of device `d` at window
    /// `anchor` — refreshed after every swap so routing sees the
    /// device's *current* operating point.
    fn estimate_at(&self, d: usize, anchor: usize) -> DeviceEstimate {
        let plane = &self.planes[self.plane_ix[d]];
        let mode = &plane.front[anchor.min(plane.front.len() - 1)];
        let outcome = mode.serve(0.5);
        DeviceEstimate { service_s: outcome.cost.latency_s, energy_j: outcome.cost.energy_j }
    }

    /// The serve configuration of device `d`: the fleet's SLO envelope,
    /// the replica's governor, the per-device substrate fault stream,
    /// the shared drift scenario, and the always-on brownout ladder
    /// composing with the router's modeled admission.
    fn device_config(&self, d: usize, duration_s: f64) -> ServeConfig {
        ServeConfig {
            seed: self.config.seed,
            duration_s,
            rps: self.config.rps,
            workers: 1,
            batch_max: self.config.batch_max,
            slo_ms: self.config.slo_ms,
            bulk_slo_factor: self.config.bulk_slo_factor,
            bulk_fraction: self.config.bulk_fraction,
            governor: self.config.governor_of(d),
            faults: self.config.faults.as_ref().map(|f| FaultConfig {
                seed: f.seed.wrapping_add(d as u64),
                horizon_s: duration_s,
                ..f.clone()
            }),
            chaos: None,
            gray: self.config.gray.as_ref().map(|g| GrayFaultConfig { device: d, ..g.clone() }),
            hedge_factor: self.config.hedge_factor,
            retry: self.config.retry,
            breaker_threshold: self.config.breaker_threshold,
            breaker_cooldown: self.config.breaker_cooldown,
            brownout: Some(BrownoutConfig::default()),
            scenario: self.config.scenario.clone(),
            ..ServeConfig::default()
        }
    }

    /// The fleet-wide arrival-stream generator configuration (scenario
    /// modulation included).
    fn gen_config(&self, duration_s: f64) -> ServeConfig {
        ServeConfig {
            seed: self.config.seed,
            duration_s,
            rps: self.config.rps,
            slo_ms: self.config.slo_ms,
            bulk_slo_factor: self.config.bulk_slo_factor,
            bulk_fraction: self.config.bulk_fraction,
            scenario: self.config.scenario.clone(),
            ..ServeConfig::default()
        }
    }

    /// Runs the fleet to completion (see module docs for the two-pass
    /// structure and the determinism contract): the pinned-mode path,
    /// or the epoch-wise reconfiguration path when
    /// `FleetConfig::reconfigure` is on.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for invalid embedded
    /// configurations, or [`HadasError::Internal`] if a unit breaks the
    /// request-conservation identity or the supervisor breaks protocol.
    pub fn run(&self) -> Result<FleetRun, HadasError> {
        // Gray injection and online detection both need the epoch
        // machinery (windowed evidence, per-epoch lanes) even when the
        // reconfiguration controller itself stays off.
        if self.config.reconfigure || self.config.gray.is_some() || self.config.detection.enabled {
            self.run_epochs()
        } else {
            self.run_pinned()
        }
    }

    /// The pinned-mode fleet: one routing pass, one supervised
    /// execution pass, every device on its fixed top-3 ladder.
    fn run_pinned(&self) -> Result<FleetRun, HadasError> {
        let duration_s = self.config.duration_s();
        let n = self.config.devices.len();

        // Scheduling pass: one fleet-wide arrival stream, routed.
        let requests = generate_requests(&self.gen_config(duration_s), None);
        let offered = requests.len();
        let estimates: Vec<DeviceEstimate> = (0..n).map(|d| self.estimate_of(d)).collect();
        let routing = route(&self.config, &estimates, requests);

        let jobs: Vec<DeviceJob> = routing
            .substreams
            .into_iter()
            .enumerate()
            .map(|(d, substream)| DeviceJob {
                device: d,
                plane: self.plane_ix[d],
                config: self.device_config(d, duration_s),
                requests: substream,
            })
            .collect();
        for job in &jobs {
            job.config.validate()?;
        }

        // Unit-level chaos script: pure in (seed, schedule), so the
        // recovery replay is identical at any fleet worker count.
        let plan = match &self.config.chaos {
            Some(c) => {
                let injector =
                    FaultInjector::new(FaultConfig { horizon_s: duration_s, ..c.clone() })?;
                let specs: Vec<JobSpec> = jobs
                    .iter()
                    .map(|j| JobSpec {
                        key: j.device as u64,
                        est_ms: estimates[j.device].service_s * 1e3 * j.requests.len() as f64,
                        weight: j.requests.len(),
                    })
                    .collect();
                Some(ChaosPlan::build(
                    &injector,
                    &self.config.retry,
                    CircuitBreaker::new(
                        self.config.breaker_threshold,
                        self.config.breaker_cooldown,
                    ),
                    self.config.hedge_factor,
                    &specs,
                ))
            }
            None => None,
        };

        // Execution pass: device units as supervised jobs.
        let planes = self.planes;
        let run_unit = |job: &DeviceJob| -> Result<ServeTrace, HadasError> {
            let plane = &planes[job.plane];
            ServeEngine::new(&plane.hadas, plane.modes.clone(), job.config.clone())?
                .run_requests(job.requests.clone())
        };
        let (slots, telemetry) =
            run_supervised(&jobs, self.config.workers, run_unit, plan.as_ref())?;

        let mut outcomes = Vec::with_capacity(n);
        for (job, slot) in jobs.iter().zip(slots) {
            let assigned = job.requests.len();
            match slot {
                None => outcomes.push(UnitOutcome::Dead { assigned }),
                Some(Err(e)) => return Err(e),
                Some(Ok(trace)) => {
                    outcomes.push(UnitOutcome::Done { assigned, trace: Box::new(trace) });
                }
            }
        }

        let reconfig = ReconfigSummary::disabled(self.config.scenario_name());
        let detection = DetectionSummary::disabled(n);
        let report = self.fold_report(offered, routing.summary, outcomes, reconfig, detection)?;
        Ok(FleetRun { report, telemetry })
    }

    /// The epoch-segmented fleet: per-epoch routing under live lane
    /// states, the online gray-failure detector at every barrier
    /// (see `crate::health`), and — with `FleetConfig::reconfigure`
    /// on — zero-drop operating-point swaps (see `crate::reconfig`).
    fn run_epochs(&self) -> Result<FleetRun, HadasError> {
        let duration_s = self.config.duration_s();
        let n = self.config.devices.len();
        let rc = self.config.reconfig.clone();
        let epochs = rc.epochs;
        let detection = self.config.detection.clone();
        let detect = detection.enabled;

        let requests = generate_requests(&self.gen_config(duration_s), None);
        let offered = requests.len();

        // The substrate stream swap-failure draws come from; chaos
        // stays execution-plane and never reaches a decision.
        let swap_faults = match &self.config.faults {
            Some(f) => {
                Some(FaultInjector::new(FaultConfig { horizon_s: duration_s, ..f.clone() })?)
            }
            None => None,
        };
        let chaos_injector = match &self.config.chaos {
            Some(c) => {
                Some(FaultInjector::new(FaultConfig { horizon_s: duration_s, ..c.clone() })?)
            }
            None => None,
        };

        let device_cfgs: Vec<ServeConfig> =
            (0..n).map(|d| self.device_config(d, duration_s)).collect();
        for cfg in &device_cfgs {
            cfg.validate()?;
        }

        // Fresh zeroed sessions, exported immediately: the per-epoch
        // jobs are pure (state in → state out).
        let mut states: Vec<SessionState> = Vec::with_capacity(n);
        for (d, cfg) in device_cfgs.iter().enumerate() {
            let plane = &self.planes[self.plane_ix[d]];
            let engine = ServeEngine::new(&plane.hadas, plane.window(0), cfg.clone())?;
            states.push(engine.session()?.state());
        }

        let mut router = Router::new(&self.config, n);
        let mut anchors = vec![0usize; n];
        let mut calm = vec![0usize; n];
        #[derive(Clone, Copy, Default)]
        struct Mark {
            interactive_served: usize,
            interactive_violations: usize,
            health_len: usize,
            windows_opened: usize,
            defects: usize,
            served: usize,
            latency_sum_ms: f64,
        }
        /// One device's epoch-over-epoch deltas at a barrier: the
        /// detector's evidence plus the controller's pressure inputs.
        struct BarrierDelta {
            evidence: EpochEvidence,
            interactive_served: usize,
            interactive_violations: usize,
            min_thermal_cap: f64,
        }
        let mut marks = vec![Mark::default(); n];
        let mut summary = if self.config.reconfigure {
            ReconfigSummary {
                enabled: true,
                scenario: self.config.scenario_name().to_string(),
                epochs,
                swaps: 0,
                swap_rollbacks: 0,
                dropped_by_swap: 0,
                escalations: 0,
                deescalations: 0,
                final_anchors: Vec::new(),
            }
        } else {
            ReconfigSummary::disabled(self.config.scenario_name())
        };
        let mut telemetry = ResilienceTelemetry::default();

        // Detection state: one machine and one routing lane per device,
        // plus the re-dispatch carryover of quarantine drains.
        let mut machines = vec![HealthMachine::default(); n];
        let mut lanes = vec![LaneState::Open; n];
        let mut ever_quarantined = vec![false; n];
        let mut transitions: Vec<HealthTransition> = Vec::new();
        let mut dirty_epochs = 0usize;
        let mut redispatched = 0usize;
        let mut carryover: Vec<Request> = Vec::new();

        let epoch_len = duration_s / epochs as f64;
        let mut lo = 0usize;
        for e in 0..epochs {
            let drain = e + 1 == epochs;
            let hi = if drain {
                requests.len()
            } else {
                let t_hi = (e as f64 + 1.0) * epoch_len;
                lo + requests[lo..].partition_point(|r| r.time_s < t_hi)
            };

            // Scheduling pass for this epoch: refreshed estimates, the
            // persistent router extends its modeled backlogs. Requests
            // drained off newly quarantined devices re-enter here,
            // merged into the slice in (time, id) order.
            let estimates: Vec<DeviceEstimate> =
                (0..n).map(|d| self.estimate_at(d, anchors[d])).collect();
            let slice: Vec<Request> = if carryover.is_empty() {
                requests[lo..hi].to_vec()
            } else {
                let mut merged = std::mem::take(&mut carryover);
                merged.extend_from_slice(&requests[lo..hi]);
                merged.sort_by(|a, b| a.time_s.total_cmp(&b.time_s).then(a.id.cmp(&b.id)));
                merged
            };
            let substreams = router.route_slice(&estimates, &lanes, &slice);
            lo = hi;

            let jobs: Vec<EpochJob> = substreams
                .into_iter()
                .enumerate()
                .map(|(d, substream)| EpochJob {
                    device: d,
                    plane: self.plane_ix[d],
                    anchor: anchors[d],
                    config: device_cfgs[d].clone(),
                    state: states[d].clone(),
                    requests: substream,
                    drain,
                })
                .collect();

            let plan = match &chaos_injector {
                Some(injector) => {
                    let specs: Vec<JobSpec> = jobs
                        .iter()
                        .map(|j| JobSpec {
                            key: (e * n + j.device) as u64,
                            est_ms: estimates[j.device].service_s * 1e3 * j.requests.len() as f64,
                            weight: j.requests.len(),
                        })
                        .collect();
                    Some(ChaosPlan::build(
                        injector,
                        &self.config.retry,
                        CircuitBreaker::new(
                            self.config.breaker_threshold,
                            self.config.breaker_cooldown,
                        ),
                        self.config.hedge_factor,
                        &specs,
                    ))
                }
                None => None,
            };

            // Execution pass: one pure segment per device.
            let planes = self.planes;
            let run_unit = |job: &EpochJob| -> Result<SessionState, HadasError> {
                let plane = &planes[job.plane];
                let engine =
                    ServeEngine::new(&plane.hadas, plane.window(job.anchor), job.config.clone())?;
                let mut session = engine.resume(job.state.clone())?;
                session.serve_segment(&job.requests, job.drain)?;
                Ok(session.state())
            };
            let (slots, t) = run_supervised(&jobs, self.config.workers, run_unit, plan.as_ref())?;
            telemetry.merge(&t);

            // Fold the epoch in device order.
            for (job, slot) in jobs.iter().zip(slots) {
                let d = job.device;
                match slot {
                    None => {
                        // The unit died for the whole epoch: its
                        // in-flight queue and the epoch's substream are
                        // dead letters; the pre-epoch state carries on.
                        let mut st = job.state.clone();
                        st.dead_letter_queue();
                        st.offered += job.requests.len();
                        st.dead_lettered += job.requests.len();
                        states[d] = st;
                    }
                    Some(Err(err)) => return Err(err),
                    Some(Ok(st)) => states[d] = st,
                }
            }

            if drain {
                break;
            }

            // Barrier pass, single-threaded in device order. First the
            // epoch-over-epoch deltas every barrier consumer shares.
            let mut deltas: Vec<BarrierDelta> = Vec::with_capacity(n);
            for d in 0..n {
                let st = &states[d];
                let mark = marks[d];
                // Session state only ever accretes across barriers; a
                // shrunken health trace means a unit resumed from the
                // wrong state, which must fail loudly, not clamp.
                if mark.health_len > st.health.len() {
                    return Err(HadasError::Internal(format!(
                        "device {d} health trace shrank across an epoch barrier \
                         ({} samples marked, {} present)",
                        mark.health_len,
                        st.health.len()
                    )));
                }
                let min_thermal_cap = st.health[mark.health_len..]
                    .iter()
                    .map(|h| h.thermal_cap)
                    .fold(1.0f64, f64::min);
                let served = st.served - mark.served;
                let windows = st.windows_opened - mark.windows_opened;
                let emitted = st.health.len() - mark.health_len;
                deltas.push(BarrierDelta {
                    evidence: EpochEvidence {
                        defects: st.telemetry_defects.total() - mark.defects,
                        gaps: windows.saturating_sub(emitted),
                        served,
                        observed_mean_ms: if served > 0 {
                            (st.latency_sum_ms - mark.latency_sum_ms) / served as f64
                        } else {
                            0.0
                        },
                        modeled_ms: estimates[d].service_s * 1e3,
                    },
                    interactive_served: st.interactive_served - mark.interactive_served,
                    interactive_violations: st.interactive_violations - mark.interactive_violations,
                    min_thermal_cap,
                });
                marks[d] = Mark {
                    interactive_served: st.interactive_served,
                    interactive_violations: st.interactive_violations,
                    health_len: st.health.len(),
                    windows_opened: st.windows_opened,
                    defects: st.telemetry_defects.total(),
                    served: st.served,
                    latency_sum_ms: st.latency_sum_ms,
                };
            }

            // Detection: judge every device against the fleet-median
            // divergence, step its state machine, refresh its lane, and
            // drain newly quarantined units for re-dispatch.
            if detect {
                let mut divs: Vec<f64> =
                    deltas.iter().map(|delta| delta.evidence.divergence()).collect();
                divs.sort_by(f64::total_cmp);
                let median_divergence = divs[n / 2];
                for d in 0..n {
                    let verdict = judge(&detection, &deltas[d].evidence, median_divergence);
                    if verdict == Verdict::Dirty {
                        dirty_epochs += 1;
                    }
                    if let Some((from, to)) = machines[d].step(&detection, verdict) {
                        if to == HealthState::Quarantined {
                            ever_quarantined[d] = true;
                            // Quarantine drain: pull the in-flight queue
                            // off the unit, take the routing decisions
                            // back, and re-enter the requests into the
                            // next epoch's slice. Nothing is dropped.
                            let drained = states[d].drain_for_redispatch();
                            router.unassign(d, &drained);
                            redispatched += drained.len();
                            carryover.extend(drained);
                        }
                        transitions.push(HealthTransition {
                            epoch: e,
                            device: d,
                            from: from.name().to_string(),
                            to: to.name().to_string(),
                        });
                    }
                    let state = machines[d].state();
                    lanes[d] = if state.accepts_traffic() {
                        LaneState::Open
                    } else if state.probe_only() {
                        LaneState::ProbeOnly
                    } else {
                        LaneState::Closed
                    };
                }
            }
            let quarantined_frac =
                lanes.iter().filter(|&&l| l == LaneState::Closed).count() as f64 / n as f64;

            // Reconfiguration controller: read each device's pressure
            // (quarantined capacity included), decide, and execute
            // swaps through the validated snapshot seam.
            if !self.config.reconfigure {
                continue;
            }
            let t_end = (e as f64 + 1.0) * epoch_len;
            let capacity_factor =
                self.config.scenario.as_ref().map_or(1.0, |s| s.battery_capacity_factor_at(t_end));
            for d in 0..n {
                let st = &mut states[d];
                let soc = if rc.battery_j > 0.0 {
                    let capacity = (rc.battery_j * capacity_factor).max(1e-9);
                    (1.0 - (st.energy_j + st.switch_energy_j) / capacity).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let pressure = EpochPressure {
                    interactive_served: deltas[d].interactive_served,
                    interactive_violations: deltas[d].interactive_violations,
                    min_thermal_cap: deltas[d].min_thermal_cap,
                    soc,
                    fleet_quarantined: quarantined_frac,
                };
                let max_anchor = self.planes[self.plane_ix[d]].max_anchor();
                let decision = decide_anchor(&rc, &pressure, anchors[d], max_anchor, &mut calm[d]);
                let target = match decision {
                    AnchorDecision::Hold => continue,
                    AnchorDecision::Escalate => anchors[d] + 1,
                    AnchorDecision::Deescalate => anchors[d] - 1,
                };

                // Zero-drop swap: drain-to-barrier already happened
                // (the segment ended), so snapshot, validate, restore.
                // A substrate swap-failure draw rolls the device back
                // onto the old window from the same snapshot.
                let queued_before = st.queue_len();
                let snapshot = EngineSnapshot::capture(st.clone())?;
                let restored = snapshot.into_state()?;
                summary.dropped_by_swap += queued_before.saturating_sub(restored.queue_len());
                *st = restored;
                let failed =
                    swap_faults.as_ref().is_some_and(|f| f.swap_failure_at((e * n + d) as u64));
                if failed {
                    summary.swap_rollbacks += 1;
                    continue;
                }
                anchors[d] = target;
                st.mode_switches += 1;
                st.switch_energy_j += device_cfgs[d].sim.switch_energy_j;
                summary.swaps += 1;
                if decision == AnchorDecision::Escalate {
                    summary.escalations += 1;
                } else {
                    summary.deescalations += 1;
                }
            }
        }

        // Close every session under its final window and fold.
        if self.config.reconfigure {
            summary.final_anchors = anchors.clone();
        }
        let router_summary = router.into_summary();
        let det_summary = if detect {
            DetectionSummary {
                enabled: true,
                final_states: machines.iter().map(|m| m.state().name().to_string()).collect(),
                transitions,
                dirty_epochs,
                quarantined_devices: ever_quarantined.iter().filter(|&&q| q).count(),
                probe_assignments: router_summary.probe_assignments,
                redispatched,
                // Carryover always merges into a later epoch's routing
                // (quarantine fires only at non-final barriers), so this
                // is structurally zero — the invariant the bench pins.
                redispatch_dropped: carryover.len(),
            }
        } else {
            DetectionSummary::disabled(n)
        };
        let mut outcomes = Vec::with_capacity(n);
        for (d, state) in states.into_iter().enumerate() {
            let plane = &self.planes[self.plane_ix[d]];
            let engine =
                ServeEngine::new(&plane.hadas, plane.window(anchors[d]), device_cfgs[d].clone())?;
            let trace = engine.resume(state)?.finish();
            outcomes.push(UnitOutcome::Done {
                assigned: router_summary.assigned[d],
                trace: Box::new(trace),
            });
        }
        let report = self.fold_report(offered, router_summary, outcomes, summary, det_summary)?;
        Ok(FleetRun { report, telemetry })
    }

    /// Folds per-unit outcomes into the fleet report, in device order —
    /// shared by both run paths, so a reconfigured report and a pinned
    /// report are built by the same accounting.
    fn fold_report(
        &self,
        offered: usize,
        router_summary: RouterSummary,
        outcomes: Vec<UnitOutcome>,
        reconfig: ReconfigSummary,
        detection: DetectionSummary,
    ) -> Result<FleetReport, HadasError> {
        let duration_s = self.config.duration_s();
        let n = self.config.devices.len();
        let mut served = 0usize;
        let mut shed = 0usize;
        let mut rejected = 0usize;
        let mut dead_lettered = 0usize;
        let mut energy = 0.0f64;
        let mut sag_energy = 0.0f64;
        let mut makespan = 0.0f64;
        let mut global = Histogram::new();
        let mut violations = 0usize;
        let mut interactive = (0usize, 0usize);
        let mut bulk = (0usize, 0usize);
        let mut per_device = Vec::with_capacity(n);
        let mut health = Vec::with_capacity(n);
        for (d, outcome) in outcomes.into_iter().enumerate() {
            let target = self.planes[self.plane_ix[d]].target.cli_name();
            let governor = self.config.governor_of(d).name();
            let state =
                detection.final_states.get(d).map_or(HealthState::Healthy.name(), String::as_str);
            match outcome {
                UnitOutcome::Dead { assigned } => {
                    // The unit's whole substream died with it: account
                    // it as dead letters, never silently lost.
                    dead_lettered += assigned;
                    per_device.push(DeviceSummary {
                        device: d,
                        target: target.to_string(),
                        governor: governor.to_string(),
                        assigned,
                        served: 0,
                        shed: 0,
                        rejected: 0,
                        dead_lettered: assigned,
                        mode_switches: 0,
                        energy_j: 0.0,
                        slo_violations: 0,
                        p99_ms: 0.0,
                    });
                    health.push(DeviceHealthReport::dead_unit(d, target, governor, assigned));
                }
                UnitOutcome::Done { assigned, trace } => {
                    let r = &trace.report;
                    if !r.accounting_balances() || r.offered != assigned {
                        return Err(HadasError::Internal(format!(
                            "device {d} broke request conservation \
                             ({} + {} + {} + {} vs {assigned} assigned)",
                            r.served, r.shed, r.rejected, r.dead_lettered
                        )));
                    }
                    served += r.served;
                    shed += r.shed;
                    rejected += r.rejected;
                    dead_lettered += r.dead_lettered;
                    energy += r.energy_j;
                    sag_energy += r.sag_energy_j;
                    makespan = makespan.max(r.makespan_s);
                    global.merge(&trace.latencies);
                    violations += r.slo.violations;
                    interactive.0 += r.slo.interactive_served;
                    interactive.1 += r.slo.interactive_violations;
                    bulk.0 += r.slo.bulk_served;
                    bulk.1 += r.slo.bulk_violations;
                    per_device.push(DeviceSummary {
                        device: d,
                        target: target.to_string(),
                        governor: governor.to_string(),
                        assigned,
                        served: r.served,
                        shed: r.shed,
                        rejected: r.rejected,
                        dead_lettered: r.dead_lettered,
                        mode_switches: r.mode_switches,
                        energy_j: r.energy_j,
                        slo_violations: r.slo.violations,
                        p99_ms: r.latency.p99_ms,
                    });
                    health.push(DeviceHealthReport::from_trace(
                        d,
                        target,
                        governor,
                        &trace,
                        &self.config.health,
                        state,
                    ));
                }
            }
        }

        let routed = router_summary.routed();
        let unhealthy = health.iter().filter(|h| !h.healthy).count();
        let report = FleetReport {
            schema: crate::FLEET_REPORT_SCHEMA,
            fingerprint: 0,
            devices: n,
            device_mix: crate::canonical_spec(&self.config.devices),
            users: self.config.users,
            rps: self.config.rps,
            duration_s,
            seed: self.config.seed,
            offered,
            routed,
            fleet_rejected: router_summary.rejected(),
            served,
            shed,
            rejected,
            dead_lettered,
            makespan_s: makespan,
            throughput_rps: served as f64 / makespan.max(duration_s),
            energy_j: energy,
            sag_energy_j: sag_energy,
            latency: global.summary(),
            slo: SloSummary {
                target_ms: self.config.slo_ms,
                violations,
                violation_rate: violations as f64 / served.max(1) as f64,
                interactive_served: interactive.0,
                interactive_violations: interactive.1,
                bulk_served: bulk.0,
                bulk_violations: bulk.1,
            },
            scenario: self.config.scenario_name().to_string(),
            reconfig,
            detection,
            router: router_summary,
            per_device,
            health,
            unhealthy_devices: unhealthy,
        };
        if !report.accounting_balances() {
            return Err(HadasError::Internal("fleet report broke request conservation".into()));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadas_runtime::{FaultConfig, Scenario};

    fn planes() -> Vec<DevicePlane> {
        build_planes(&[HwTarget::Tx2PascalGpu, HwTarget::AgxCarmelCpu], &HadasConfig::smoke_test())
            .unwrap()
    }

    fn small_config() -> FleetConfig {
        FleetConfig {
            devices: vec![
                HwTarget::Tx2PascalGpu,
                HwTarget::AgxCarmelCpu,
                HwTarget::Tx2PascalGpu,
                HwTarget::AgxCarmelCpu,
            ],
            users: 900,
            rps: 300.0,
            seed: 42,
            ..FleetConfig::default()
        }
    }

    fn drift_config() -> FleetConfig {
        let base = small_config();
        FleetConfig {
            scenario: Some(Scenario::from_name("composite", 42, base.duration_s()).unwrap()),
            reconfigure: true,
            ..base
        }
    }

    #[test]
    fn reports_are_byte_identical_across_fleet_worker_counts() {
        let planes = planes();
        let base = FleetEngine::new(&planes, small_config()).unwrap().run().unwrap();
        let base_json = base.report.to_json().unwrap();
        assert!(base.report.accounting_balances());
        assert!(base.report.served > 0, "the fleet must serve");
        for workers in [2usize, 4, 8] {
            let cfg = FleetConfig { workers, ..small_config() };
            let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
            assert_eq!(
                run.report.to_json().unwrap(),
                base_json,
                "fleet worker count {workers} must not leak into the report"
            );
        }
    }

    #[test]
    fn reconfigured_reports_are_byte_identical_across_worker_counts() {
        let planes = planes();
        let base = FleetEngine::new(&planes, drift_config()).unwrap().run().unwrap();
        let base_json = base.report.to_json().unwrap();
        assert!(base.report.accounting_balances());
        assert!(base.report.reconfig.enabled);
        assert_eq!(base.report.reconfig.dropped_by_swap, 0, "the zero-drop invariant");
        assert_eq!(base.report.scenario, "composite");
        for workers in [2usize, 4, 8] {
            let cfg = FleetConfig { workers, ..drift_config() };
            let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
            assert_eq!(
                run.report.to_json().unwrap(),
                base_json,
                "worker count {workers} must not leak into a reconfigured report"
            );
        }
    }

    #[test]
    fn unit_chaos_heals_back_to_the_fault_free_report() {
        let planes = planes();
        let clean = FleetEngine::new(&planes, small_config()).unwrap().run().unwrap();
        let mut healed_something = false;
        for seed in [3u64, 5, 7, 11] {
            let cfg = FleetConfig {
                chaos: Some(FaultConfig {
                    crash_rate: 0.25,
                    transient_rate: 0.15,
                    ..FaultConfig::worker_chaos(seed)
                }),
                retry: hadas::RetryPolicy { max_attempts: 6, ..hadas::RetryPolicy::default() },
                workers: 3,
                ..small_config()
            };
            let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
            if run.telemetry.crashes > 0 || run.telemetry.retries > 0 {
                healed_something = true;
            }
            assert_eq!(run.report.dead_lettered, 0, "six attempts must recover (seed {seed})");
            assert_eq!(
                run.report.to_json().unwrap(),
                clean.report.to_json().unwrap(),
                "healed chaos must be invisible in the report (seed {seed})"
            );
        }
        assert!(healed_something, "some seed must actually inject unit faults");
    }

    #[test]
    fn mid_swap_unit_chaos_heals_back_to_the_fault_free_reconfigured_report() {
        let planes = planes();
        let clean = FleetEngine::new(&planes, drift_config()).unwrap().run().unwrap();
        let mut healed_something = false;
        for seed in [3u64, 5, 7] {
            let cfg = FleetConfig {
                chaos: Some(FaultConfig {
                    crash_rate: 0.2,
                    transient_rate: 0.1,
                    ..FaultConfig::worker_chaos(seed)
                }),
                retry: hadas::RetryPolicy { max_attempts: 6, ..hadas::RetryPolicy::default() },
                workers: 3,
                ..drift_config()
            };
            let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
            healed_something |= run.telemetry.crashes > 0 || run.telemetry.retries > 0;
            assert_eq!(run.report.dead_lettered, 0, "six attempts must recover (seed {seed})");
            assert_eq!(
                run.report.to_json().unwrap(),
                clean.report.to_json().unwrap(),
                "epoch crashes landing around swaps must heal invisibly (seed {seed})"
            );
        }
        assert!(healed_something, "some seed must actually inject epoch faults");
    }

    #[test]
    fn reconfiguration_swaps_under_drift_and_drops_nothing() {
        let planes = planes();
        let run = FleetEngine::new(&planes, drift_config()).unwrap().run().unwrap();
        let rc = &run.report.reconfig;
        assert!(rc.enabled);
        assert_eq!(rc.epochs, 8);
        assert!(rc.swaps > 0, "composite drift must force at least one live swap");
        assert_eq!(rc.dropped_by_swap, 0, "swaps must never drop a queued request");
        assert_eq!(rc.swaps, rc.escalations + rc.deescalations);
        assert_eq!(rc.final_anchors.len(), 4);
        assert!(run.report.accounting_balances(), "conservation survives swaps");
        assert!(
            run.report
                .per_device
                .iter()
                .zip(&rc.final_anchors)
                .all(|(s, &a)| { a == 0 || s.mode_switches > 0 }),
            "a moved anchor implies at least one latched switch"
        );
    }

    #[test]
    fn swap_failures_roll_back_and_stay_accounted() {
        let planes = planes();
        let base = drift_config();
        let cfg = FleetConfig {
            faults: Some(FaultConfig { seed: 9, swap_fail_rate: 0.9, ..FaultConfig::default() }),
            ..base
        };
        let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
        let rc = &run.report.reconfig;
        assert!(rc.swap_rollbacks > 0, "a 0.9 swap-failure rate must roll something back");
        assert_eq!(rc.dropped_by_swap, 0, "rollbacks drop nothing either");
        assert!(run.report.accounting_balances());
    }

    #[test]
    fn dead_units_surface_as_dead_letters_not_loss() {
        let planes = planes();
        let cfg = FleetConfig {
            chaos: Some(FaultConfig {
                crash_rate: 0.9,
                transient_rate: 0.0,
                timeout_rate: 0.0,
                ..FaultConfig::worker_chaos(13)
            }),
            retry: hadas::RetryPolicy { max_attempts: 1, ..hadas::RetryPolicy::default() },
            workers: 2,
            ..small_config()
        };
        let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
        assert!(run.report.dead_lettered > 0, "crash rate 0.9 × 1 attempt must kill a unit");
        assert!(run.report.accounting_balances(), "dead letters stay conserved");
        assert_eq!(
            run.report.unhealthy_devices,
            run.report.health.iter().filter(|h| !h.healthy).count()
        );
        assert!(run.report.health.iter().any(|h| !h.healthy));
    }

    #[test]
    fn dead_epochs_dead_letter_their_slice_and_stay_conserved() {
        let planes = planes();
        let cfg = FleetConfig {
            chaos: Some(FaultConfig {
                crash_rate: 0.9,
                transient_rate: 0.0,
                timeout_rate: 0.0,
                ..FaultConfig::worker_chaos(13)
            }),
            retry: hadas::RetryPolicy { max_attempts: 1, ..hadas::RetryPolicy::default() },
            workers: 2,
            ..drift_config()
        };
        let run = FleetEngine::new(&planes, cfg).unwrap().run().unwrap();
        assert!(run.report.dead_lettered > 0, "crash rate 0.9 × 1 attempt must kill an epoch");
        assert!(run.report.accounting_balances(), "dead epochs stay conserved");
    }

    #[test]
    fn fleet_report_json_round_trips_through_the_gated_restore() {
        let planes = planes();
        let run = FleetEngine::new(&planes, small_config()).unwrap().run().unwrap();
        let json = run.report.to_json().unwrap();
        let restored = FleetReport::from_json(&json).unwrap();
        assert_eq!(restored.served, run.report.served);
        assert_ne!(restored.fingerprint, 0);
        let tampered = json.replace("\"devices\": 4", "\"devices\": 5");
        assert!(FleetReport::from_json(&tampered).is_err(), "tampering must be refused");
    }

    #[test]
    fn missing_plane_is_an_invalid_config() {
        let planes = build_planes(&[HwTarget::Tx2PascalGpu], &HadasConfig::smoke_test()).unwrap();
        let cfg = FleetConfig { devices: vec![HwTarget::AgxVoltaGpu], ..FleetConfig::default() };
        assert!(FleetEngine::new(&planes, cfg).is_err());
    }

    #[test]
    fn health_reports_cover_every_device_in_order() {
        let planes = planes();
        let run = FleetEngine::new(&planes, small_config()).unwrap().run().unwrap();
        assert_eq!(run.report.health.len(), 4);
        assert_eq!(run.report.per_device.len(), 4);
        for (d, (h, s)) in run.report.health.iter().zip(&run.report.per_device).enumerate() {
            assert_eq!(h.device, d);
            assert_eq!(s.device, d);
            assert_eq!(s.assigned, run.report.router.assigned[d]);
            assert_eq!(s.served + s.shed + s.rejected + s.dead_lettered, s.assigned);
        }
    }
}
