//! Live fleet reconfiguration: the epoch controller that re-selects
//! per-device operating points against workload drift, and the swap
//! accounting the fleet report serializes.
//!
//! With `FleetConfig::reconfigure` on, a fleet run is segmented into
//! epochs. Each epoch routes its slice of the arrival stream under
//! *refreshed* per-device cost estimates, runs every device unit one
//! segment forward as a pure supervised job, and then — single-threaded,
//! in device order — the controller reads each device's epoch pressure
//! (interactive SLO violations, thermal caps, battery state of charge)
//! and decides whether to slide the device's mode window along its
//! searched Pareto front:
//!
//! ```text
//!            pressure / throttle / low SoC
//!   anchor a ────────────────────────────────▶ anchor a+1   (escalate: cheaper window)
//!   anchor a ◀──────────────────────────────── anchor a-1   (de-escalate after
//!            `hysteresis_epochs` calm epochs                  sustained calm)
//! ```
//!
//! A window move is executed as a zero-drop swap: the session state is
//! exported at the epoch barrier, round-tripped through a validated
//! `EngineSnapshot`, and resumed under the new window's engine — queued
//! requests ride the snapshot, so `dropped_by_swap` is structurally
//! zero and the fleet's request-conservation identity is untouched. A
//! swap-failure draw from the substrate fault stream rolls the device
//! back onto its old window from the same snapshot
//! ([`ReconfigSummary::swap_rollbacks`]).
//!
//! Every decision input is a scheduling-plane quantity folded in device
//! order, so reconfigured reports stay byte-identical across fleet
//! worker counts and under healed unit chaos.

use hadas::HadasError;
use serde::{Deserialize, Serialize};

/// Operating modes per reconfiguration window: each device serves under
/// a contiguous 3-mode slice of its plane's full Pareto front, and the
/// controller slides the slice's anchor.
pub const RECONFIG_WINDOW: usize = 3;

/// Controller knobs of the live-reconfiguration plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigConfig {
    /// Epochs the run is segmented into (≥ 1); swap decisions happen at
    /// the barrier after every epoch except the last.
    pub epochs: usize,
    /// Calm epochs required before a device de-escalates one anchor
    /// step back toward the accurate end (≥ 1) — the hysteresis that
    /// stops anchor flapping.
    pub hysteresis_epochs: usize,
    /// Interactive SLO-violation pressure (epoch violations / epoch
    /// served, in `(0, 1]`) above which a device escalates.
    pub pressure_threshold: f64,
    /// Battery state of charge below which a device escalates
    /// (`[0, 1)`; only consulted when `battery_j > 0`).
    pub soc_low: f64,
    /// Per-device battery capacity in joules (0 disables the battery
    /// model). Drift scenarios with battery decay shrink the effective
    /// capacity over the horizon.
    pub battery_j: f64,
    /// Fraction of the fleet under quarantine above which the surviving
    /// devices escalate (`[0, 1]`): lost capacity is pressure on
    /// everyone left serving.
    pub quarantine_pressure: f64,
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        ReconfigConfig {
            epochs: 8,
            hysteresis_epochs: 2,
            pressure_threshold: 0.05,
            soc_low: 0.25,
            battery_j: 0.0,
            quarantine_pressure: 0.2,
        }
    }
}

impl ReconfigConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`HadasError::InvalidConfig`] for zero epochs/hysteresis
    /// or out-of-range thresholds.
    pub fn validate(&self) -> Result<(), HadasError> {
        if self.epochs == 0 {
            return Err(HadasError::InvalidConfig("reconfig epochs must be ≥ 1".into()));
        }
        if self.hysteresis_epochs == 0 {
            return Err(HadasError::InvalidConfig("hysteresis_epochs must be ≥ 1".into()));
        }
        if !self.pressure_threshold.is_finite() || !(0.0..=1.0).contains(&self.pressure_threshold) {
            return Err(HadasError::InvalidConfig("pressure_threshold must lie in [0, 1]".into()));
        }
        if !self.soc_low.is_finite() || !(0.0..1.0).contains(&self.soc_low) {
            return Err(HadasError::InvalidConfig("soc_low must lie in [0, 1)".into()));
        }
        if !self.battery_j.is_finite() || self.battery_j < 0.0 {
            return Err(HadasError::InvalidConfig("battery_j must be ≥ 0".into()));
        }
        if !self.quarantine_pressure.is_finite() || !(0.0..=1.0).contains(&self.quarantine_pressure)
        {
            return Err(HadasError::InvalidConfig("quarantine_pressure must lie in [0, 1]".into()));
        }
        Ok(())
    }
}

/// The pressure signals one device exposes to the controller at an
/// epoch barrier — all deltas over the epoch just served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochPressure {
    /// Interactive requests served this epoch.
    pub interactive_served: usize,
    /// Interactive deadline violations this epoch.
    pub interactive_violations: usize,
    /// Tightest thermal cap observed in the epoch's control windows
    /// (`1.0` = never capped).
    pub min_thermal_cap: f64,
    /// Battery state of charge at the epoch barrier (`1.0` when the
    /// battery model is off).
    pub soc: f64,
    /// Fraction of the fleet quarantined by the gray-failure detector
    /// at this barrier (`0.0` with detection off) — shared across every
    /// device's pressure, so lost capacity pushes the survivors.
    pub fleet_quarantined: f64,
}

impl EpochPressure {
    /// Interactive violation pressure: `violations / max(1, served)`.
    pub fn slo_pressure(&self) -> f64 {
        self.interactive_violations as f64 / self.interactive_served.max(1) as f64
    }
}

/// One controller verdict for one device at an epoch barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorDecision {
    /// Stay on the current window.
    Hold,
    /// Slide one step toward the frugal end of the front.
    Escalate,
    /// Slide one step back toward the accurate end.
    Deescalate,
}

/// The pure per-device controller step: given the epoch's pressure, the
/// current calm streak, and the knobs, pick the next decision. `calm`
/// is updated in place (reset on pressure, grown on calm). Pure in its
/// inputs, so replaying the same epochs yields the same anchor path on
/// any fleet worker count.
pub fn decide_anchor(
    config: &ReconfigConfig,
    pressure: &EpochPressure,
    anchor: usize,
    max_anchor: usize,
    calm: &mut usize,
) -> AnchorDecision {
    let stressed = pressure.slo_pressure() > config.pressure_threshold
        || pressure.min_thermal_cap < 1.0
        || pressure.soc < config.soc_low
        || pressure.fleet_quarantined > config.quarantine_pressure;
    if stressed {
        *calm = 0;
        if anchor < max_anchor {
            return AnchorDecision::Escalate;
        }
        return AnchorDecision::Hold;
    }
    *calm += 1;
    if *calm >= config.hysteresis_epochs && anchor > 0 {
        *calm = 0;
        return AnchorDecision::Deescalate;
    }
    AnchorDecision::Hold
}

/// Serialized reconfiguration accounting inside the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigSummary {
    /// Whether the reconfiguration controller ran.
    pub enabled: bool,
    /// Name of the drift scenario in force (`"none"` without one).
    pub scenario: String,
    /// Epochs the run was segmented into (0 when disabled).
    pub epochs: usize,
    /// Operating-point swaps executed.
    pub swaps: usize,
    /// Swaps aborted by a substrate swap-failure draw and rolled back
    /// onto the old window from the same snapshot.
    pub swap_rollbacks: usize,
    /// Requests lost across swap barriers — structurally zero; the
    /// zero-drop invariant the chaos tests pin.
    pub dropped_by_swap: usize,
    /// Anchor steps taken toward the frugal end.
    pub escalations: usize,
    /// Anchor steps taken back toward the accurate end.
    pub deescalations: usize,
    /// Final per-device window anchors, in device order.
    pub final_anchors: Vec<usize>,
}

impl ReconfigSummary {
    /// The summary of a run without the controller (pinned-mode fleet);
    /// the scenario name still records any drift in force.
    pub fn disabled(scenario: &str) -> Self {
        ReconfigSummary {
            enabled: false,
            scenario: scenario.to_string(),
            epochs: 0,
            swaps: 0,
            swap_rollbacks: 0,
            dropped_by_swap: 0,
            escalations: 0,
            deescalations: 0,
            final_anchors: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm_pressure() -> EpochPressure {
        EpochPressure {
            interactive_served: 100,
            interactive_violations: 0,
            min_thermal_cap: 1.0,
            soc: 1.0,
            fleet_quarantined: 0.0,
        }
    }

    #[test]
    fn default_config_validates_and_degenerates_are_rejected() {
        assert!(ReconfigConfig::default().validate().is_ok());
        let bad = |f: fn(&mut ReconfigConfig)| {
            let mut c = ReconfigConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.epochs = 0));
        assert!(bad(|c| c.hysteresis_epochs = 0));
        assert!(bad(|c| c.pressure_threshold = 1.5));
        assert!(bad(|c| c.soc_low = 1.0));
        assert!(bad(|c| c.battery_j = -1.0));
        assert!(bad(|c| c.quarantine_pressure = -0.1));
        assert!(bad(|c| c.quarantine_pressure = 1.5));
    }

    #[test]
    fn pressure_escalates_and_calm_deescalates_with_hysteresis() {
        let cfg = ReconfigConfig::default();
        let mut calm = 0usize;
        let hot = EpochPressure { interactive_violations: 20, ..calm_pressure() };
        assert_eq!(decide_anchor(&cfg, &hot, 0, 4, &mut calm), AnchorDecision::Escalate);
        assert_eq!(calm, 0);
        // At the frugal end pressure holds rather than overrunning.
        assert_eq!(decide_anchor(&cfg, &hot, 4, 4, &mut calm), AnchorDecision::Hold);
        // One calm epoch is not enough under hysteresis 2 ...
        assert_eq!(decide_anchor(&cfg, &calm_pressure(), 2, 4, &mut calm), AnchorDecision::Hold);
        // ... the second one steps back.
        assert_eq!(
            decide_anchor(&cfg, &calm_pressure(), 2, 4, &mut calm),
            AnchorDecision::Deescalate
        );
        assert_eq!(calm, 0, "a de-escalation consumes the calm streak");
    }

    #[test]
    fn thermal_and_battery_pressure_also_escalate() {
        let cfg = ReconfigConfig::default();
        let mut calm = 1usize;
        let throttled = EpochPressure { min_thermal_cap: 0.8, ..calm_pressure() };
        assert_eq!(decide_anchor(&cfg, &throttled, 1, 4, &mut calm), AnchorDecision::Escalate);
        assert_eq!(calm, 0, "pressure resets the calm streak");
        let drained = EpochPressure { soc: 0.1, ..calm_pressure() };
        assert_eq!(decide_anchor(&cfg, &drained, 1, 4, &mut calm), AnchorDecision::Escalate);
        // A quarantined quarter of the fleet pressures the survivors.
        let depleted = EpochPressure { fleet_quarantined: 0.25, ..calm_pressure() };
        assert_eq!(decide_anchor(&cfg, &depleted, 1, 4, &mut calm), AnchorDecision::Escalate);
        // An anchored-at-zero calm device never de-escalates below 0.
        let mut calm0 = 5usize;
        assert_eq!(decide_anchor(&cfg, &calm_pressure(), 0, 4, &mut calm0), AnchorDecision::Hold);
    }

    #[test]
    fn disabled_summary_is_inert_but_keeps_the_scenario() {
        let s = ReconfigSummary::disabled("diurnal");
        assert!(!s.enabled);
        assert_eq!(s.scenario, "diurnal");
        assert_eq!(s.swaps + s.swap_rollbacks + s.dropped_by_swap, 0);
        assert!(s.final_anchors.is_empty());
    }
}
