//! Fleet device specs: the `--devices SPEC` mini-language.
//!
//! `SPEC` is a comma-separated list of `<target>:<count>` entries where
//! `<target>` is a CLI hardware spelling (`agx-gpu`, `agx-cpu`,
//! `tx2-gpu`, `tx2-cpu`) or `mixed`, which expands round-robin over all
//! four targets. Device indices follow spec order, so the spec is the
//! canonical description of the fleet's unit layout.

use hadas::HadasError;
use hadas_hw::HwTarget;

/// Parses a `--devices` spec into one [`HwTarget`] per device unit, in
/// spec order (`mixed:N` expands round-robin over [`HwTarget::ALL`]).
///
/// # Errors
///
/// Returns [`HadasError::InvalidConfig`] for malformed entries, unknown
/// targets, zero counts, or an empty spec.
pub fn parse_device_spec(spec: &str) -> Result<Vec<HwTarget>, HadasError> {
    let mut devices = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err(HadasError::InvalidConfig(format!("empty entry in device spec '{spec}'")));
        }
        let (name, count) = match entry.split_once(':') {
            Some((n, c)) => {
                let count = c.parse::<usize>().map_err(|e| {
                    HadasError::InvalidConfig(format!("bad device count '{c}' in '{entry}': {e}"))
                })?;
                (n, count)
            }
            None => (entry, 1),
        };
        if count == 0 {
            return Err(HadasError::InvalidConfig(format!(
                "device count must be ≥ 1 in '{entry}'"
            )));
        }
        if name == "mixed" {
            devices.extend((0..count).map(|i| HwTarget::ALL[i % HwTarget::ALL.len()]));
        } else {
            let target = HwTarget::parse_cli(name).ok_or_else(|| {
                HadasError::InvalidConfig(format!(
                    "unknown device target '{name}' in '{entry}' \
                     (expected agx-gpu, agx-cpu, tx2-gpu, tx2-cpu, or mixed)"
                ))
            })?;
            devices.extend(std::iter::repeat_n(target, count));
        }
    }
    if devices.is_empty() {
        return Err(HadasError::InvalidConfig("device spec resolves to zero devices".into()));
    }
    Ok(devices)
}

/// The canonical spec echo of a device list: per-target counts in
/// [`HwTarget::ALL`] order (`agx-gpu:2,tx2-gpu:4`). Parsing the echo
/// yields a fleet with the same per-target composition.
pub fn canonical_spec(devices: &[HwTarget]) -> String {
    let mut parts = Vec::new();
    for target in HwTarget::ALL {
        let count = devices.iter().filter(|&&t| t == target).count();
        if count > 0 {
            parts.push(format!("{}:{count}", target.cli_name()));
        }
    }
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_entries_expand_in_spec_order() {
        let d = parse_device_spec("tx2-gpu:2,agx-cpu:1,tx2-gpu:1").unwrap();
        assert_eq!(
            d,
            vec![
                HwTarget::Tx2PascalGpu,
                HwTarget::Tx2PascalGpu,
                HwTarget::AgxCarmelCpu,
                HwTarget::Tx2PascalGpu,
            ]
        );
    }

    #[test]
    fn bare_target_means_one_device() {
        assert_eq!(parse_device_spec("agx-gpu").unwrap(), vec![HwTarget::AgxVoltaGpu]);
    }

    #[test]
    fn mixed_expands_round_robin_over_all_targets() {
        let d = parse_device_spec("mixed:6").unwrap();
        assert_eq!(d.len(), 6);
        assert_eq!(d[0], HwTarget::ALL[0]);
        assert_eq!(d[4], HwTarget::ALL[0]);
        assert_eq!(d[5], HwTarget::ALL[1]);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(parse_device_spec("").is_err());
        assert!(parse_device_spec("tx2-gpu:0").is_err());
        assert!(parse_device_spec("tx2-gpu:lots").is_err());
        assert!(parse_device_spec("warp-drive:2").is_err());
        assert!(parse_device_spec("tx2-gpu:1,,agx-cpu:1").is_err());
    }

    #[test]
    fn canonical_echo_round_trips_composition() {
        let d = parse_device_spec("mixed:9,tx2-gpu:3").unwrap();
        let echo = canonical_spec(&d);
        let again = parse_device_spec(&echo).unwrap();
        for target in HwTarget::ALL {
            let a = d.iter().filter(|&&t| t == target).count();
            let b = again.iter().filter(|&&t| t == target).count();
            assert_eq!(a, b, "{} count must survive the echo", target.cli_name());
        }
    }
}
