//! # hadas-fleet — deterministic multi-device fleet serving
//!
//! Fleet-scale serving for the HADAS reproduction: N heterogeneous
//! device units — the four calibrated hardware profiles × per-replica
//! DVFS governor states, each wrapping a [`hadas_serve::ServeEngine`] —
//! driven in shared deterministic virtual time under a global
//! latency/energy-aware router and supervised through the core
//! executor.
//!
//! The plane decomposes into:
//!
//! - **Specs** ([`parse_device_spec`] / [`canonical_spec`]): the CLI
//!   grammar `agx-gpu:2,tx2-gpu:4` (or `mixed:N`) for the device mix.
//! - **Planes** ([`build_planes`], [`DevicePlane`]): one bi-level
//!   search per distinct hardware target; replicas share the searched
//!   mode ladder and differentiate by governor rotation.
//! - **Router** ([`RouterSummary`]): a pure, single-threaded admission
//!   pass routing every arrival by SLO class, estimated
//!   latency/energy cost, and modeled device health, composing with
//!   each unit's own brownout ladder.
//! - **Units** ([`DeviceHealthReport`], [`DeviceSummary`]): each
//!   device runs as one supervised executor job; crashes respawn with
//!   seq-preserving re-dispatch, exhausted budgets dead-letter the
//!   unit, and periodic health samples condense per unit.
//! - **Engine** ([`FleetEngine`] → [`FleetRun`] / [`FleetReport`]):
//!   schedules single-threaded, executes under the supervisor, folds
//!   in device order.
//! - **Reconfiguration** ([`ReconfigConfig`] → [`ReconfigSummary`]):
//!   with `FleetConfig::reconfigure` on, a hysteresis controller reads
//!   per-device epoch pressure (SLO violations, thermal caps, battery
//!   state-of-charge under the drift [`hadas_runtime::Scenario`]) and
//!   slides each device's operating window along the full searched
//!   Pareto front via zero-drop snapshot swaps
//!   ([`hadas_serve::EngineSnapshot`]); substrate swap failures roll
//!   back onto the old window from the same snapshot.
//!
//! Determinism contract: the serialized [`FleetReport`] is
//! byte-identical across fleet worker counts and byte-identical to the
//! fault-free run under injected unit crashes whenever zero units
//! dead-letter; supervision effort stays out-of-band in
//! [`FleetRun::telemetry`].

mod config;
mod engine;
mod health;
mod reconfig;
mod report;
mod router;
mod spec;
mod unit;

pub use config::{FleetConfig, GOVERNOR_ROTATION};
pub use engine::{build_planes, DevicePlane, FleetEngine, FleetRun};
pub use health::{
    judge, DetectionConfig, DetectionSummary, EpochEvidence, HealthMachine, HealthPolicy,
    HealthState, HealthTransition, Verdict,
};
pub use reconfig::{
    decide_anchor, AnchorDecision, EpochPressure, ReconfigConfig, ReconfigSummary, RECONFIG_WINDOW,
};
pub use report::{FleetReport, FLEET_REPORT_SCHEMA};
pub use router::{DeviceEstimate, LaneState, RouterSummary};
pub use spec::{canonical_spec, parse_device_spec};
pub use unit::{DeviceHealthReport, DeviceSummary};
