//! The global fleet router: a pure, single-threaded admission pass over
//! the fleet-wide arrival stream in virtual time.
//!
//! For every arrival the router models each device's health — a backlog
//! of estimated finish times drained as the clock advances, mapped onto
//! the brownout ladder's depth thresholds — and admits the request to
//! the cheapest *admissible* device by estimated completion plus an
//! energy-weighted cost, restricted to deadline-feasible devices for
//! interactive traffic whenever any exists. Requests no device admits
//! are fleet-rejected per class.
//!
//! Determinism contract: routing consults only modeled state (estimated
//! costs, modeled depths) — never the chaos plan and never execution
//! outcomes — so the decision sequence is a pure function of
//! `(config, device estimates, arrival stream)` and is byte-identical
//! across fleet worker counts and under recovered unit crashes. The
//! modeled per-device admission composes with each device's own
//! brownout ladder, which still runs downstream on the real backlog.

use crate::FleetConfig;
use hadas_serve::{BrownoutConfig, Request, SloClass};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What the gray-failure detector lets the router send to one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneState {
    /// Normal competition for every arrival.
    Open,
    /// Excluded from normal competition; receives only a bounded bulk
    /// probe trickle so recovery evidence keeps flowing
    /// (`Probation`/`Recovering` devices).
    ProbeOnly,
    /// No dispatches at all (`Quarantined` devices).
    Closed,
}

/// The router's modeled per-request cost of one device: the mode-0
/// (most accurate) service estimate at nominal difficulty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceEstimate {
    /// Estimated per-request service time (seconds).
    pub service_s: f64,
    /// Estimated per-request energy (joules).
    pub energy_j: f64,
}

/// Serialized routing accounting of one fleet run: the router-decision
/// histogram (assignments per device) and per-class admission counters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RouterSummary {
    /// The energy weight the decisions were scored under.
    pub energy_weight: f64,
    /// Requests assigned per device (the decision histogram; index =
    /// device index).
    pub assigned: Vec<usize>,
    /// Interactive requests routed to a device.
    pub interactive_routed: usize,
    /// Bulk requests routed to a device.
    pub bulk_routed: usize,
    /// Interactive requests no device admitted (fleet-rejected).
    pub interactive_rejected: usize,
    /// Bulk requests no device admitted (fleet-rejected).
    pub bulk_rejected: usize,
    /// Interactive requests routed even though no admissible device
    /// could model a deadline-feasible finish (best-effort placements).
    pub slo_infeasible_routed: usize,
    /// Bulk requests placed on probe-only lanes (the recovery trickle
    /// that keeps evidence flowing to `Probation`/`Recovering` devices).
    pub probe_assignments: usize,
}

impl RouterSummary {
    /// Total requests routed to some device.
    pub fn routed(&self) -> usize {
        self.interactive_routed + self.bulk_routed
    }

    /// Total requests no device admitted.
    pub fn rejected(&self) -> usize {
        self.interactive_rejected + self.bulk_rejected
    }
}

/// The outcome of routing one arrival stream: per-device substreams (in
/// arrival order, original ids and times preserved) plus the accounting.
#[derive(Debug, Clone)]
pub(crate) struct RoutingOutcome {
    /// `substreams[d]` = the requests admitted to device `d`.
    pub substreams: Vec<Vec<Request>>,
    /// The serialized routing accounting.
    pub summary: RouterSummary,
}

/// Modeled per-device admission state: the backlog of estimated finish
/// times, drained as virtual time advances.
struct ModeledDevice {
    backlog: VecDeque<f64>,
    free_s: f64,
}

/// A persistent fleet router: the modeled per-device backlogs survive
/// across [`Router::route_slice`] calls, so the reconfiguration plane
/// can route one epoch at a time under *refreshed* device estimates
/// while the modeled state stays continuous — routing the whole stream
/// in one slice with fixed estimates is exactly [`route`].
pub(crate) struct Router {
    energy_weight: f64,
    ladder: BrownoutConfig,
    probe_quota: usize,
    modeled: Vec<ModeledDevice>,
    summary: RouterSummary,
}

impl Router {
    /// A fresh router over `n` idle modeled devices.
    pub(crate) fn new(config: &FleetConfig, n: usize) -> Self {
        Router {
            energy_weight: config.energy_weight,
            ladder: BrownoutConfig::default(),
            probe_quota: config.detection.probe_quota,
            modeled: (0..n)
                .map(|_| ModeledDevice { backlog: VecDeque::new(), free_s: 0.0 })
                .collect(),
            summary: RouterSummary {
                energy_weight: config.energy_weight,
                assigned: vec![0; n],
                ..RouterSummary::default()
            },
        }
    }

    /// Routes one contiguous slice of the arrival stream (sorted by
    /// time, later than every slice routed before) under the current
    /// estimates and per-device lane states, returning the per-device
    /// substreams of this slice. `Closed` lanes receive nothing;
    /// `ProbeOnly` lanes sit out the normal competition but bulk
    /// arrivals are steered onto them first, up to `probe_quota` per
    /// lane per slice, so suspect devices keep producing recovery
    /// evidence. See the module docs for the admission and scoring
    /// rules.
    pub(crate) fn route_slice(
        &mut self,
        estimates: &[DeviceEstimate],
        lanes: &[LaneState],
        requests: &[Request],
    ) -> Vec<Vec<Request>> {
        let n = self.modeled.len();
        debug_assert_eq!(estimates.len(), n);
        debug_assert_eq!(lanes.len(), n);
        let mut substreams: Vec<Vec<Request>> = (0..n).map(|_| Vec::new()).collect();
        let mut probe_used = vec![0usize; n];
        for &r in requests {
            let now = r.time_s;
            for m in &mut self.modeled {
                while m.backlog.front().is_some_and(|&f| f <= now) {
                    m.backlog.pop_front();
                }
            }
            // Probe trickle: bulk arrivals are preferred onto admissible
            // probe-only lanes with quota remaining, bypassing the open
            // competition — the only way Probation/Recovering devices
            // see traffic at all.
            if r.class == SloClass::Bulk {
                let mut best_probe: Option<(usize, f64, f64)> = None;
                for (d, (m, est)) in self.modeled.iter().zip(estimates).enumerate() {
                    if lanes[d] != LaneState::ProbeOnly || probe_used[d] >= self.probe_quota {
                        continue;
                    }
                    let depth = m.backlog.len();
                    if depth >= self.ladder.reject_depth || depth >= self.ladder.shed_bulk_depth {
                        continue;
                    }
                    let finish = m.free_s.max(now) + est.service_s;
                    let score = (finish - now) + self.energy_weight * est.energy_j;
                    if best_probe.as_ref().is_none_or(|&(_, s, _)| score < s) {
                        best_probe = Some((d, score, finish));
                    }
                }
                if let Some((d, _, finish)) = best_probe {
                    probe_used[d] += 1;
                    self.summary.probe_assignments += 1;
                    self.summary.bulk_routed += 1;
                    self.summary.assigned[d] += 1;
                    self.modeled[d].backlog.push_back(finish);
                    self.modeled[d].free_s = finish;
                    substreams[d].push(r);
                    continue;
                }
            }
            // Admissible = the lane is open and the modeled brownout
            // tier of the device's depth admits this class.
            let mut best: Option<(usize, f64, f64)> = None; // (device, score, finish)
            let mut best_feasible: Option<(usize, f64, f64)> = None;
            for (d, (m, est)) in self.modeled.iter().zip(estimates).enumerate() {
                if lanes[d] != LaneState::Open {
                    continue;
                }
                let depth = m.backlog.len();
                if depth >= self.ladder.reject_depth {
                    continue;
                }
                if r.class == SloClass::Bulk && depth >= self.ladder.shed_bulk_depth {
                    continue;
                }
                let finish = m.free_s.max(now) + est.service_s;
                let score = (finish - now) + self.energy_weight * est.energy_j;
                if best.as_ref().is_none_or(|&(_, s, _)| score < s) {
                    best = Some((d, score, finish));
                }
                if finish <= r.deadline_s + 1e-12
                    && best_feasible.as_ref().is_none_or(|&(_, s, _)| score < s)
                {
                    best_feasible = Some((d, score, finish));
                }
            }
            let choice = if r.class == SloClass::Interactive {
                match best_feasible {
                    Some(c) => Some(c),
                    None => {
                        if best.is_some() {
                            self.summary.slo_infeasible_routed += 1;
                        }
                        best
                    }
                }
            } else {
                best
            };
            match choice {
                Some((d, _, finish)) => {
                    match r.class {
                        SloClass::Interactive => self.summary.interactive_routed += 1,
                        SloClass::Bulk => self.summary.bulk_routed += 1,
                    }
                    self.summary.assigned[d] += 1;
                    self.modeled[d].backlog.push_back(finish);
                    self.modeled[d].free_s = finish;
                    substreams[d].push(r);
                }
                None => match r.class {
                    SloClass::Interactive => self.summary.interactive_rejected += 1,
                    SloClass::Bulk => self.summary.bulk_rejected += 1,
                },
            }
        }
        substreams
    }

    /// Takes back requests previously routed to `device` (a quarantine
    /// drain): the decision histogram and per-class routed counters are
    /// decremented so the drained requests can re-enter routing without
    /// double counting, and the device's modeled backlog is reset — a
    /// quarantined device starts its probation from a clean model.
    pub(crate) fn unassign(&mut self, device: usize, requests: &[Request]) {
        self.summary.assigned[device] =
            self.summary.assigned[device].saturating_sub(requests.len());
        for r in requests {
            match r.class {
                SloClass::Interactive => {
                    self.summary.interactive_routed =
                        self.summary.interactive_routed.saturating_sub(1);
                }
                SloClass::Bulk => {
                    self.summary.bulk_routed = self.summary.bulk_routed.saturating_sub(1);
                }
            }
        }
        self.modeled[device].backlog.clear();
        self.modeled[device].free_s = 0.0;
    }

    /// The accumulated routing accounting.
    #[cfg(test)]
    pub(crate) fn summary(&self) -> &RouterSummary {
        &self.summary
    }

    /// Closes the router, yielding the accumulated accounting.
    pub(crate) fn into_summary(self) -> RouterSummary {
        self.summary
    }
}

/// Routes the whole fleet-wide arrival stream over the devices in one
/// pass under fixed estimates (the pinned-mode fleet path).
pub(crate) fn route(
    config: &FleetConfig,
    estimates: &[DeviceEstimate],
    requests: Vec<Request>,
) -> RoutingOutcome {
    let mut router = Router::new(config, estimates.len());
    let lanes = vec![LaneState::Open; estimates.len()];
    let substreams = router.route_slice(estimates, &lanes, &requests);
    RoutingOutcome { substreams, summary: router.into_summary() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadas_hw::HwTarget;

    fn req(id: usize, t: f64, class: SloClass, deadline: f64) -> Request {
        Request { id, time_s: t, difficulty: 0.5, class, deadline_s: deadline }
    }

    fn cfg(n: usize) -> FleetConfig {
        FleetConfig {
            devices: vec![HwTarget::Tx2PascalGpu; n],
            energy_weight: 0.0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn routing_is_deterministic_and_conserves_requests() {
        let est = vec![
            DeviceEstimate { service_s: 0.01, energy_j: 0.1 },
            DeviceEstimate { service_s: 0.02, energy_j: 0.05 },
        ];
        let reqs: Vec<Request> = (0..200)
            .map(|i| {
                let class = if i % 3 == 0 { SloClass::Bulk } else { SloClass::Interactive };
                req(i, i as f64 * 0.004, class, i as f64 * 0.004 + 0.12)
            })
            .collect();
        let a = route(&cfg(2), &est, reqs.clone());
        let b = route(&cfg(2), &est, reqs.clone());
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.substreams, b.substreams);
        assert_eq!(a.summary.routed() + a.summary.rejected(), reqs.len());
        let assigned: usize = a.summary.assigned.iter().sum();
        assert_eq!(assigned, a.summary.routed());
        for s in &a.substreams {
            assert!(s.windows(2).all(|w| w[0].time_s <= w[1].time_s), "arrival order preserved");
        }
    }

    #[test]
    fn slice_routing_matches_one_pass_routing() {
        let est = vec![
            DeviceEstimate { service_s: 0.01, energy_j: 0.1 },
            DeviceEstimate { service_s: 0.02, energy_j: 0.05 },
        ];
        let reqs: Vec<Request> = (0..300)
            .map(|i| {
                let class = if i % 3 == 0 { SloClass::Bulk } else { SloClass::Interactive };
                req(i, i as f64 * 0.003, class, i as f64 * 0.003 + 0.1)
            })
            .collect();
        let whole = route(&cfg(2), &est, reqs.clone());
        let mut router = Router::new(&cfg(2), 2);
        let open = vec![LaneState::Open; 2];
        let mut merged = router.route_slice(&est, &open, &reqs[..100]);
        assert_eq!(router.summary().routed() + router.summary().rejected(), 100);
        for (acc, later) in merged.iter_mut().zip(router.route_slice(&est, &open, &reqs[100..])) {
            acc.extend(later);
        }
        assert_eq!(merged, whole.substreams, "modeled backlogs persist across slices");
        assert_eq!(router.into_summary(), whole.summary);
    }

    #[test]
    fn faster_device_wins_when_idle_and_ties_break_by_index() {
        let est = vec![
            DeviceEstimate { service_s: 0.05, energy_j: 0.0 },
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
        ];
        let out = route(&cfg(2), &est, vec![req(0, 0.0, SloClass::Interactive, 1.0)]);
        assert_eq!(out.summary.assigned, vec![0, 1], "the faster device wins");
        let tied = vec![
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
        ];
        let out = route(&cfg(2), &tied, vec![req(0, 0.0, SloClass::Interactive, 1.0)]);
        assert_eq!(out.summary.assigned, vec![1, 0], "ties break toward the lowest index");
    }

    #[test]
    fn energy_weight_steers_away_from_hot_devices() {
        let est = vec![
            DeviceEstimate { service_s: 0.010, energy_j: 5.0 },
            DeviceEstimate { service_s: 0.011, energy_j: 0.1 },
        ];
        let latency_only = route(&cfg(2), &est, vec![req(0, 0.0, SloClass::Interactive, 1.0)]);
        assert_eq!(latency_only.summary.assigned, vec![1, 0]);
        let mut c = cfg(2);
        c.energy_weight = 0.01;
        let weighted = route(&c, &est, vec![req(0, 0.0, SloClass::Interactive, 1.0)]);
        assert_eq!(weighted.summary.assigned, vec![0, 1], "joules now outweigh the millisecond");
    }

    #[test]
    fn saturated_devices_shed_bulk_then_reject_everything() {
        let est = vec![DeviceEstimate { service_s: 10.0, energy_j: 0.0 }];
        let ladder = BrownoutConfig::default();
        // Everything arrives at t=0 against a 10 s service estimate, so
        // the modeled backlog only grows.
        let reqs: Vec<Request> = (0..3 * ladder.reject_depth)
            .map(|i| {
                let class = if i % 2 == 0 { SloClass::Bulk } else { SloClass::Interactive };
                req(i, 0.0, class, 0.2)
            })
            .collect();
        let out = route(&cfg(1), &est, reqs);
        assert!(out.summary.bulk_rejected > 0, "bulk is turned away at the shed tier");
        assert!(out.summary.interactive_rejected > 0, "reject tier turns everything away");
        assert_eq!(out.summary.assigned[0], ladder.reject_depth, "depth caps at the reject rung");
        assert!(
            out.summary.slo_infeasible_routed > 0,
            "deep interactive placements are best-effort"
        );
    }

    #[test]
    fn closed_lanes_receive_nothing_and_probe_lanes_only_bulk_under_quota() {
        let est = vec![
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
        ];
        let reqs: Vec<Request> = (0..60)
            .map(|i| {
                let class = if i % 2 == 0 { SloClass::Bulk } else { SloClass::Interactive };
                req(i, i as f64 * 0.05, class, i as f64 * 0.05 + 1.0)
            })
            .collect();
        let mut router = Router::new(&cfg(3), 3);
        let lanes = vec![LaneState::Open, LaneState::ProbeOnly, LaneState::Closed];
        let subs = router.route_slice(&est, &lanes, &reqs);
        let quota = cfg(3).detection.probe_quota;
        assert!(subs[2].is_empty(), "closed lanes receive nothing");
        assert_eq!(subs[1].len(), quota, "probe lanes cap at the per-slice quota");
        assert!(
            subs[1].iter().all(|r| r.class == SloClass::Bulk),
            "probe traffic is bulk-only; interactive never risks a suspect device"
        );
        let summary = router.summary();
        assert_eq!(summary.probe_assignments, quota);
        assert_eq!(summary.routed() + summary.rejected(), reqs.len());
        assert_eq!(summary.assigned.iter().sum::<usize>(), summary.routed());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Builds a time-ordered stream from (gap, bulk?) pairs.
        fn stream(specs: &[(f64, bool)]) -> Vec<Request> {
            let mut t = 0.0;
            specs
                .iter()
                .enumerate()
                .map(|(id, &(gap, bulk))| {
                    t += gap;
                    let class = if bulk { SloClass::Bulk } else { SloClass::Interactive };
                    req(id, t, class, t + if bulk { 1.2 } else { 0.12 })
                })
                .collect()
        }

        fn lanes_strategy(n: usize) -> impl Strategy<Value = Vec<LaneState>> {
            proptest::collection::vec(
                prop_oneof![
                    Just(LaneState::Open),
                    Just(LaneState::ProbeOnly),
                    Just(LaneState::Closed)
                ],
                n..=n,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Quarantined lanes never see traffic and probe lanes only
            /// the bounded bulk trickle — for ANY arrival stream and ANY
            /// per-slice lane assignment, across slice boundaries, with
            /// conservation intact throughout.
            #[test]
            fn closed_gets_nothing_probe_gets_only_bounded_bulk(
                specs in proptest::collection::vec((0.0f64..0.05, any::<bool>()), 1..80),
                lanes_a in lanes_strategy(3),
                lanes_b in lanes_strategy(3),
                cut in 0usize..80,
            ) {
                let est = vec![
                    DeviceEstimate { service_s: 0.01, energy_j: 0.1 },
                    DeviceEstimate { service_s: 0.02, energy_j: 0.05 },
                    DeviceEstimate { service_s: 0.015, energy_j: 0.2 },
                ];
                let reqs = stream(&specs);
                let cut = cut.min(reqs.len());
                let config = cfg(3);
                let quota = config.detection.probe_quota;
                let mut router = Router::new(&config, 3);
                let early = router.route_slice(&est, &lanes_a, &reqs[..cut]);
                let late = router.route_slice(&est, &lanes_b, &reqs[cut..]);
                for (lanes, subs) in [(&lanes_a, &early), (&lanes_b, &late)] {
                    for (d, slice) in subs.iter().enumerate() {
                        match lanes[d] {
                            LaneState::Closed => prop_assert!(
                                slice.is_empty(),
                                "closed lane {d} received {} request(s)",
                                slice.len()
                            ),
                            LaneState::ProbeOnly => {
                                prop_assert!(
                                    slice.len() <= quota,
                                    "probe lane {d} exceeded its quota: {}",
                                    slice.len()
                                );
                                prop_assert!(
                                    slice.iter().all(|r| r.class == SloClass::Bulk),
                                    "probe lane {d} received interactive traffic"
                                );
                            }
                            LaneState::Open => {}
                        }
                    }
                }
                let s = router.into_summary();
                prop_assert!(s.routed() + s.rejected() == reqs.len(), "conservation");
                prop_assert_eq!(s.assigned.iter().sum::<usize>(), s.routed());
            }
        }
    }

    #[test]
    fn unassign_reverses_the_accounting_and_clears_the_model() {
        let est = vec![
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
            DeviceEstimate { service_s: 0.02, energy_j: 0.0 },
        ];
        let reqs: Vec<Request> = (0..40)
            .map(|i| {
                let class = if i % 3 == 0 { SloClass::Bulk } else { SloClass::Interactive };
                req(i, i as f64 * 0.002, class, i as f64 * 0.002 + 0.5)
            })
            .collect();
        let mut router = Router::new(&cfg(2), 2);
        let open = vec![LaneState::Open; 2];
        let subs = router.route_slice(&est, &open, &reqs);
        let drained = subs[0].clone();
        let before = router.summary().clone();
        router.unassign(0, &drained);
        let after = router.summary().clone();
        assert_eq!(after.assigned[0], 0, "the drained device's histogram is zeroed");
        assert_eq!(after.assigned[1], before.assigned[1], "other devices untouched");
        assert_eq!(after.routed(), before.routed() - drained.len());
        // Re-routing the drained requests with the device closed keeps
        // the fleet-wide conservation identity intact.
        let lanes = vec![LaneState::Closed, LaneState::Open];
        let re = router.route_slice(&est, &lanes, &drained);
        assert!(re[0].is_empty());
        let s = router.summary();
        assert_eq!(s.assigned.iter().sum::<usize>(), s.routed());
    }
}
