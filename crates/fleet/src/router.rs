//! The global fleet router: a pure, single-threaded admission pass over
//! the fleet-wide arrival stream in virtual time.
//!
//! For every arrival the router models each device's health — a backlog
//! of estimated finish times drained as the clock advances, mapped onto
//! the brownout ladder's depth thresholds — and admits the request to
//! the cheapest *admissible* device by estimated completion plus an
//! energy-weighted cost, restricted to deadline-feasible devices for
//! interactive traffic whenever any exists. Requests no device admits
//! are fleet-rejected per class.
//!
//! Determinism contract: routing consults only modeled state (estimated
//! costs, modeled depths) — never the chaos plan and never execution
//! outcomes — so the decision sequence is a pure function of
//! `(config, device estimates, arrival stream)` and is byte-identical
//! across fleet worker counts and under recovered unit crashes. The
//! modeled per-device admission composes with each device's own
//! brownout ladder, which still runs downstream on the real backlog.

use crate::FleetConfig;
use hadas_serve::{BrownoutConfig, Request, SloClass};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The router's modeled per-request cost of one device: the mode-0
/// (most accurate) service estimate at nominal difficulty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceEstimate {
    /// Estimated per-request service time (seconds).
    pub service_s: f64,
    /// Estimated per-request energy (joules).
    pub energy_j: f64,
}

/// Serialized routing accounting of one fleet run: the router-decision
/// histogram (assignments per device) and per-class admission counters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RouterSummary {
    /// The energy weight the decisions were scored under.
    pub energy_weight: f64,
    /// Requests assigned per device (the decision histogram; index =
    /// device index).
    pub assigned: Vec<usize>,
    /// Interactive requests routed to a device.
    pub interactive_routed: usize,
    /// Bulk requests routed to a device.
    pub bulk_routed: usize,
    /// Interactive requests no device admitted (fleet-rejected).
    pub interactive_rejected: usize,
    /// Bulk requests no device admitted (fleet-rejected).
    pub bulk_rejected: usize,
    /// Interactive requests routed even though no admissible device
    /// could model a deadline-feasible finish (best-effort placements).
    pub slo_infeasible_routed: usize,
}

impl RouterSummary {
    /// Total requests routed to some device.
    pub fn routed(&self) -> usize {
        self.interactive_routed + self.bulk_routed
    }

    /// Total requests no device admitted.
    pub fn rejected(&self) -> usize {
        self.interactive_rejected + self.bulk_rejected
    }
}

/// The outcome of routing one arrival stream: per-device substreams (in
/// arrival order, original ids and times preserved) plus the accounting.
#[derive(Debug, Clone)]
pub(crate) struct RoutingOutcome {
    /// `substreams[d]` = the requests admitted to device `d`.
    pub substreams: Vec<Vec<Request>>,
    /// The serialized routing accounting.
    pub summary: RouterSummary,
}

/// Modeled per-device admission state: the backlog of estimated finish
/// times, drained as virtual time advances.
struct ModeledDevice {
    backlog: VecDeque<f64>,
    free_s: f64,
}

/// A persistent fleet router: the modeled per-device backlogs survive
/// across [`Router::route_slice`] calls, so the reconfiguration plane
/// can route one epoch at a time under *refreshed* device estimates
/// while the modeled state stays continuous — routing the whole stream
/// in one slice with fixed estimates is exactly [`route`].
pub(crate) struct Router {
    energy_weight: f64,
    ladder: BrownoutConfig,
    modeled: Vec<ModeledDevice>,
    summary: RouterSummary,
}

impl Router {
    /// A fresh router over `n` idle modeled devices.
    pub(crate) fn new(config: &FleetConfig, n: usize) -> Self {
        Router {
            energy_weight: config.energy_weight,
            ladder: BrownoutConfig::default(),
            modeled: (0..n)
                .map(|_| ModeledDevice { backlog: VecDeque::new(), free_s: 0.0 })
                .collect(),
            summary: RouterSummary {
                energy_weight: config.energy_weight,
                assigned: vec![0; n],
                ..RouterSummary::default()
            },
        }
    }

    /// Routes one contiguous slice of the arrival stream (sorted by
    /// time, later than every slice routed before) under the current
    /// estimates, returning the per-device substreams of this slice.
    /// See the module docs for the admission and scoring rules.
    pub(crate) fn route_slice(
        &mut self,
        estimates: &[DeviceEstimate],
        requests: &[Request],
    ) -> Vec<Vec<Request>> {
        let n = self.modeled.len();
        debug_assert_eq!(estimates.len(), n);
        let mut substreams: Vec<Vec<Request>> = (0..n).map(|_| Vec::new()).collect();
        for &r in requests {
            let now = r.time_s;
            for m in &mut self.modeled {
                while m.backlog.front().is_some_and(|&f| f <= now) {
                    m.backlog.pop_front();
                }
            }
            // Admissible = the modeled brownout tier of the device's
            // depth admits this class.
            let mut best: Option<(usize, f64, f64)> = None; // (device, score, finish)
            let mut best_feasible: Option<(usize, f64, f64)> = None;
            for (d, (m, est)) in self.modeled.iter().zip(estimates).enumerate() {
                let depth = m.backlog.len();
                if depth >= self.ladder.reject_depth {
                    continue;
                }
                if r.class == SloClass::Bulk && depth >= self.ladder.shed_bulk_depth {
                    continue;
                }
                let finish = m.free_s.max(now) + est.service_s;
                let score = (finish - now) + self.energy_weight * est.energy_j;
                if best.as_ref().is_none_or(|&(_, s, _)| score < s) {
                    best = Some((d, score, finish));
                }
                if finish <= r.deadline_s + 1e-12
                    && best_feasible.as_ref().is_none_or(|&(_, s, _)| score < s)
                {
                    best_feasible = Some((d, score, finish));
                }
            }
            let choice = if r.class == SloClass::Interactive {
                match best_feasible {
                    Some(c) => Some(c),
                    None => {
                        if best.is_some() {
                            self.summary.slo_infeasible_routed += 1;
                        }
                        best
                    }
                }
            } else {
                best
            };
            match choice {
                Some((d, _, finish)) => {
                    match r.class {
                        SloClass::Interactive => self.summary.interactive_routed += 1,
                        SloClass::Bulk => self.summary.bulk_routed += 1,
                    }
                    self.summary.assigned[d] += 1;
                    self.modeled[d].backlog.push_back(finish);
                    self.modeled[d].free_s = finish;
                    substreams[d].push(r);
                }
                None => match r.class {
                    SloClass::Interactive => self.summary.interactive_rejected += 1,
                    SloClass::Bulk => self.summary.bulk_rejected += 1,
                },
            }
        }
        substreams
    }

    /// The accumulated routing accounting.
    #[cfg(test)]
    pub(crate) fn summary(&self) -> &RouterSummary {
        &self.summary
    }

    /// Closes the router, yielding the accumulated accounting.
    pub(crate) fn into_summary(self) -> RouterSummary {
        self.summary
    }
}

/// Routes the whole fleet-wide arrival stream over the devices in one
/// pass under fixed estimates (the pinned-mode fleet path).
pub(crate) fn route(
    config: &FleetConfig,
    estimates: &[DeviceEstimate],
    requests: Vec<Request>,
) -> RoutingOutcome {
    let mut router = Router::new(config, estimates.len());
    let substreams = router.route_slice(estimates, &requests);
    RoutingOutcome { substreams, summary: router.into_summary() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadas_hw::HwTarget;

    fn req(id: usize, t: f64, class: SloClass, deadline: f64) -> Request {
        Request { id, time_s: t, difficulty: 0.5, class, deadline_s: deadline }
    }

    fn cfg(n: usize) -> FleetConfig {
        FleetConfig {
            devices: vec![HwTarget::Tx2PascalGpu; n],
            energy_weight: 0.0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn routing_is_deterministic_and_conserves_requests() {
        let est = vec![
            DeviceEstimate { service_s: 0.01, energy_j: 0.1 },
            DeviceEstimate { service_s: 0.02, energy_j: 0.05 },
        ];
        let reqs: Vec<Request> = (0..200)
            .map(|i| {
                let class = if i % 3 == 0 { SloClass::Bulk } else { SloClass::Interactive };
                req(i, i as f64 * 0.004, class, i as f64 * 0.004 + 0.12)
            })
            .collect();
        let a = route(&cfg(2), &est, reqs.clone());
        let b = route(&cfg(2), &est, reqs.clone());
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.substreams, b.substreams);
        assert_eq!(a.summary.routed() + a.summary.rejected(), reqs.len());
        let assigned: usize = a.summary.assigned.iter().sum();
        assert_eq!(assigned, a.summary.routed());
        for s in &a.substreams {
            assert!(s.windows(2).all(|w| w[0].time_s <= w[1].time_s), "arrival order preserved");
        }
    }

    #[test]
    fn slice_routing_matches_one_pass_routing() {
        let est = vec![
            DeviceEstimate { service_s: 0.01, energy_j: 0.1 },
            DeviceEstimate { service_s: 0.02, energy_j: 0.05 },
        ];
        let reqs: Vec<Request> = (0..300)
            .map(|i| {
                let class = if i % 3 == 0 { SloClass::Bulk } else { SloClass::Interactive };
                req(i, i as f64 * 0.003, class, i as f64 * 0.003 + 0.1)
            })
            .collect();
        let whole = route(&cfg(2), &est, reqs.clone());
        let mut router = Router::new(&cfg(2), 2);
        let mut merged = router.route_slice(&est, &reqs[..100]);
        assert_eq!(router.summary().routed() + router.summary().rejected(), 100);
        for (acc, later) in merged.iter_mut().zip(router.route_slice(&est, &reqs[100..])) {
            acc.extend(later);
        }
        assert_eq!(merged, whole.substreams, "modeled backlogs persist across slices");
        assert_eq!(router.into_summary(), whole.summary);
    }

    #[test]
    fn faster_device_wins_when_idle_and_ties_break_by_index() {
        let est = vec![
            DeviceEstimate { service_s: 0.05, energy_j: 0.0 },
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
        ];
        let out = route(&cfg(2), &est, vec![req(0, 0.0, SloClass::Interactive, 1.0)]);
        assert_eq!(out.summary.assigned, vec![0, 1], "the faster device wins");
        let tied = vec![
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
            DeviceEstimate { service_s: 0.01, energy_j: 0.0 },
        ];
        let out = route(&cfg(2), &tied, vec![req(0, 0.0, SloClass::Interactive, 1.0)]);
        assert_eq!(out.summary.assigned, vec![1, 0], "ties break toward the lowest index");
    }

    #[test]
    fn energy_weight_steers_away_from_hot_devices() {
        let est = vec![
            DeviceEstimate { service_s: 0.010, energy_j: 5.0 },
            DeviceEstimate { service_s: 0.011, energy_j: 0.1 },
        ];
        let latency_only = route(&cfg(2), &est, vec![req(0, 0.0, SloClass::Interactive, 1.0)]);
        assert_eq!(latency_only.summary.assigned, vec![1, 0]);
        let mut c = cfg(2);
        c.energy_weight = 0.01;
        let weighted = route(&c, &est, vec![req(0, 0.0, SloClass::Interactive, 1.0)]);
        assert_eq!(weighted.summary.assigned, vec![0, 1], "joules now outweigh the millisecond");
    }

    #[test]
    fn saturated_devices_shed_bulk_then_reject_everything() {
        let est = vec![DeviceEstimate { service_s: 10.0, energy_j: 0.0 }];
        let ladder = BrownoutConfig::default();
        // Everything arrives at t=0 against a 10 s service estimate, so
        // the modeled backlog only grows.
        let reqs: Vec<Request> = (0..3 * ladder.reject_depth)
            .map(|i| {
                let class = if i % 2 == 0 { SloClass::Bulk } else { SloClass::Interactive };
                req(i, 0.0, class, 0.2)
            })
            .collect();
        let out = route(&cfg(1), &est, reqs);
        assert!(out.summary.bulk_rejected > 0, "bulk is turned away at the shed tier");
        assert!(out.summary.interactive_rejected > 0, "reject tier turns everything away");
        assert_eq!(out.summary.assigned[0], ladder.reject_depth, "depth caps at the reject rung");
        assert!(
            out.summary.slo_infeasible_routed > 0,
            "deep interactive placements are best-effort"
        );
    }
}
