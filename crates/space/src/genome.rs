use serde::{Deserialize, Serialize};

/// A flat vector of per-variable choice indices encoding one backbone.
///
/// The genome is the unit the evolutionary engines mutate and cross over;
/// it is meaningless without the [`crate::SearchSpace`] that defines each
/// gene's cardinality. Layout: `[res, stem_w, head_w, (d, w, k, er) × stages]`.
///
/// ```
/// use hadas_space::{Genome, SearchSpace};
///
/// let space = SearchSpace::attentive_nas();
/// let g = Genome::from_genes(vec![0; space.genome_len()]);
/// assert!(space.validate(&g).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Genome {
    genes: Vec<usize>,
}

impl Genome {
    /// Wraps a vector of choice indices.
    pub fn from_genes(genes: Vec<usize>) -> Self {
        Genome { genes }
    }

    /// The choice indices.
    pub fn genes(&self) -> &[usize] {
        &self.genes
    }

    /// Mutable access for evolutionary operators.
    pub fn genes_mut(&mut self) -> &mut [usize] {
        &mut self.genes
    }

    /// Number of genes.
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether the genome has no genes.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Hamming distance to another genome of equal length (gene positions
    /// that differ). Used as a diversity measure during selection.
    ///
    /// # Panics
    ///
    /// Panics if the genomes have different lengths — comparing genomes
    /// from different spaces is a programming error.
    pub fn hamming(&self, other: &Genome) -> usize {
        assert_eq!(self.genes.len(), other.genes.len(), "genomes from different spaces");
        self.genes.iter().zip(other.genes.iter()).filter(|(a, b)| a != b).count()
    }
}

impl From<Vec<usize>> for Genome {
    fn from(genes: Vec<usize>) -> Self {
        Genome::from_genes(genes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_counts_differing_positions() {
        let a = Genome::from_genes(vec![0, 1, 2, 3]);
        let b = Genome::from_genes(vec![0, 1, 0, 0]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    #[should_panic(expected = "different spaces")]
    fn hamming_rejects_length_mismatch() {
        let a = Genome::from_genes(vec![0, 1]);
        let b = Genome::from_genes(vec![0]);
        let _ = a.hamming(&b);
    }
}
