use crate::{Genome, SpaceError, Subnet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The searchable choices for one MBConv stage ("block" in the paper's
/// Table II terminology).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Depth choices: how many MBConv layers the stage may contain.
    pub depths: Vec<usize>,
    /// Output width (channel) choices.
    pub widths: Vec<usize>,
    /// Depthwise kernel size choices.
    pub kernels: Vec<usize>,
    /// Expansion ratio choices for the inverted bottleneck.
    pub expands: Vec<usize>,
    /// Spatial stride of the stage's first layer (1 or 2).
    pub stride: usize,
}

impl StageSpec {
    /// Number of distinct configurations this stage admits.
    pub fn cardinality(&self) -> f64 {
        (self.depths.len() * self.widths.len() * self.kernels.len() * self.expands.len()) as f64
    }

    fn validate(&self, stage: usize) -> Result<(), SpaceError> {
        if self.depths.is_empty() {
            return Err(SpaceError::EmptyChoice { stage, variable: "depth" });
        }
        if self.widths.is_empty() {
            return Err(SpaceError::EmptyChoice { stage, variable: "width" });
        }
        if self.kernels.is_empty() {
            return Err(SpaceError::EmptyChoice { stage, variable: "kernel" });
        }
        if self.expands.is_empty() {
            return Err(SpaceError::EmptyChoice { stage, variable: "expand" });
        }
        Ok(())
    }
}

/// Genes per stage: depth, width, kernel, expansion ratio.
pub(crate) const GENES_PER_STAGE: usize = 4;
/// Leading global genes: input resolution, stem width, head width.
pub(crate) const GLOBAL_GENES: usize = 3;

/// The complete backbone search space **B**: global choices (resolution,
/// stem width, head width) plus a [`StageSpec`] per MBConv stage.
///
/// Genomes over this space are flat vectors of choice indices laid out as
/// `[res, stem_w, head_w, (d, w, k, er) × stages]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    resolutions: Vec<usize>,
    stem_widths: Vec<usize>,
    head_widths: Vec<usize>,
    stages: Vec<StageSpec>,
}

impl SearchSpace {
    /// Builds a search space from explicit choice lists.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::EmptyChoice`] if any choice list is empty.
    pub fn new(
        resolutions: Vec<usize>,
        stem_widths: Vec<usize>,
        head_widths: Vec<usize>,
        stages: Vec<StageSpec>,
    ) -> Result<Self, SpaceError> {
        if resolutions.is_empty() {
            return Err(SpaceError::EmptyChoice { stage: 0, variable: "resolution" });
        }
        if stem_widths.is_empty() {
            return Err(SpaceError::EmptyChoice { stage: 0, variable: "stem width" });
        }
        if head_widths.is_empty() {
            return Err(SpaceError::EmptyChoice { stage: 0, variable: "head width" });
        }
        for (i, s) in stages.iter().enumerate() {
            s.validate(i)?;
        }
        Ok(SearchSpace { resolutions, stem_widths, head_widths, stages })
    }

    /// The AttentiveNAS-style space used throughout the paper (Table II):
    /// 7 MBConv stages, resolutions {192, 224, 256, 288}, depths within
    /// {1..8}, 16 distinct width values in [16, 1984], kernels {3, 5},
    /// expansion ratios within {1, 4, 5, 6}. Total cardinality exceeds the
    /// paper's quoted 2.94 × 10¹¹.
    pub fn attentive_nas() -> Self {
        let stage =
            |depths: &[usize], widths: &[usize], expands: &[usize], stride: usize| StageSpec {
                depths: depths.to_vec(),
                widths: widths.to_vec(),
                kernels: vec![3, 5],
                expands: expands.to_vec(),
                stride,
            };
        SearchSpace {
            resolutions: vec![192, 224, 256, 288],
            stem_widths: vec![16, 24],
            head_widths: vec![1792, 1984],
            stages: vec![
                stage(&[1, 2], &[16, 24], &[1], 1),
                stage(&[3, 4, 5], &[24, 32], &[4, 5, 6], 2),
                stage(&[3, 4, 5, 6], &[32, 40], &[4, 5, 6], 2),
                stage(&[3, 4, 5, 6], &[64, 72], &[4, 5, 6], 2),
                stage(&[3, 4, 5, 6, 7, 8], &[112, 120, 128], &[4, 5, 6], 1),
                stage(&[3, 4, 5, 6, 7, 8], &[192, 200, 208, 216], &[6], 2),
                stage(&[1, 2], &[216, 224], &[6], 1),
            ],
        }
    }

    /// Input resolution choices.
    pub fn resolutions(&self) -> &[usize] {
        &self.resolutions
    }

    /// Stem width choices.
    pub fn stem_widths(&self) -> &[usize] {
        &self.stem_widths
    }

    /// Head width choices.
    pub fn head_widths(&self) -> &[usize] {
        &self.head_widths
    }

    /// The per-stage specifications.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Number of genes in a genome over this space.
    pub fn genome_len(&self) -> usize {
        GLOBAL_GENES + GENES_PER_STAGE * self.stages.len()
    }

    /// Cardinality (number of choices) of each gene position, in genome
    /// order — the interface evolutionary operators mutate against.
    pub fn gene_cardinalities(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.genome_len());
        out.push(self.resolutions.len());
        out.push(self.stem_widths.len());
        out.push(self.head_widths.len());
        for s in &self.stages {
            out.push(s.depths.len());
            out.push(s.widths.len());
            out.push(s.kernels.len());
            out.push(s.expands.len());
        }
        out
    }

    /// Total number of distinct backbones in the space.
    pub fn cardinality(&self) -> f64 {
        self.gene_cardinalities().iter().map(|&c| c as f64).product()
    }

    /// Draws a uniformly random genome.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Genome {
        let genes = self.gene_cardinalities().iter().map(|&c| rng.gen_range(0..c)).collect();
        Genome::from_genes(genes)
    }

    /// Validates that `genome` is well-formed for this space.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::GenomeLengthMismatch`] or
    /// [`SpaceError::GeneOutOfRange`] on malformed genomes.
    pub fn validate(&self, genome: &Genome) -> Result<(), SpaceError> {
        let cards = self.gene_cardinalities();
        if genome.len() != cards.len() {
            return Err(SpaceError::GenomeLengthMismatch {
                got: genome.len(),
                expected: cards.len(),
            });
        }
        for (i, (&g, &c)) in genome.genes().iter().zip(cards.iter()).enumerate() {
            if g >= c {
                return Err(SpaceError::GeneOutOfRange { gene: i, value: g, cardinality: c });
            }
        }
        Ok(())
    }

    /// Decodes a genome into a concrete [`Subnet`].
    ///
    /// # Errors
    ///
    /// Propagates validation errors for malformed genomes.
    pub fn decode(&self, genome: &Genome) -> Result<Subnet, SpaceError> {
        self.validate(genome)?;
        Subnet::from_genome(self, genome)
    }
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace::attentive_nas()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn attentive_nas_matches_table_ii() {
        let s = SearchSpace::attentive_nas();
        assert_eq!(s.stages().len(), 7, "n_block = 7");
        assert_eq!(s.resolutions(), &[192, 224, 256, 288], "res cardinality 4");
        // Depth values drawn from {1..8}.
        for st in s.stages() {
            assert!(st.depths.iter().all(|&d| (1..=8).contains(&d)));
            assert!(st.kernels == vec![3, 5], "kernel choices {{3, 5}}");
            assert!(st.expands.iter().all(|&e| [1, 4, 5, 6].contains(&e)));
        }
        // 16 distinct width values spanning [16, 1984].
        let mut widths: Vec<usize> = s
            .stages()
            .iter()
            .flat_map(|st| st.widths.iter().copied())
            .chain(s.stem_widths().iter().copied())
            .chain(s.head_widths().iter().copied())
            .collect();
        widths.sort_unstable();
        widths.dedup();
        assert_eq!(widths.len(), 16, "16 distinct width values");
        assert_eq!(*widths.first().unwrap(), 16);
        assert_eq!(*widths.last().unwrap(), 1984);
    }

    #[test]
    fn cardinality_exceeds_paper_quote() {
        let s = SearchSpace::attentive_nas();
        assert!(s.cardinality() > 2.94e11, "got {}", s.cardinality());
    }

    #[test]
    fn sampled_genomes_validate_and_decode() {
        let s = SearchSpace::attentive_nas();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let g = s.sample(&mut rng);
            s.validate(&g).expect("sampled genome must be valid");
            let net = s.decode(&g).expect("sampled genome must decode");
            assert!(net.total_flops() > 0.0);
        }
    }

    #[test]
    fn validate_rejects_bad_genomes() {
        let s = SearchSpace::attentive_nas();
        let short = Genome::from_genes(vec![0; 3]);
        assert!(matches!(s.validate(&short), Err(SpaceError::GenomeLengthMismatch { .. })));
        let mut genes = vec![0usize; s.genome_len()];
        genes[0] = 99;
        assert!(matches!(
            s.validate(&Genome::from_genes(genes)),
            Err(SpaceError::GeneOutOfRange { gene: 0, .. })
        ));
    }

    #[test]
    fn empty_choice_rejected_at_construction() {
        let err = SearchSpace::new(vec![], vec![16], vec![1792], vec![]).unwrap_err();
        assert!(matches!(err, SpaceError::EmptyChoice { variable: "resolution", .. }));
    }

    #[test]
    fn gene_cardinalities_align_with_genome_len() {
        let s = SearchSpace::attentive_nas();
        assert_eq!(s.gene_cardinalities().len(), s.genome_len());
        assert_eq!(s.genome_len(), 3 + 4 * 7);
    }
}
