use serde::{Deserialize, Serialize};

/// What role a layer plays in the decoded backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// The fixed stem convolution (3×3, stride 2).
    Stem,
    /// An MBConv inverted-bottleneck layer within a searchable stage.
    MbConv {
        /// Stage index (0-based) within the backbone.
        stage: usize,
        /// Layer index within the stage.
        layer: usize,
    },
    /// The head: final 1×1 expansion, global pooling, and classifier.
    Head,
}

impl LayerKind {
    /// Whether an early-exit branch may attach after this layer. The paper
    /// places candidate exits after MBConv layers only.
    pub fn is_exitable(&self) -> bool {
        matches!(self, LayerKind::MbConv { .. })
    }
}

/// A concrete layer of a decoded subnet with its analytical cost model.
///
/// Costs are the standard MBConv accounting: multiply–accumulates for the
/// expansion, depthwise, and projection convolutions; parameter and
/// activation byte counts for the memory-traffic side of the roofline
/// model in `hadas-hw`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerInfo {
    /// The layer's role.
    pub kind: LayerKind,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Depthwise kernel size (3×3 for stem/head bookkeeping).
    pub kernel: usize,
    /// Spatial stride (2 on the first layer of down-sampling stages).
    pub stride: usize,
    /// Expansion ratio of the inverted bottleneck (1 for stem/head).
    pub expand: usize,
    /// Input spatial side length.
    pub in_size: usize,
    /// Output spatial side length.
    pub out_size: usize,
    /// Multiply–accumulate operations for one inference.
    pub flops: f64,
    /// Trainable parameter count.
    pub params: f64,
    /// Activation traffic in bytes (reads + writes, f32).
    pub act_bytes: f64,
    /// Weight traffic in bytes (f32).
    pub weight_bytes: f64,
}

impl LayerInfo {
    /// Builds the fixed stem layer: 3×3 stride-2 convolution from RGB.
    pub fn stem(resolution: usize, stem_width: usize) -> Self {
        let out = resolution / 2;
        let macs = (out * out * 3 * stem_width * 9) as f64;
        let params = (3 * stem_width * 9 + 2 * stem_width) as f64;
        LayerInfo {
            kind: LayerKind::Stem,
            c_in: 3,
            c_out: stem_width,
            kernel: 3,
            stride: 2,
            expand: 1,
            in_size: resolution,
            out_size: out,
            flops: macs,
            params,
            act_bytes: 4.0 * ((resolution * resolution * 3) + (out * out * stem_width)) as f64,
            weight_bytes: 4.0 * params,
        }
    }

    /// Builds one MBConv layer.
    #[allow(clippy::too_many_arguments)]
    pub fn mbconv(
        stage: usize,
        layer: usize,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        expand: usize,
        in_size: usize,
    ) -> Self {
        let out_size = in_size / stride;
        let mid = c_in * expand;
        let (hw_in, hw_out) = ((in_size * in_size) as f64, (out_size * out_size) as f64);
        // Expansion 1x1 (absent when expand == 1), depthwise k×k, projection 1x1.
        let expand_macs = if expand > 1 { hw_in * (c_in * mid) as f64 } else { 0.0 };
        let dw_macs = hw_out * (mid * kernel * kernel) as f64;
        let proj_macs = hw_out * (mid * c_out) as f64;
        let expand_params = if expand > 1 { (c_in * mid + 2 * mid) as f64 } else { 0.0 };
        let params = expand_params
            + (mid * kernel * kernel + 2 * mid) as f64
            + (mid * c_out + 2 * c_out) as f64;
        let act_bytes = 4.0
            * (hw_in * c_in as f64
                + if expand > 1 { hw_in * mid as f64 } else { 0.0 }
                + hw_out * mid as f64
                + hw_out * c_out as f64);
        LayerInfo {
            kind: LayerKind::MbConv { stage, layer },
            c_in,
            c_out,
            kernel,
            stride,
            expand,
            in_size,
            out_size,
            flops: expand_macs + dw_macs + proj_macs,
            params,
            act_bytes,
            weight_bytes: 4.0 * params,
        }
    }

    /// Builds the head: 1×1 expansion to `head_width`, global average
    /// pooling, and a `head_width → classes` linear classifier.
    pub fn head(c_in: usize, head_width: usize, in_size: usize, classes: usize) -> Self {
        let hw = (in_size * in_size) as f64;
        let conv_macs = hw * (c_in * head_width) as f64;
        let fc_macs = (head_width * classes) as f64;
        let params =
            (c_in * head_width + 2 * head_width) as f64 + (head_width * classes + classes) as f64;
        LayerInfo {
            kind: LayerKind::Head,
            c_in,
            c_out: classes,
            kernel: 1,
            stride: 1,
            expand: 1,
            in_size,
            out_size: 1,
            flops: conv_macs + fc_macs,
            params,
            act_bytes: 4.0 * (hw * c_in as f64 + hw * head_width as f64 + classes as f64),
            weight_bytes: 4.0 * params,
        }
    }

    /// Arithmetic intensity: MACs per byte of memory traffic. The roofline
    /// model uses this to decide whether a layer is compute- or
    /// memory-bound at a given frequency pair.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.act_bytes + self.weight_bytes;
        if bytes == 0.0 {
            0.0
        } else {
            self.flops / bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stem_halves_resolution() {
        let l = LayerInfo::stem(224, 16);
        assert_eq!(l.out_size, 112);
        assert!(l.flops > 0.0 && l.params > 0.0);
    }

    #[test]
    fn mbconv_with_expand_one_skips_expansion() {
        let with = LayerInfo::mbconv(0, 0, 16, 16, 3, 1, 4, 56);
        let without = LayerInfo::mbconv(0, 0, 16, 16, 3, 1, 1, 56);
        assert!(with.flops > without.flops * 3.0);
    }

    #[test]
    fn stride_two_reduces_output_work() {
        let s1 = LayerInfo::mbconv(1, 0, 24, 32, 3, 1, 4, 56);
        let s2 = LayerInfo::mbconv(1, 0, 24, 32, 3, 2, 4, 56);
        assert_eq!(s2.out_size, 28);
        assert!(s2.flops < s1.flops);
    }

    #[test]
    fn larger_kernel_costs_more() {
        let k3 = LayerInfo::mbconv(2, 0, 32, 40, 3, 1, 4, 28);
        let k5 = LayerInfo::mbconv(2, 0, 32, 40, 5, 1, 4, 28);
        assert!(k5.flops > k3.flops);
        assert!(k5.params > k3.params);
    }

    #[test]
    fn only_mbconv_is_exitable() {
        assert!(!LayerKind::Stem.is_exitable());
        assert!(LayerKind::MbConv { stage: 0, layer: 0 }.is_exitable());
        assert!(!LayerKind::Head.is_exitable());
    }

    #[test]
    fn head_counts_classifier() {
        let l = LayerInfo::head(224, 1792, 7, 100);
        assert!(l.params > (1792 * 100) as f64);
        assert_eq!(l.c_out, 100);
    }

    #[test]
    fn arithmetic_intensity_is_finite_positive() {
        let l = LayerInfo::mbconv(3, 1, 64, 64, 5, 1, 6, 14);
        let ai = l.arithmetic_intensity();
        assert!(ai.is_finite() && ai > 0.0);
    }
}
