use std::error::Error;
use std::fmt;

/// Errors produced while encoding, decoding, or validating genomes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpaceError {
    /// A genome's gene count differs from the space's variable count.
    GenomeLengthMismatch {
        /// Genes supplied.
        got: usize,
        /// Genes the space defines.
        expected: usize,
    },
    /// A gene's choice index exceeds that variable's cardinality.
    GeneOutOfRange {
        /// Position of the gene within the genome.
        gene: usize,
        /// The offending choice index.
        value: usize,
        /// Number of choices available for this variable.
        cardinality: usize,
    },
    /// A stage specification is degenerate (no choices for some variable).
    EmptyChoice {
        /// Index of the stage.
        stage: usize,
        /// Which variable had no choices.
        variable: &'static str,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::GenomeLengthMismatch { got, expected } => {
                write!(f, "genome has {got} genes, space defines {expected}")
            }
            SpaceError::GeneOutOfRange { gene, value, cardinality } => {
                write!(f, "gene {gene} value {value} exceeds cardinality {cardinality}")
            }
            SpaceError::EmptyChoice { stage, variable } => {
                write!(f, "stage {stage} has no choices for {variable}")
            }
        }
    }
}

impl Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SpaceError::GeneOutOfRange { gene: 3, value: 9, cardinality: 4 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9') && s.contains('4'));
    }
}
