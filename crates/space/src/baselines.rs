//! The AttentiveNAS reference models `a0..a6`.
//!
//! The paper benchmarks HADAS against the seven published AttentiveNAS
//! subnets, all sampled from the same fine-tuned supernet: `a0` is the most
//! compact / most energy-efficient, `a6` the largest / most accurate. Here
//! they are encoded as genomes over [`SearchSpace::attentive_nas`],
//! spanning the same compact-to-large spectrum.

use crate::{Genome, SearchSpace, SpaceError, Subnet};

/// Names of the seven baselines, in size order.
pub const BASELINE_NAMES: [&str; 7] = ["a0", "a1", "a2", "a3", "a4", "a5", "a6"];

/// Returns the genome of baseline `index` (0 → `a0` … 6 → `a6`).
///
/// Gene layout is `[res, stem_w, head_w, (d, w, k, er) × 7]`; indices refer
/// to the choice lists of [`SearchSpace::attentive_nas`].
///
/// # Panics
///
/// Panics if `index > 6`.
pub fn baseline_genome(index: usize) -> Genome {
    assert!(index <= 6, "AttentiveNAS defines a0..a6");
    let genes: Vec<usize> = match index {
        // a0: most compact — lowest resolution, min depths/widths, 3x3, low expand.
        0 => vec![
            0, 0, 0, /*s1*/ 0, 0, 0, 0, /*s2*/ 0, 0, 0, 0, /*s3*/ 0, 0, 0, 0,
            /*s4*/ 0, 0, 0, 0, /*s5*/ 0, 0, 0, 0, /*s6*/ 0, 0, 0, 0, /*s7*/ 0,
            0, 0, 0,
        ],
        // a1: slightly deeper mid stages.
        1 => vec![
            0, 0, 0, /*s1*/ 0, 0, 0, 0, /*s2*/ 1, 0, 0, 0, /*s3*/ 1, 0, 0, 0,
            /*s4*/ 1, 0, 0, 1, /*s5*/ 1, 0, 0, 0, /*s6*/ 1, 0, 0, 0, /*s7*/ 0,
            0, 0, 0,
        ],
        // a2: 224 resolution, wider stage 4/5.
        2 => vec![
            1, 0, 0, /*s1*/ 0, 0, 0, 0, /*s2*/ 1, 0, 0, 1, /*s3*/ 1, 1, 0, 0,
            /*s4*/ 1, 0, 0, 1, /*s5*/ 1, 1, 0, 1, /*s6*/ 1, 1, 0, 0, /*s7*/ 0,
            0, 0, 0,
        ],
        // a3: 224 resolution, deeper late stages, 5x5 kernels mid-network.
        3 => vec![
            1, 0, 0, /*s1*/ 1, 0, 0, 0, /*s2*/ 1, 1, 0, 1, /*s3*/ 2, 1, 1, 1,
            /*s4*/ 2, 1, 0, 1, /*s5*/ 2, 1, 1, 1, /*s6*/ 2, 1, 0, 0, /*s7*/ 0,
            1, 0, 0,
        ],
        // a4: 256 resolution.
        4 => vec![
            2, 1, 0, /*s1*/ 1, 1, 0, 0, /*s2*/ 2, 1, 0, 1, /*s3*/ 2, 1, 1, 1,
            /*s4*/ 2, 1, 1, 2, /*s5*/ 3, 1, 1, 1, /*s6*/ 3, 2, 0, 0, /*s7*/ 1,
            1, 0, 0,
        ],
        // a5: 256 resolution, near-max depths.
        5 => vec![
            2, 1, 1, /*s1*/ 1, 1, 1, 0, /*s2*/ 2, 1, 1, 2, /*s3*/ 3, 1, 1, 2,
            /*s4*/ 3, 1, 1, 2, /*s5*/ 4, 2, 1, 2, /*s6*/ 4, 2, 1, 0, /*s7*/ 1,
            1, 0, 0,
        ],
        // a6: largest — 288 resolution, max depths/widths, 5x5, max expand.
        _ => vec![
            3, 1, 1, /*s1*/ 1, 1, 1, 0, /*s2*/ 2, 1, 1, 2, /*s3*/ 3, 1, 1, 2,
            /*s4*/ 3, 1, 1, 2, /*s5*/ 5, 2, 1, 2, /*s6*/ 5, 3, 1, 0, /*s7*/ 1,
            1, 1, 0,
        ],
    };
    Genome::from_genes(genes)
}

/// Decodes all seven baselines against `space`.
///
/// # Errors
///
/// Returns an error only if `space` is not the AttentiveNAS space the
/// genomes were written for.
pub fn attentive_nas_baselines(space: &SearchSpace) -> Result<Vec<(String, Subnet)>, SpaceError> {
    (0..7)
        .map(|i| Ok((BASELINE_NAMES[i].to_string(), space.decode(&baseline_genome(i))?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_decode_in_their_space() {
        let space = SearchSpace::attentive_nas();
        let nets = attentive_nas_baselines(&space).unwrap();
        assert_eq!(nets.len(), 7);
    }

    #[test]
    fn baselines_are_monotone_in_flops() {
        let space = SearchSpace::attentive_nas();
        let nets = attentive_nas_baselines(&space).unwrap();
        for pair in nets.windows(2) {
            assert!(
                pair[1].1.total_flops() > pair[0].1.total_flops(),
                "{} ({}) must be larger than {} ({})",
                pair[1].0,
                pair[1].1.total_flops(),
                pair[0].0,
                pair[0].1.total_flops()
            );
        }
    }

    #[test]
    fn a0_and_a6_bracket_the_family() {
        let space = SearchSpace::attentive_nas();
        let nets = attentive_nas_baselines(&space).unwrap();
        let a0 = &nets[0].1;
        let a6 = &nets[6].1;
        assert_eq!(a0.resolution(), 192);
        assert_eq!(a6.resolution(), 288);
        // The paper's a6/a0 energy ratio on TX2 is ~1.9x; FLOPs spread is larger.
        assert!(a6.total_flops() / a0.total_flops() > 3.0);
    }

    #[test]
    #[should_panic(expected = "a0..a6")]
    fn index_out_of_range_panics() {
        let _ = baseline_genome(7);
    }
}
