//! Human-readable subnet summaries: per-stage breakdowns and a `Display`
//! impl, for CLI output and debugging search results.

use crate::{LayerKind, Subnet};
use std::fmt;

/// Per-stage aggregate of a decoded subnet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSummary {
    /// Stage index.
    pub stage: usize,
    /// Number of MBConv layers.
    pub depth: usize,
    /// Output width.
    pub width: usize,
    /// Kernel size.
    pub kernel: usize,
    /// Expansion ratio.
    pub expand: usize,
    /// Output spatial side length.
    pub out_size: usize,
    /// Total MACs of the stage.
    pub flops: f64,
    /// Share of the whole subnet's MACs.
    pub flops_share: f64,
}

impl Subnet {
    /// Per-stage FLOPs breakdown (stem and head excluded; their share is
    /// `1 − Σ stage shares`).
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        let total = self.total_flops();
        let mut flops = vec![0.0f64; self.stages().len()];
        let mut out_size = vec![0usize; self.stages().len()];
        for layer in self.layers() {
            if let LayerKind::MbConv { stage, .. } = layer.kind {
                flops[stage] += layer.flops;
                out_size[stage] = layer.out_size;
            }
        }
        self.stages()
            .iter()
            .enumerate()
            .map(|(i, cfg)| StageSummary {
                stage: i,
                depth: cfg.depth,
                width: cfg.width,
                kernel: cfg.kernel,
                expand: cfg.expand,
                out_size: out_size[i],
                flops: flops[i],
                flops_share: flops[i] / total,
            })
            .collect()
    }
}

impl fmt::Display for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Subnet: res {}, stem {}, head {}, {} MBConv layers, {:.2} GMACs, {:.1} M params",
            self.resolution(),
            self.stem_width(),
            self.head_width(),
            self.num_mbconv_layers(),
            self.total_flops() / 1e9,
            self.total_params() / 1e6
        )?;
        writeln!(
            f,
            "  {:>5} {:>5} {:>5} {:>6} {:>6} {:>8} {:>8} {:>6}",
            "stage", "depth", "width", "kernel", "expand", "out", "GMACs", "share"
        )?;
        for s in self.stage_summaries() {
            writeln!(
                f,
                "  {:>5} {:>5} {:>5} {:>6} {:>6} {:>5}x{:<3} {:>8.3} {:>5.0}%",
                s.stage,
                s.depth,
                s.width,
                s.kernel,
                s.expand,
                s.out_size,
                s.out_size,
                s.flops / 1e9,
                s.flops_share * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{baselines, SearchSpace};

    fn subnet() -> Subnet {
        SearchSpace::attentive_nas().decode(&baselines::baseline_genome(3)).unwrap()
    }

    #[test]
    fn summaries_cover_all_stages() {
        let net = subnet();
        let s = net.stage_summaries();
        assert_eq!(s.len(), 7);
        for (i, st) in s.iter().enumerate() {
            assert_eq!(st.stage, i);
            assert!(st.flops > 0.0);
            assert!((0.0..1.0).contains(&st.flops_share));
        }
        // Stage shares plus stem+head make up the whole.
        let share_sum: f64 = s.iter().map(|st| st.flops_share).sum();
        assert!(share_sum < 1.0 && share_sum > 0.8, "share sum {share_sum}");
    }

    #[test]
    fn display_prints_the_stage_table() {
        let text = subnet().to_string();
        assert!(text.contains("GMACs"));
        assert!(text.lines().count() >= 9, "{text}");
        assert!(text.contains("res 224"));
    }

    #[test]
    fn stage_depths_match_config() {
        let net = subnet();
        for (s, cfg) in net.stage_summaries().iter().zip(net.stages()) {
            assert_eq!(s.depth, cfg.depth);
            assert_eq!(s.width, cfg.width);
        }
    }
}
