//! # hadas-space
//!
//! The backbone search space **B** of the HADAS reproduction: an
//! AttentiveNAS-style once-for-all supernet over MBConv stages, matching
//! the decision variables of the paper's Table II —
//!
//! | variable | values |
//! |---|---|
//! | number of blocks | 7 |
//! | input resolution | {192, 224, 256, 288} |
//! | block depth | subsets of {1..8} per stage |
//! | block width | 16 distinct values in [16, 1984] |
//! | kernel size | {3, 5} |
//! | expansion ratio | subsets of {1, 4, 5, 6} |
//!
//! A backbone is a [`Genome`] (vector of per-variable choice indices) that
//! decodes into a [`Subnet`] — a concrete layer-by-layer architecture with
//! an analytical cost model (FLOPs, parameters, activation/weight bytes)
//! that the hardware simulator (`hadas-hw`) turns into latency and energy.
//!
//! The seven published AttentiveNAS reference models `a0..a6` are provided
//! as [`baselines::attentive_nas_baselines`] and are sampled from the same
//! space, exactly as the paper samples its baselines from the same
//! fine-tuned supernet.
//!
//! ```
//! use hadas_space::SearchSpace;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), hadas_space::SpaceError> {
//! let space = SearchSpace::attentive_nas();
//! assert!(space.cardinality() > 1e11);
//! let mut rng = StdRng::seed_from_u64(0);
//! let genome = space.sample(&mut rng);
//! let subnet = space.decode(&genome)?;
//! assert!(subnet.total_flops() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod baselines;
mod cost;
mod error;
mod genome;
mod stage;
mod subnet;
mod summary;

pub use cost::{LayerInfo, LayerKind};
pub use error::SpaceError;
pub use genome::Genome;
pub use stage::{SearchSpace, StageSpec};
pub use subnet::Subnet;
pub use summary::StageSummary;
