use crate::stage::{GENES_PER_STAGE, GLOBAL_GENES};
use crate::{Genome, LayerInfo, SearchSpace, SpaceError};
use serde::{Deserialize, Serialize};

/// Number of classifier outputs (CIFAR-100).
pub const NUM_CLASSES: usize = 100;

/// One resolved stage configuration of a decoded subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageConfig {
    /// Number of MBConv layers.
    pub depth: usize,
    /// Output channel width.
    pub width: usize,
    /// Depthwise kernel size.
    pub kernel: usize,
    /// Expansion ratio.
    pub expand: usize,
}

/// A concrete backbone decoded from a [`Genome`]: the paper's `b ∈ B`.
///
/// A subnet owns its resolved per-stage configuration and the full list of
/// [`LayerInfo`] records (stem, every MBConv layer, head) in execution
/// order, from which all static cost queries are answered.
///
/// ```
/// use hadas_space::SearchSpace;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), hadas_space::SpaceError> {
/// let space = SearchSpace::attentive_nas();
/// let mut rng = StdRng::seed_from_u64(3);
/// let net = space.decode(&space.sample(&mut rng))?;
/// assert_eq!(net.layers().len(), net.num_mbconv_layers() + 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subnet {
    genome: Genome,
    resolution: usize,
    stem_width: usize,
    head_width: usize,
    stages: Vec<StageConfig>,
    layers: Vec<LayerInfo>,
}

impl Subnet {
    pub(crate) fn from_genome(space: &SearchSpace, genome: &Genome) -> Result<Self, SpaceError> {
        let g = genome.genes();
        let resolution = space.resolutions()[g[0]];
        let stem_width = space.stem_widths()[g[1]];
        let head_width = space.head_widths()[g[2]];
        let mut stages = Vec::with_capacity(space.stages().len());
        for (i, spec) in space.stages().iter().enumerate() {
            let base = GLOBAL_GENES + i * GENES_PER_STAGE;
            stages.push(StageConfig {
                depth: spec.depths[g[base]],
                width: spec.widths[g[base + 1]],
                kernel: spec.kernels[g[base + 2]],
                expand: spec.expands[g[base + 3]],
            });
        }

        let mut layers = Vec::new();
        let stem = LayerInfo::stem(resolution, stem_width);
        let mut c_in = stem.c_out;
        let mut size = stem.out_size;
        layers.push(stem);
        for (si, (cfg, spec)) in stages.iter().zip(space.stages().iter()).enumerate() {
            for li in 0..cfg.depth {
                let stride = if li == 0 { spec.stride } else { 1 };
                let layer = LayerInfo::mbconv(
                    si, li, c_in, cfg.width, cfg.kernel, stride, cfg.expand, size,
                );
                c_in = layer.c_out;
                size = layer.out_size;
                layers.push(layer);
            }
        }
        layers.push(LayerInfo::head(c_in, head_width, size, NUM_CLASSES));
        Ok(Subnet { genome: genome.clone(), resolution, stem_width, head_width, stages, layers })
    }

    /// The genome this subnet was decoded from.
    pub fn genome(&self) -> &Genome {
        &self.genome
    }

    /// Input resolution.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Stem width.
    pub fn stem_width(&self) -> usize {
        self.stem_width
    }

    /// Head width.
    pub fn head_width(&self) -> usize {
        self.head_width
    }

    /// Resolved stage configurations.
    pub fn stages(&self) -> &[StageConfig] {
        &self.stages
    }

    /// All layers (stem, MBConvs, head) in execution order.
    pub fn layers(&self) -> &[LayerInfo] {
        &self.layers
    }

    /// Number of MBConv layers — the paper's `Σ lᵢ`, which bounds the exit
    /// position range.
    pub fn num_mbconv_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.kind.is_exitable()).count()
    }

    /// The MBConv layers only, in execution order. Exit position `i`
    /// (1-based, as in the paper) attaches after `mbconv_layers()[i-1]`.
    pub fn mbconv_layers(&self) -> Vec<&LayerInfo> {
        self.layers.iter().filter(|l| l.kind.is_exitable()).collect()
    }

    /// Total multiply–accumulates for one inference.
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Total parameter count.
    pub fn total_params(&self) -> f64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total memory traffic in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.layers.iter().map(|l| l.act_bytes + l.weight_bytes).sum()
    }

    /// MACs of the backbone *prefix* ending after MBConv layer `pos`
    /// (1-based), including the stem — the compute an early exit at `pos`
    /// saves the remainder of.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is zero or exceeds [`Subnet::num_mbconv_layers`].
    pub fn prefix_flops(&self, pos: usize) -> f64 {
        assert!(pos >= 1 && pos <= self.num_mbconv_layers(), "exit position out of range");
        let mut seen = 0usize;
        let mut acc = 0.0;
        for l in &self.layers {
            acc += l.flops;
            if l.kind.is_exitable() {
                seen += 1;
                if seen == pos {
                    return acc;
                }
            }
        }
        // `pos` was validated against `num_mbconv_layers()` above, so the
        // loop returns unless the layer list disagrees with its own MBConv
        // count; degrade to the full-backbone MAC count (prefix == whole
        // model) instead of aborting — callers treat it as "no savings".
        acc
    }

    /// Fraction of total MACs spent by the prefix ending at MBConv layer
    /// `pos` (1-based). Used by the accuracy surrogate as the "depth
    /// fraction" of an exit.
    pub fn depth_fraction(&self, pos: usize) -> f64 {
        self.prefix_flops(pos) / self.total_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn any_subnet(seed: u64) -> Subnet {
        let space = SearchSpace::attentive_nas();
        let mut rng = StdRng::seed_from_u64(seed);
        space.decode(&space.sample(&mut rng)).unwrap()
    }

    #[test]
    fn layer_chain_is_consistent() {
        let net = any_subnet(0);
        let layers = net.layers();
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_size, pair[1].in_size,
                "spatial sizes must chain: {:?} -> {:?}",
                pair[0].kind, pair[1].kind
            );
        }
        // Channel chaining between stem and first MBConv.
        assert_eq!(layers[0].c_out, layers[1].c_in);
    }

    #[test]
    fn mbconv_count_matches_stage_depths() {
        let net = any_subnet(1);
        let expected: usize = net.stages().iter().map(|s| s.depth).sum();
        assert_eq!(net.num_mbconv_layers(), expected);
    }

    #[test]
    fn depth_range_matches_table_ii() {
        // min depths 1+3+3+3+3+3+1 = 17; max 2+5+6+6+8+8+2 = 37.
        let space = SearchSpace::attentive_nas();
        let min: usize = space.stages().iter().map(|s| *s.depths.iter().min().unwrap()).sum();
        let max: usize = space.stages().iter().map(|s| *s.depths.iter().max().unwrap()).sum();
        assert_eq!((min, max), (17, 37));
    }

    #[test]
    fn prefix_flops_is_monotone_in_position() {
        let net = any_subnet(2);
        let n = net.num_mbconv_layers();
        let mut prev = 0.0;
        for pos in 1..=n {
            let p = net.prefix_flops(pos);
            assert!(p > prev);
            prev = p;
        }
        assert!(prev < net.total_flops(), "head flops remain after the last MBConv");
    }

    #[test]
    fn depth_fraction_in_unit_interval() {
        let net = any_subnet(3);
        let n = net.num_mbconv_layers();
        for pos in 1..=n {
            let f = net.depth_fraction(pos);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_flops_rejects_zero() {
        let net = any_subnet(4);
        let _ = net.prefix_flops(0);
    }

    #[test]
    fn bigger_genome_means_bigger_network() {
        let space = SearchSpace::attentive_nas();
        let min = Genome::from_genes(vec![0; space.genome_len()]);
        let max = Genome::from_genes(space.gene_cardinalities().iter().map(|&c| c - 1).collect());
        let small = space.decode(&min).unwrap();
        let large = space.decode(&max).unwrap();
        assert!(large.total_flops() > small.total_flops() * 3.0);
        assert!(large.total_params() > small.total_params());
    }

    #[test]
    fn resolution_scales_flops() {
        let space = SearchSpace::attentive_nas();
        let mut genes = vec![0usize; space.genome_len()];
        let lo = space.decode(&Genome::from_genes(genes.clone())).unwrap();
        genes[0] = 3; // 288 instead of 192
        let hi = space.decode(&Genome::from_genes(genes)).unwrap();
        let ratio = hi.total_flops() / lo.total_flops();
        let expected = (288.0f64 / 192.0).powi(2);
        assert!((ratio - expected).abs() / expected < 0.05, "ratio {ratio} vs {expected}");
    }
}
