//! Property-based tests of the backbone space: evolutionary operators
//! preserve validity, costs respond monotonically to size genes, and the
//! encoding is self-consistent.

use hadas_space::{Genome, SearchSpace};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn genome_strategy(space: &SearchSpace) -> impl Strategy<Value = Genome> {
    space
        .gene_cardinalities()
        .into_iter()
        .map(|c| (0..c).boxed())
        .collect::<Vec<_>>()
        .prop_map(Genome::from_genes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniform crossover of two valid genomes is valid.
    #[test]
    fn crossover_preserves_validity(
        seed in 0u64..10_000,
    ) {
        let space = SearchSpace::attentive_nas();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        let child = hadas_evo::discrete::uniform_crossover(&mut rng, a.genes(), b.genes());
        prop_assert!(space.validate(&Genome::from_genes(child)).is_ok());
    }

    /// Reset mutation of a valid genome is valid at any rate.
    #[test]
    fn mutation_preserves_validity(
        seed in 0u64..10_000,
        rate in 0.0f64..1.0,
    ) {
        let space = SearchSpace::attentive_nas();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = space.sample(&mut rng);
        let cards = space.gene_cardinalities();
        let m = hadas_evo::discrete::reset_mutation(&mut rng, g.genes(), &cards, rate);
        prop_assert!(space.validate(&Genome::from_genes(m)).is_ok());
    }

    /// Raising any single width/depth/kernel/expand gene never lowers
    /// FLOPs (choice lists are ascending).
    #[test]
    fn raising_a_gene_never_lowers_flops(genome in genome_strategy(&SearchSpace::attentive_nas()), gene_frac in 0.0f64..1.0) {
        let space = SearchSpace::attentive_nas();
        let cards = space.gene_cardinalities();
        let idx = ((cards.len() - 1) as f64 * gene_frac) as usize;
        prop_assume!(genome.genes()[idx] + 1 < cards[idx]);
        // Skip the resolution gene (index 0) interplay is still monotone,
        // so no exclusions needed; raise and compare.
        let base = space.decode(&genome).expect("valid");
        let mut raised = genome.genes().to_vec();
        raised[idx] += 1;
        let bigger = space.decode(&Genome::from_genes(raised)).expect("valid");
        prop_assert!(
            bigger.total_flops() + 1e-6 >= base.total_flops(),
            "gene {idx}: {} -> {}",
            base.total_flops(),
            bigger.total_flops()
        );
    }

    /// Decoded layer chains always start at the stem resolution and end at
    /// a positive spatial size.
    #[test]
    fn layer_chain_endpoints(genome in genome_strategy(&SearchSpace::attentive_nas())) {
        let space = SearchSpace::attentive_nas();
        let net = space.decode(&genome).expect("valid");
        let first = net.layers().first().expect("non-empty");
        let last = net.layers().last().expect("non-empty");
        prop_assert_eq!(first.in_size, net.resolution());
        prop_assert!(last.out_size >= 1);
        // Total downsampling: stem /2 plus four stride-2 stages = /32.
        let mbconvs = net.mbconv_layers();
        prop_assert_eq!(mbconvs.last().expect("has layers").out_size, net.resolution() / 32);
    }

    /// Hamming distance of a genome to a k-gene mutation is at most k.
    #[test]
    fn mutation_bounds_hamming_distance(seed in 0u64..10_000) {
        let space = SearchSpace::attentive_nas();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = space.sample(&mut rng);
        let cards = space.gene_cardinalities();
        let m = hadas_evo::discrete::step_mutation(&mut rng, g.genes(), &cards, 0.2);
        let child = Genome::from_genes(m);
        prop_assert!(g.hamming(&child) <= g.len());
        // Step mutation moves each gene at most one index.
        for (a, b) in g.genes().iter().zip(child.genes()) {
            prop_assert!(a.abs_diff(*b) <= 1);
        }
    }
}
