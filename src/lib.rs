//! # hadas-suite
//!
//! Umbrella crate for the HADAS reproduction. It re-exports every workspace
//! crate under one roof so examples and integration tests can `use
//! hadas_suite::...` without tracking individual crate names.
//!
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` for the per-experiment index.

pub use hadas as core;
pub use hadas_accuracy as accuracy;
pub use hadas_dataset as dataset;
pub use hadas_evo as evo;
pub use hadas_exits as exits;
pub use hadas_fleet as fleet;
pub use hadas_hw as hw;
pub use hadas_nn as nn;
pub use hadas_runtime as runtime;
pub use hadas_serve as serve;
pub use hadas_space as space;
pub use hadas_supernet as supernet;
pub use hadas_tensor as tensor;
