//! Integration tests for the full bi-level search pipeline, spanning
//! `hadas-space`, `hadas-accuracy`, `hadas-hw`, `hadas-exits`, `hadas-evo`,
//! and the `hadas` core engines.

use hadas_suite::core::{Hadas, HadasConfig};
use hadas_suite::evo::dominates;
use hadas_suite::hw::HwTarget;

fn quick() -> HadasConfig {
    HadasConfig::smoke_test()
}

#[test]
fn joint_search_runs_on_every_hardware_target() {
    for target in HwTarget::ALL {
        let hadas = Hadas::for_target(target);
        let outcome = hadas.run(&quick()).expect("search runs");
        assert!(!outcome.pareto_models().is_empty(), "no models on {target}");
        for m in outcome.pareto_models() {
            assert!(m.dynamic.energy_mj > 0.0);
            assert!((0.0..=100.0).contains(&m.dynamic.accuracy_pct));
            assert!(!m.placement.is_empty());
        }
    }
}

#[test]
fn search_is_deterministic_per_seed_and_sensitive_to_it() {
    let hadas = Hadas::for_target(HwTarget::AgxVoltaGpu);
    let energies = |seed: u64| -> Vec<f64> {
        let outcome = hadas.run(&quick().with_seed(seed)).expect("runs");
        let mut v: Vec<f64> = outcome.pareto_models().iter().map(|m| m.dynamic.energy_mj).collect();
        v.sort_by(f64::total_cmp);
        v
    };
    assert_eq!(energies(5), energies(5), "same seed must reproduce exactly");
    assert_ne!(energies(5), energies(6), "different seeds should explore differently");
}

#[test]
fn final_pareto_is_mutually_non_dominated() {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let outcome = hadas.run(&quick()).expect("runs");
    let axes: Vec<Vec<f64>> = outcome
        .pareto_models()
        .iter()
        .map(|m| vec![m.dynamic.accuracy_pct, -m.dynamic.energy_mj])
        .collect();
    for a in &axes {
        for b in &axes {
            assert!(!dominates(a, b), "pareto set contains a dominated point");
        }
    }
}

#[test]
fn dynamic_models_beat_their_own_static_backbone() {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let outcome = hadas.run(&quick()).expect("runs");
    for m in outcome.pareto_models() {
        // Energy gain is relative to the backbone at default DVFS; the
        // whole point of HADAS is that this is positive.
        assert!(
            m.dynamic.energy_gain > 0.0,
            "pareto model wastes energy: gain {}",
            m.dynamic.energy_gain
        );
        // Ideal-mapping accuracy is never below the backbone's.
        assert!(m.dynamic.accuracy_pct + 1e-9 >= m.static_fitness.accuracy_pct);
    }
}

#[test]
fn promoted_backbones_have_ioe_results_and_others_do_not_waste_them() {
    let hadas = Hadas::for_target(HwTarget::AgxCarmelCpu);
    let outcome = hadas.run(&quick()).expect("runs");
    let with_ioe = outcome.backbones().iter().filter(|b| b.ioe.is_some()).count();
    assert!(with_ioe > 0, "pruning must still promote someone");
    assert!(with_ioe < outcome.backbones().len(), "early selection should prune most backbones");
    for b in outcome.backbones() {
        if let Some(ioe) = &b.ioe {
            assert!(!ioe.pareto.is_empty());
            assert_eq!(ioe.history.len(), quick().ioe.iterations);
        }
    }
}

#[test]
fn hadas_exploits_exit_friendly_backbones() {
    // The searched models should, on average, be more exit-friendly than
    // the fixed baselines — the mechanism behind the paper's Table III.
    // Needs a few OOE generations for the selection pressure to act, so
    // this test runs at a mid-size budget.
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let mut cfg = quick().with_seed(7);
    cfg.ooe = hadas_suite::core::EngineBudget::new(16, 128);
    cfg.ioe = hadas_suite::core::EngineBudget::new(24, 240);
    let outcome = hadas.run(&cfg).expect("runs");
    let searched: Vec<f64> =
        outcome.pareto_models().iter().map(|m| hadas.accuracy().exitability(&m.subnet)).collect();
    let mean_searched = searched.iter().sum::<f64>() / searched.len() as f64;
    let baselines = hadas_suite::space::baselines::attentive_nas_baselines(hadas.space())
        .expect("baselines decode");
    let mean_base = baselines.iter().map(|(_, s)| hadas.accuracy().exitability(s)).sum::<f64>()
        / baselines.len() as f64;
    assert!(
        mean_searched > mean_base,
        "searched exitability {mean_searched:.2} should exceed baseline {mean_base:.2}"
    );
}
