//! Chaos harness (see DESIGN.md, "Fault model & recovery").
//!
//! Two contracts are pinned here, end to end across the workspace:
//!
//! 1. **Resume equals uninterrupted.** Killing the bi-level search at a
//!    generation boundary and resuming from its checkpoint must produce a
//!    *byte-identical* serialized Pareto front to a run that was never
//!    interrupted — with and without injected evaluation faults. The
//!    checkpoint carries the population, the RNG state, and the full
//!    evaluation history, and fault draws are pure functions of
//!    `(key, attempt)`, so nothing about the interruption may leak into
//!    the result.
//!
//! 2. **Throttled traces degrade smoothly.** A runtime trace served under
//!    thermal-throttle, voltage-sag, and arrival-burst episodes must still
//!    serve the stream, switch modes, and lose only bounded accuracy —
//!    the substrate misbehaving is an operating condition, not a crash.
//!
//! 3. **Recovery equals fault-free.** An open-loop serving run under
//!    execution-plane chaos (worker crashes, transient batch failures,
//!    stragglers) must heal — respawn, re-dispatch, retry, hedge — back
//!    to a [`hadas_suite::serve::ServeReport`] that serializes
//!    *byte-identically* to the fault-free run, with zero dead letters,
//!    for every worker count. On a mismatch the soak writes both reports
//!    to `results/` so CI failures ship their own repro artifact.

use hadas_suite::core::{Hadas, HadasConfig, SearchCheckpoint, SearchOptions};
use hadas_suite::hw::HwTarget;
use hadas_suite::runtime::{
    modes_from_pareto, DegradePolicy, FaultConfig, FaultInjector, PolicyState, RuntimeSimulator,
    ScalingPolicy, SocPolicy, StaticPolicy, TraceConfig, WorkloadTrace,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Seeds the CI chaos job sweeps (kept tiny: each seed is a full bi-level
/// search run three times).
const SEED_MATRIX: [u64; 2] = [5, 11];

/// The seeds this process actually sweeps: the CI job matrix pins one
/// seed per worker via `HADAS_CHAOS_SEED`; locally the whole fixed
/// matrix runs. Reproducing a CI failure is therefore
/// `HADAS_CHAOS_SEED=<n> cargo test -q --test chaos`.
fn seed_matrix() -> Vec<u64> {
    match std::env::var("HADAS_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("HADAS_CHAOS_SEED must be a u64")],
        Err(_) => SEED_MATRIX.to_vec(),
    }
}

/// Serialize a Pareto front with the same JSON shape the `hadas search`
/// CLI writes to `results/` (and `tests/determinism.rs` pins).
fn front_json(outcome: &hadas_suite::core::OoeOutcome, seed: u64) -> String {
    let models: Vec<serde_json::Value> = outcome
        .pareto_models()
        .iter()
        .map(|m| {
            serde_json::json!({
                "genome": m.subnet.genome().genes(),
                "exits": m.placement.positions(),
                "dvfs": {"compute": m.dvfs.compute, "emc": m.dvfs.emc},
                "accuracy_pct": m.dynamic.accuracy_pct,
                "energy_mj": m.dynamic.energy_mj,
                "latency_ms": m.dynamic.latency_ms,
            })
        })
        .collect();
    serde_json::to_string(&serde_json::json!({ "seed": seed, "pareto": models }))
        .expect("pareto front serializes")
}

/// A scratch checkpoint path unique to this test + process.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hadas-chaos-{tag}-{}.json", std::process::id()))
}

/// Runs the smoke search, killed after `kill_after` generations and
/// resumed, returning the final front JSON. `base` customizes faults.
fn killed_and_resumed(seed: u64, kill_after: usize, base: &SearchOptions, tag: &str) -> String {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let cfg = HadasConfig::smoke_test().with_seed(seed);
    let path = scratch(&format!("{tag}-{seed}"));

    let first = SearchOptions {
        faults: Arc::clone(&base.faults),
        retry: base.retry,
        checkpoint_path: Some(path.clone()),
        stop_after_generations: Some(kill_after),
        ..SearchOptions::default()
    };
    let partial = hadas.run_with(&cfg, &first).expect("interrupted run still yields a front");
    assert!(partial.interrupted(), "stopping early must be reported");
    assert_eq!(partial.telemetry().generations_completed, kill_after);
    assert!(path.exists(), "the checkpoint must be on disk after the kill");

    let second = SearchOptions {
        faults: Arc::clone(&base.faults),
        retry: base.retry,
        checkpoint_path: Some(path.clone()),
        resume_from: Some(
            SearchCheckpoint::load(&path).expect("checkpoint written at the kill point loads"),
        ),
        ..SearchOptions::default()
    };
    let outcome = hadas.run_with(&cfg, &second).expect("resumed run completes");
    assert!(!outcome.interrupted(), "the resumed run must run to completion");

    let _ = std::fs::remove_file(&path);
    front_json(&outcome, seed)
}

fn uninterrupted(seed: u64, base: &SearchOptions) -> String {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let cfg = HadasConfig::smoke_test().with_seed(seed);
    let opts = SearchOptions {
        faults: Arc::clone(&base.faults),
        retry: base.retry,
        ..SearchOptions::default()
    };
    let outcome = hadas.run_with(&cfg, &opts).expect("uninterrupted run completes");
    front_json(&outcome, seed)
}

#[test]
fn resume_equals_uninterrupted_on_a_healthy_substrate() {
    for seed in seed_matrix() {
        let straight = uninterrupted(seed, &SearchOptions::default());
        let resumed = killed_and_resumed(seed, 2, &SearchOptions::default(), "healthy");
        assert_eq!(
            straight, resumed,
            "kill-at-generation-2 + resume must be byte-identical (seed {seed})"
        );
        assert!(straight.contains("\"genome\""), "front must be non-trivial: {straight}");
    }
}

#[test]
fn resume_equals_uninterrupted_under_injected_faults() {
    let seed = seed_matrix()[0];
    let faulty = SearchOptions {
        faults: Arc::new(
            FaultInjector::new(FaultConfig::chaos(99)).expect("chaos preset validates"),
        ),
        ..SearchOptions::default()
    };
    let straight = uninterrupted(seed, &faulty);
    let resumed = killed_and_resumed(seed, 3, &faulty, "faulty");
    assert_eq!(
        straight, resumed,
        "fault draws are pure in (key, attempt): the kill point must not leak into the front"
    );
    // And recoverable faults must not change *what* is found, only how
    // long it takes: the healthy and faulty fronts agree too.
    assert_eq!(straight, uninterrupted(seed, &SearchOptions::default()));
}

#[test]
fn a_stale_checkpoint_is_refused_not_mangled() {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let cfg = HadasConfig::smoke_test().with_seed(5);
    let path = scratch("stale");
    let first = SearchOptions {
        checkpoint_path: Some(path.clone()),
        stop_after_generations: Some(2),
        ..SearchOptions::default()
    };
    hadas.run_with(&cfg, &first).expect("interrupted run");

    // Resuming under a different seed must fail loudly instead of
    // silently splicing two unrelated searches together.
    let resumed = SearchOptions {
        resume_from: Some(SearchCheckpoint::load(&path).expect("loads")),
        ..SearchOptions::default()
    };
    let err = hadas.run_with(&HadasConfig::smoke_test().with_seed(6), &resumed);
    assert!(err.is_err(), "a mismatched checkpoint must be rejected");
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Runtime-side chaos: throttle + sag + bursts on a served trace.
// ---------------------------------------------------------------------

fn runtime_fixture() -> (Hadas, Vec<hadas_suite::runtime::OperatingMode>) {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let outcome = hadas.run(&HadasConfig::smoke_test()).expect("smoke search");
    let modes = modes_from_pareto(&hadas, &outcome, 3).expect("deployable modes");
    (hadas, modes)
}

#[test]
fn a_fault_injected_trace_finishes_with_bounded_degradation() {
    let (hadas, modes) = runtime_fixture();
    let injector = FaultInjector::new(FaultConfig {
        horizon_s: 40.0,
        episode_s: 12.0,
        thermal_cap: 0.5,
        sag_depth: 0.4,
        burst_multiplier: 3.0,
        ..FaultConfig::chaos(23)
    })
    .expect("storm config validates");

    // Bursts reshape the arrival stream itself, not just its service.
    let cfg = TraceConfig { duration_s: 40.0, rate_hz: 10.0, ..Default::default() };
    let calm_trace = WorkloadTrace::generate(&cfg, 13);
    let trace = WorkloadTrace::generate_modulated(&cfg, 13, |t| injector.rate_multiplier_at(t));
    assert!(trace.len() >= calm_trace.len(), "bursts only add arrivals");

    let sim = RuntimeSimulator::new(&hadas, modes.clone());
    let policy = DegradePolicy::new(&hadas, &modes, Box::new(SocPolicy::thirds()));

    // Budget the battery so the SoC thresholds are actually crossed.
    let unbounded = sim.run(&trace, &StaticPolicy::new(0), 1e6).expect("sizing run");
    let budget = unbounded.energy_j * 0.7;
    let healthy = sim.run(&trace, &policy, budget).expect("healthy run");
    let stormy = sim.run_with_faults(&trace, &policy, budget, Some(&injector)).expect("stormy run");

    assert!(stormy.served > 0, "the stream must still be served");
    assert!(stormy.mode_switches > 0, "the governor must react to the drain");
    assert!(stormy.throttled_windows > 0, "thermal episodes must be observed");
    assert!(stormy.sag_energy_j > 0.0, "sag episodes must cost real joules");
    assert!(
        stormy.accuracy_pct > healthy.accuracy_pct - 20.0,
        "degradation must be bounded: stormy {:.2}% vs healthy {:.2}%",
        stormy.accuracy_pct,
        healthy.accuracy_pct
    );
    assert!(stormy.accuracy_pct > 50.0, "absolute floor: {:.2}%", stormy.accuracy_pct);
}

// ---------------------------------------------------------------------
// Serve-side chaos: supervised recovery equals fault-free, byte for byte.
// ---------------------------------------------------------------------

/// One open-loop serving run; `chaos_seed` switches the execution-plane
/// fault injection on.
fn serve_run(
    hadas: &Hadas,
    modes: &[hadas_suite::runtime::OperatingMode],
    workers: usize,
    chaos_seed: Option<u64>,
) -> (hadas_suite::serve::ServeReport, hadas_suite::serve::ResilienceTelemetry) {
    use hadas_suite::serve::{ServeConfig, ServeEngine};
    let config = ServeConfig {
        seed: 42,
        duration_s: 6.0,
        rps: 150.0,
        workers,
        chaos: chaos_seed.map(|s| FaultConfig { horizon_s: 6.0, ..FaultConfig::worker_chaos(s) }),
        retry: hadas_suite::core::RetryPolicy { max_attempts: 6, ..Default::default() },
        ..ServeConfig::default()
    };
    ServeEngine::new(hadas, modes.to_vec(), config)
        .expect("serve config validates")
        .run_instrumented()
        .expect("serve run completes")
}

/// Writes the two mismatching reports next to the other CI artifacts so
/// a failing soak ships its own repro.
fn dump_serve_diff(tag: &str, clean: &str, healed: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(dir.join(format!("chaos_serve_clean_{tag}.json")), clean);
    let _ = std::fs::write(dir.join(format!("chaos_serve_healed_{tag}.json")), healed);
}

#[test]
fn supervised_serving_heals_back_to_the_fault_free_report() {
    let (hadas, modes) = runtime_fixture();
    for seed in seed_matrix() {
        let mut healed_something = false;
        // The virtual schedule depends on the lane count, so each worker
        // count is compared against its own fault-free run.
        for workers in [1usize, 2, 3] {
            let (clean, calm) = serve_run(&hadas, &modes, workers, None);
            assert_eq!(calm, Default::default(), "a fault-free run reports no healing activity");
            let clean_json = clean.to_json().expect("report serializes");

            let (healed, telemetry) = serve_run(&hadas, &modes, workers, Some(seed));
            assert_eq!(
                healed.dead_lettered, 0,
                "worker chaos must be fully healed (seed {seed}, {workers} workers)"
            );
            assert_eq!(
                healed.served + healed.shed + healed.rejected + healed.dead_lettered,
                healed.offered,
                "request accounting must balance (seed {seed}, {workers} workers)"
            );
            let healed_json = healed.to_json().expect("report serializes");
            if healed_json != clean_json {
                dump_serve_diff(&format!("{seed}_{workers}w"), &clean_json, &healed_json);
            }
            assert_eq!(
                healed_json, clean_json,
                "recovery must be invisible (seed {seed}, {workers} workers; \
                 mismatching reports written to results/)"
            );
            healed_something |= telemetry.crashes > 0
                || telemetry.retries > 0
                || telemetry.hedges > 0
                || telemetry.redispatches > 0;
        }
        assert!(healed_something, "the chaos preset must actually inject work (seed {seed})");
    }
}

#[test]
fn policy_selection_is_in_range_and_monotone_in_soc() {
    // Satellite invariant: for every policy, state, and mode count the
    // selected index stays in range; and for the SoC governor, draining
    // the battery never selects a *faster* mode.
    let policies: Vec<Box<dyn ScalingPolicy>> = vec![
        Box::new(SocPolicy::thirds()),
        Box::new(StaticPolicy::new(7)),
        Box::new(DegradePolicy::from_fractions(vec![1.0, 0.7, 0.4], Box::new(SocPolicy::thirds()))),
    ];
    for policy in &policies {
        for num_modes in 1..=4 {
            let mut last_choice = 0usize;
            // Sweep SoC downwards: monotone non-decreasing mode index.
            for step in 0..=100 {
                let soc = 1.0 - f64::from(step) / 100.0;
                let state = PolicyState::healthy(soc, 10.0, 30.0);
                let choice = policy.select(&state, num_modes);
                assert!(choice < num_modes, "{} chose {choice} of {num_modes}", policy.name());
                assert!(
                    choice >= last_choice,
                    "{} un-degraded from {last_choice} to {choice} as SoC fell to {soc}",
                    policy.name()
                );
                last_choice = choice;
            }
        }
    }
}
