//! Chaos harness (see DESIGN.md, "Fault model & recovery").
//!
//! Two contracts are pinned here, end to end across the workspace:
//!
//! 1. **Resume equals uninterrupted.** Killing the bi-level search at a
//!    generation boundary and resuming from its checkpoint must produce a
//!    *byte-identical* serialized Pareto front to a run that was never
//!    interrupted — with and without injected evaluation faults. The
//!    checkpoint carries the population, the RNG state, and the full
//!    evaluation history, and fault draws are pure functions of
//!    `(key, attempt)`, so nothing about the interruption may leak into
//!    the result.
//!
//! 2. **Throttled traces degrade smoothly.** A runtime trace served under
//!    thermal-throttle, voltage-sag, and arrival-burst episodes must still
//!    serve the stream, switch modes, and lose only bounded accuracy —
//!    the substrate misbehaving is an operating condition, not a crash.
//!
//! 3. **Recovery equals fault-free.** An open-loop serving run under
//!    execution-plane chaos (worker crashes, transient batch failures,
//!    stragglers) must heal — respawn, re-dispatch, retry, hedge — back
//!    to a [`hadas_suite::serve::ServeReport`] that serializes
//!    *byte-identically* to the fault-free run, with zero dead letters,
//!    for every worker count. On a mismatch the soak writes both reports
//!    to `results/` so CI failures ship their own repro artifact.
//!
//! 4. **The training plane honours the same contracts** (see DESIGN.md,
//!    "Training resilience"): killing guarded supernet training at an
//!    epoch boundary and resuming from its checkpoint — into a *fresh,
//!    differently initialised* model — reproduces the uninterrupted
//!    run's loss, step count, and test accuracy bit for bit; a poisoned
//!    train split is quarantined per-sample before any gradient and the
//!    run still ends with a finite loss; and NaN-poisoned fitness never
//!    perturbs the finite Pareto front, at the dominance-sort level and
//!    end-to-end through `--data-chaos` searches.
//!
//! 5. **The fleet plane inherits the serving contracts.** A
//!    [`hadas_suite::fleet::FleetReport`] serializes byte-identically at
//!    any fleet worker count, and under injected *device-unit* crashes
//!    the supervisor respawns units and re-dispatches their substreams
//!    until the healed report matches the fault-free one with zero dead
//!    letters. Mismatches ship `chaos_fleet_*` repro artifacts.
//!
//! 6. **Live reconfiguration keeps every fleet contract under drift.**
//!    With a workload-drift scenario in force and the epoch controller
//!    swapping per-device operating windows, the reconfigured report is
//!    still byte-identical across fleet worker counts, swaps drop
//!    nothing (`dropped_by_swap == 0`), and unit crashes landing *in
//!    the middle of swap epochs* heal back to the fault-free
//!    reconfigured report. Mismatches ship `chaos_reconfig_*` repro
//!    artifacts. The CI `chaos-reconfig` matrix pins one scenario per
//!    job via `HADAS_CHAOS_SCENARIO`; locally two run by default.
//!
//! 7. **Gray failures are detected, quarantined, and healed around.**
//!    With seeded gray-failure injection in force — devices that keep
//!    serving (slowly) while their health telemetry lies — the
//!    detecting fleet report is still byte-identical across fleet
//!    worker counts, the online detector quarantines at least one
//!    gray device, in-flight requests drained off quarantined units
//!    re-dispatch with zero loss (`redispatch_dropped == 0`, the
//!    quarantine analogue of the zero-drop swap invariant), and the
//!    accounting still balances. Mismatches ship `chaos_gray_*` repro
//!    artifacts. The CI `chaos-gray` matrix pins one fault kind per
//!    job via `HADAS_CHAOS_GRAY_KIND`; locally two run by default.

use hadas_suite::core::{Hadas, HadasConfig, SearchCheckpoint, SearchOptions};
use hadas_suite::dataset::{CorruptionConfig, DatasetConfig, SyntheticDataset};
use hadas_suite::hw::HwTarget;
use hadas_suite::runtime::{
    modes_from_pareto, DegradePolicy, FaultConfig, FaultInjector, PolicyState, RuntimeSimulator,
    ScalingPolicy, SocPolicy, StaticPolicy, TraceConfig, WorkloadTrace,
};
use hadas_suite::supernet::{MicroSupernet, SubnetChoice, SupernetConfig, TrainOptions};
use rand::{rngs::StdRng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

/// Seeds the CI chaos job sweeps (kept tiny: each seed is a full bi-level
/// search run three times).
const SEED_MATRIX: [u64; 2] = [5, 11];

/// The seeds this process actually sweeps: the CI job matrix pins one
/// seed per worker via `HADAS_CHAOS_SEED`; locally the whole fixed
/// matrix runs. Reproducing a CI failure is therefore
/// `HADAS_CHAOS_SEED=<n> cargo test -q --test chaos`.
fn seed_matrix() -> Vec<u64> {
    match std::env::var("HADAS_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("HADAS_CHAOS_SEED must be a u64")],
        Err(_) => SEED_MATRIX.to_vec(),
    }
}

/// Serialize a Pareto front with the same JSON shape the `hadas search`
/// CLI writes to `results/` (and `tests/determinism.rs` pins).
fn front_json(outcome: &hadas_suite::core::OoeOutcome, seed: u64) -> String {
    let models: Vec<serde_json::Value> = outcome
        .pareto_models()
        .iter()
        .map(|m| {
            serde_json::json!({
                "genome": m.subnet.genome().genes(),
                "exits": m.placement.positions(),
                "dvfs": {"compute": m.dvfs.compute, "emc": m.dvfs.emc},
                "accuracy_pct": m.dynamic.accuracy_pct,
                "energy_mj": m.dynamic.energy_mj,
                "latency_ms": m.dynamic.latency_ms,
            })
        })
        .collect();
    serde_json::to_string(&serde_json::json!({ "seed": seed, "pareto": models }))
        .expect("pareto front serializes")
}

/// A scratch checkpoint path unique to this test + process.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hadas-chaos-{tag}-{}.json", std::process::id()))
}

/// Runs the smoke search, killed after `kill_after` generations and
/// resumed, returning the final front JSON. `base` customizes faults.
fn killed_and_resumed(seed: u64, kill_after: usize, base: &SearchOptions, tag: &str) -> String {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let cfg = HadasConfig::smoke_test().with_seed(seed);
    let path = scratch(&format!("{tag}-{seed}"));

    let first = SearchOptions {
        faults: Arc::clone(&base.faults),
        retry: base.retry,
        workers: base.workers,
        exec_chaos: base.exec_chaos.clone(),
        checkpoint_path: Some(path.clone()),
        stop_after_generations: Some(kill_after),
        ..SearchOptions::default()
    };
    let partial = hadas.run_with(&cfg, &first).expect("interrupted run still yields a front");
    assert!(partial.interrupted(), "stopping early must be reported");
    assert_eq!(partial.telemetry().generations_completed, kill_after);
    assert!(path.exists(), "the checkpoint must be on disk after the kill");

    let second = SearchOptions {
        faults: Arc::clone(&base.faults),
        retry: base.retry,
        workers: base.workers,
        exec_chaos: base.exec_chaos.clone(),
        checkpoint_path: Some(path.clone()),
        resume_from: Some(
            SearchCheckpoint::load(&path).expect("checkpoint written at the kill point loads"),
        ),
        ..SearchOptions::default()
    };
    let outcome = hadas.run_with(&cfg, &second).expect("resumed run completes");
    assert!(!outcome.interrupted(), "the resumed run must run to completion");

    let _ = std::fs::remove_file(&path);
    front_json(&outcome, seed)
}

fn uninterrupted(seed: u64, base: &SearchOptions) -> String {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let cfg = HadasConfig::smoke_test().with_seed(seed);
    let opts = SearchOptions {
        faults: Arc::clone(&base.faults),
        retry: base.retry,
        workers: base.workers,
        exec_chaos: base.exec_chaos.clone(),
        ..SearchOptions::default()
    };
    let outcome = hadas.run_with(&cfg, &opts).expect("uninterrupted run completes");
    front_json(&outcome, seed)
}

#[test]
fn resume_equals_uninterrupted_on_a_healthy_substrate() {
    for seed in seed_matrix() {
        let straight = uninterrupted(seed, &SearchOptions::default());
        let resumed = killed_and_resumed(seed, 2, &SearchOptions::default(), "healthy");
        assert_eq!(
            straight, resumed,
            "kill-at-generation-2 + resume must be byte-identical (seed {seed})"
        );
        assert!(straight.contains("\"genome\""), "front must be non-trivial: {straight}");
    }
}

#[test]
fn resume_equals_uninterrupted_under_injected_faults() {
    let seed = seed_matrix()[0];
    let faulty = SearchOptions {
        faults: Arc::new(
            FaultInjector::new(FaultConfig::chaos(99)).expect("chaos preset validates"),
        ),
        ..SearchOptions::default()
    };
    let straight = uninterrupted(seed, &faulty);
    let resumed = killed_and_resumed(seed, 3, &faulty, "faulty");
    assert_eq!(
        straight, resumed,
        "fault draws are pure in (key, attempt): the kill point must not leak into the front"
    );
    // And recoverable faults must not change *what* is found, only how
    // long it takes: the healthy and faulty fronts agree too.
    assert_eq!(straight, uninterrupted(seed, &SearchOptions::default()));
}

#[test]
fn a_stale_checkpoint_is_refused_not_mangled() {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let cfg = HadasConfig::smoke_test().with_seed(5);
    let path = scratch("stale");
    let first = SearchOptions {
        checkpoint_path: Some(path.clone()),
        stop_after_generations: Some(2),
        ..SearchOptions::default()
    };
    hadas.run_with(&cfg, &first).expect("interrupted run");

    // Resuming under a different seed must fail loudly instead of
    // silently splicing two unrelated searches together.
    let resumed = SearchOptions {
        resume_from: Some(SearchCheckpoint::load(&path).expect("loads")),
        ..SearchOptions::default()
    };
    let err = hadas.run_with(&HadasConfig::smoke_test().with_seed(6), &resumed);
    assert!(err.is_err(), "a mismatched checkpoint must be rejected");
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Parallel search plane: the supervised executor drives OOE/IOE and the
// front is byte-identical at any worker count, under kill/resume, and
// under injected worker crashes (see DESIGN.md, "Parallel search plane").
// ---------------------------------------------------------------------

#[test]
fn parallel_search_front_is_byte_identical_at_any_worker_count() {
    for seed in seed_matrix() {
        let sequential =
            uninterrupted(seed, &SearchOptions { workers: 1, ..SearchOptions::default() });
        assert!(sequential.contains("\"genome\""), "front must be non-trivial: {sequential}");
        for workers in [2usize, 4, 8] {
            let parallel =
                uninterrupted(seed, &SearchOptions { workers, ..SearchOptions::default() });
            assert_eq!(
                sequential, parallel,
                "the serialized front must not depend on the lane count \
                 (seed {seed}, {workers} workers)"
            );
        }
    }
}

#[test]
fn parallel_search_kill_and_resume_is_byte_identical() {
    for seed in seed_matrix() {
        let wide = SearchOptions { workers: 4, ..SearchOptions::default() };
        let straight = uninterrupted(seed, &SearchOptions { workers: 1, ..Default::default() });
        let resumed = killed_and_resumed(seed, 2, &wide, "parallel");
        assert_eq!(
            straight, resumed,
            "kill-at-generation-2 + resume under 4 workers must reproduce the \
             sequential front byte-for-byte (seed {seed})"
        );
    }
}

#[test]
fn parallel_search_worker_crashes_heal_byte_identically() {
    // Six attempts against the worker-chaos preset make a dead letter a
    // ~1e-6 event per job; the retry policy is pinned on BOTH sides so
    // only the injected chaos differs.
    let retry = hadas_suite::core::RetryPolicy {
        max_attempts: 6,
        ..hadas_suite::core::RetryPolicy::default()
    };
    for seed in seed_matrix() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let cfg = HadasConfig::smoke_test().with_seed(seed);
        let clean = hadas
            .run_with(&cfg, &SearchOptions { workers: 1, retry, ..SearchOptions::default() })
            .expect("fault-free run completes");
        let clean_json = front_json(&clean, seed);

        for workers in [1usize, 4] {
            let injector = FaultInjector::new(FaultConfig::worker_chaos(seed))
                .expect("worker-chaos preset validates");
            let opts = SearchOptions {
                workers,
                retry,
                exec_chaos: Some(Arc::new(injector)),
                ..SearchOptions::default()
            };
            let healed = hadas.run_with(&cfg, &opts).expect("chaotic run completes");
            let exec = healed.exec_telemetry();
            assert!(
                exec.crashes > 0,
                "the preset must actually crash workers (seed {seed}, {workers} workers)"
            );
            assert_eq!(exec.respawns, exec.crashes, "every crash must respawn its lane");
            assert_eq!(
                exec.dead_letter_jobs, 0,
                "six attempts must recover every evaluation (seed {seed}, {workers} workers)"
            );
            assert_eq!(
                front_json(&healed, seed),
                clean_json,
                "healed worker crashes must be invisible in the serialized front \
                 (seed {seed}, {workers} workers)"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Runtime-side chaos: throttle + sag + bursts on a served trace.
// ---------------------------------------------------------------------

fn runtime_fixture() -> (Hadas, Vec<hadas_suite::runtime::OperatingMode>) {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let outcome = hadas.run(&HadasConfig::smoke_test()).expect("smoke search");
    let modes = modes_from_pareto(&hadas, &outcome, 3).expect("deployable modes");
    (hadas, modes)
}

#[test]
fn a_fault_injected_trace_finishes_with_bounded_degradation() {
    let (hadas, modes) = runtime_fixture();
    let injector = FaultInjector::new(FaultConfig {
        horizon_s: 40.0,
        episode_s: 12.0,
        thermal_cap: 0.5,
        sag_depth: 0.4,
        burst_multiplier: 3.0,
        ..FaultConfig::chaos(23)
    })
    .expect("storm config validates");

    // Bursts reshape the arrival stream itself, not just its service.
    let cfg = TraceConfig { duration_s: 40.0, rate_hz: 10.0, ..Default::default() };
    let calm_trace = WorkloadTrace::generate(&cfg, 13);
    let trace = WorkloadTrace::generate_modulated(&cfg, 13, |t| injector.rate_multiplier_at(t));
    assert!(trace.len() >= calm_trace.len(), "bursts only add arrivals");

    let sim = RuntimeSimulator::new(&hadas, modes.clone());
    let policy = DegradePolicy::new(&hadas, &modes, Box::new(SocPolicy::thirds()));

    // Budget the battery so the SoC thresholds are actually crossed.
    let unbounded = sim.run(&trace, &StaticPolicy::new(0), 1e6).expect("sizing run");
    let budget = unbounded.energy_j * 0.7;
    let healthy = sim.run(&trace, &policy, budget).expect("healthy run");
    let stormy = sim.run_with_faults(&trace, &policy, budget, Some(&injector)).expect("stormy run");

    assert!(stormy.served > 0, "the stream must still be served");
    assert!(stormy.mode_switches > 0, "the governor must react to the drain");
    assert!(stormy.throttled_windows > 0, "thermal episodes must be observed");
    assert!(stormy.sag_energy_j > 0.0, "sag episodes must cost real joules");
    assert!(
        stormy.accuracy_pct > healthy.accuracy_pct - 20.0,
        "degradation must be bounded: stormy {:.2}% vs healthy {:.2}%",
        stormy.accuracy_pct,
        healthy.accuracy_pct
    );
    assert!(stormy.accuracy_pct > 50.0, "absolute floor: {:.2}%", stormy.accuracy_pct);
}

// ---------------------------------------------------------------------
// Serve-side chaos: supervised recovery equals fault-free, byte for byte.
// ---------------------------------------------------------------------

/// One open-loop serving run; `chaos_seed` switches the execution-plane
/// fault injection on.
fn serve_run(
    hadas: &Hadas,
    modes: &[hadas_suite::runtime::OperatingMode],
    workers: usize,
    chaos_seed: Option<u64>,
) -> (hadas_suite::serve::ServeReport, hadas_suite::serve::ResilienceTelemetry) {
    use hadas_suite::serve::{ServeConfig, ServeEngine};
    let config = ServeConfig {
        seed: 42,
        duration_s: 6.0,
        rps: 150.0,
        workers,
        chaos: chaos_seed.map(|s| FaultConfig { horizon_s: 6.0, ..FaultConfig::worker_chaos(s) }),
        retry: hadas_suite::core::RetryPolicy { max_attempts: 6, ..Default::default() },
        ..ServeConfig::default()
    };
    ServeEngine::new(hadas, modes.to_vec(), config)
        .expect("serve config validates")
        .run_instrumented()
        .expect("serve run completes")
}

/// Writes the two mismatching reports next to the other CI artifacts so
/// a failing soak ships its own repro.
fn dump_serve_diff(tag: &str, clean: &str, healed: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(dir.join(format!("chaos_serve_clean_{tag}.json")), clean);
    let _ = std::fs::write(dir.join(format!("chaos_serve_healed_{tag}.json")), healed);
}

#[test]
fn supervised_serving_heals_back_to_the_fault_free_report() {
    let (hadas, modes) = runtime_fixture();
    for seed in seed_matrix() {
        let mut healed_something = false;
        // The virtual schedule depends on the lane count, so each worker
        // count is compared against its own fault-free run.
        for workers in [1usize, 2, 3] {
            let (clean, calm) = serve_run(&hadas, &modes, workers, None);
            assert_eq!(calm, Default::default(), "a fault-free run reports no healing activity");
            let clean_json = clean.to_json().expect("report serializes");

            let (healed, telemetry) = serve_run(&hadas, &modes, workers, Some(seed));
            assert_eq!(
                healed.dead_lettered, 0,
                "worker chaos must be fully healed (seed {seed}, {workers} workers)"
            );
            assert!(
                healed.accounting_balances(),
                "request accounting must balance (seed {seed}, {workers} workers)"
            );
            let healed_json = healed.to_json().expect("report serializes");
            if healed_json != clean_json {
                dump_serve_diff(&format!("{seed}_{workers}w"), &clean_json, &healed_json);
            }
            assert_eq!(
                healed_json, clean_json,
                "recovery must be invisible (seed {seed}, {workers} workers; \
                 mismatching reports written to results/)"
            );
            healed_something |= telemetry.crashes > 0
                || telemetry.retries > 0
                || telemetry.hedges > 0
                || telemetry.redispatches > 0;
        }
        assert!(healed_something, "the chaos preset must actually inject work (seed {seed})");
    }
}

// ---------------------------------------------------------------------
// Fleet-plane chaos: worker-count byte-identity and unit-crash healing.
// ---------------------------------------------------------------------

/// The searched device planes the fleet contracts run over (two targets
/// at the smoke budget, like the serving fixture).
fn fleet_fixture() -> Vec<hadas_suite::fleet::DevicePlane> {
    hadas_suite::fleet::build_planes(
        &[HwTarget::Tx2PascalGpu, HwTarget::AgxCarmelCpu],
        &HadasConfig::smoke_test(),
    )
    .expect("fleet planes build at the smoke budget")
}

/// One fleet run over `planes`; `chaos_seed` switches unit-level chaos on.
fn fleet_run(
    planes: &[hadas_suite::fleet::DevicePlane],
    workers: usize,
    chaos_seed: Option<u64>,
) -> hadas_suite::fleet::FleetRun {
    let config = hadas_suite::fleet::FleetConfig {
        devices: vec![
            HwTarget::Tx2PascalGpu,
            HwTarget::AgxCarmelCpu,
            HwTarget::Tx2PascalGpu,
            HwTarget::AgxCarmelCpu,
            HwTarget::Tx2PascalGpu,
            HwTarget::AgxCarmelCpu,
        ],
        users: 900,
        rps: 300.0,
        workers,
        seed: 42,
        chaos: chaos_seed.map(|s| FaultConfig {
            crash_rate: 0.25,
            transient_rate: 0.15,
            ..FaultConfig::worker_chaos(s)
        }),
        retry: hadas_suite::core::RetryPolicy { max_attempts: 6, ..Default::default() },
        ..hadas_suite::fleet::FleetConfig::default()
    };
    hadas_suite::fleet::FleetEngine::new(planes, config)
        .expect("fleet config validates")
        .run()
        .expect("fleet run completes")
}

/// Writes the two mismatching fleet reports next to the other CI
/// artifacts so a failing soak ships its own repro.
fn dump_fleet_diff(tag: &str, clean: &str, healed: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(dir.join(format!("chaos_fleet_clean_{tag}.json")), clean);
    let _ = std::fs::write(dir.join(format!("chaos_fleet_healed_{tag}.json")), healed);
}

#[test]
fn fleet_report_is_byte_identical_at_any_worker_count() {
    let planes = fleet_fixture();
    let base = fleet_run(&planes, 1, None);
    assert!(base.report.accounting_balances(), "fleet accounting must balance");
    assert!(base.report.served > 0, "the fleet must serve");
    assert_eq!(base.report.dead_lettered, 0, "a clean run must not dead-letter");
    assert_eq!(base.telemetry, Default::default(), "a clean run needs no healing");
    let base_json = base.report.to_json().expect("fleet report serializes");
    for workers in [2usize, 4, 8] {
        let run = fleet_run(&planes, workers, None);
        let json = run.report.to_json().expect("fleet report serializes");
        if json != base_json {
            dump_fleet_diff(&format!("{workers}w"), &base_json, &json);
        }
        assert_eq!(
            json, base_json,
            "fleet worker count {workers} must not leak into the report \
             (mismatching reports written to results/)"
        );
    }
}

#[test]
fn fleet_unit_crashes_heal_back_to_the_fault_free_report() {
    let planes = fleet_fixture();
    let clean_json = fleet_run(&planes, 2, None).report.to_json().expect("report serializes");
    let mut healed_something = false;
    for seed in seed_matrix() {
        let healed = fleet_run(&planes, 3, Some(seed));
        assert_eq!(
            healed.report.dead_lettered, 0,
            "the retry budget must heal every device unit (seed {seed})"
        );
        assert!(healed.report.accounting_balances(), "accounting must balance (seed {seed})");
        let healed_json = healed.report.to_json().expect("report serializes");
        if healed_json != clean_json {
            dump_fleet_diff(&format!("seed{seed}"), &clean_json, &healed_json);
        }
        assert_eq!(
            healed_json, clean_json,
            "healed unit chaos must be invisible (seed {seed}; \
             mismatching reports written to results/)"
        );
        healed_something |= healed.telemetry.crashes > 0
            || healed.telemetry.retries > 0
            || healed.telemetry.hedges > 0
            || healed.telemetry.redispatches > 0;
    }
    assert!(healed_something, "some seed must actually inject unit faults");
}

// ---------------------------------------------------------------------
// Reconfiguration-plane chaos: drifted, swapping fleets keep every
// fleet contract (worker byte-identity, zero-drop swaps, crash healing).
// ---------------------------------------------------------------------

/// The drift scenarios this process sweeps: the CI `chaos-reconfig`
/// matrix pins one per job via `HADAS_CHAOS_SCENARIO`; locally two run.
fn scenario_matrix() -> Vec<String> {
    match std::env::var("HADAS_CHAOS_SCENARIO") {
        Ok(s) => vec![s],
        Err(_) => vec!["composite".into(), "thermal-season".into()],
    }
}

/// One reconfigured fleet run under `scenario`; `chaos_seed` switches
/// unit-level chaos on — crashes land inside swap epochs, which is
/// exactly the recovery path contract 6 pins.
fn reconfig_run(
    planes: &[hadas_suite::fleet::DevicePlane],
    scenario: &str,
    workers: usize,
    chaos_seed: Option<u64>,
) -> hadas_suite::fleet::FleetRun {
    let (users, rps) = (900usize, 300.0);
    let scenario = hadas_suite::runtime::Scenario::from_name(scenario, 42, users as f64 / rps)
        .expect("registry scenario");
    let config = hadas_suite::fleet::FleetConfig {
        devices: vec![
            HwTarget::Tx2PascalGpu,
            HwTarget::AgxCarmelCpu,
            HwTarget::Tx2PascalGpu,
            HwTarget::AgxCarmelCpu,
            HwTarget::Tx2PascalGpu,
            HwTarget::AgxCarmelCpu,
        ],
        users,
        rps,
        workers,
        seed: 42,
        scenario: Some(scenario),
        reconfigure: true,
        chaos: chaos_seed.map(|s| FaultConfig {
            crash_rate: 0.25,
            transient_rate: 0.15,
            ..FaultConfig::worker_chaos(s)
        }),
        retry: hadas_suite::core::RetryPolicy { max_attempts: 6, ..Default::default() },
        ..hadas_suite::fleet::FleetConfig::default()
    };
    hadas_suite::fleet::FleetEngine::new(planes, config)
        .expect("reconfigured fleet config validates")
        .run()
        .expect("reconfigured fleet run completes")
}

/// Ships mismatching reconfigured reports as CI repro artifacts.
fn dump_reconfig_diff(tag: &str, clean: &str, healed: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(dir.join(format!("chaos_reconfig_clean_{tag}.json")), clean);
    let _ = std::fs::write(dir.join(format!("chaos_reconfig_healed_{tag}.json")), healed);
}

#[test]
fn reconfigured_fleet_report_is_byte_identical_at_any_worker_count() {
    let planes = fleet_fixture();
    for scenario in scenario_matrix() {
        let base = reconfig_run(&planes, &scenario, 1, None);
        assert!(base.report.accounting_balances(), "{scenario}: accounting must balance");
        assert_eq!(base.report.dead_lettered, 0, "{scenario}: a clean run must not dead-letter");
        assert!(base.report.reconfig.enabled, "{scenario}: the controller must run");
        assert!(base.report.reconfig.swaps > 0, "{scenario}: drift must force swaps");
        assert_eq!(
            base.report.reconfig.dropped_by_swap, 0,
            "{scenario}: the zero-drop swap invariant must hold"
        );
        let base_json = base.report.to_json().expect("fleet report serializes");
        for workers in [2usize, 8] {
            let run = reconfig_run(&planes, &scenario, workers, None);
            let json = run.report.to_json().expect("fleet report serializes");
            if json != base_json {
                dump_reconfig_diff(&format!("{scenario}_{workers}w"), &base_json, &json);
            }
            assert_eq!(
                json, base_json,
                "{scenario}: fleet worker count {workers} must not leak into the \
                 reconfigured report (mismatching reports written to results/)"
            );
        }
    }
}

#[test]
fn mid_swap_unit_crashes_heal_back_to_the_reconfigured_report() {
    let planes = fleet_fixture();
    let mut healed_something = false;
    for scenario in scenario_matrix() {
        let clean = reconfig_run(&planes, &scenario, 2, None);
        assert!(clean.report.reconfig.swaps > 0, "{scenario}: drift must force swaps");
        let clean_json = clean.report.to_json().expect("report serializes");
        for seed in seed_matrix() {
            let healed = reconfig_run(&planes, &scenario, 3, Some(seed));
            assert_eq!(
                healed.report.dead_lettered, 0,
                "{scenario}: the retry budget must heal every swap epoch (seed {seed})"
            );
            assert_eq!(
                healed.report.reconfig.dropped_by_swap, 0,
                "{scenario}: crashes must not breach the zero-drop invariant (seed {seed})"
            );
            assert!(
                healed.report.accounting_balances(),
                "{scenario}: accounting must balance (seed {seed})"
            );
            let healed_json = healed.report.to_json().expect("report serializes");
            if healed_json != clean_json {
                dump_reconfig_diff(&format!("{scenario}_seed{seed}"), &clean_json, &healed_json);
            }
            assert_eq!(
                healed_json, clean_json,
                "{scenario}: healed mid-swap chaos must be invisible (seed {seed}; \
                 mismatching reports written to results/)"
            );
            healed_something |= healed.telemetry.crashes > 0 || healed.telemetry.retries > 0;
        }
    }
    assert!(healed_something, "some seed must actually crash units mid-epoch");
}

// ---------------------------------------------------------------------
// Gray-failure chaos: lying telemetry, online quarantine, re-dispatch.
// ---------------------------------------------------------------------

/// The gray-fault kinds this process sweeps: the CI `chaos-gray` matrix
/// pins one per job via `HADAS_CHAOS_GRAY_KIND`; locally two run.
fn gray_kind_matrix() -> Vec<String> {
    match std::env::var("HADAS_CHAOS_GRAY_KIND") {
        Ok(s) => vec![s],
        Err(_) => vec!["slow".into(), "mix".into()],
    }
}

/// One fleet run under seeded gray-failure injection; `detect` switches
/// the online health detector (and its quarantine routing) on.
fn gray_run(
    planes: &[hadas_suite::fleet::DevicePlane],
    kind: &str,
    seed: u64,
    workers: usize,
    detect: bool,
) -> hadas_suite::fleet::FleetRun {
    let kind = hadas_suite::runtime::GrayFaultKind::from_name(kind).expect("registry gray kind");
    let config = hadas_suite::fleet::FleetConfig {
        devices: vec![
            HwTarget::Tx2PascalGpu,
            HwTarget::AgxCarmelCpu,
            HwTarget::Tx2PascalGpu,
            HwTarget::AgxCarmelCpu,
            HwTarget::Tx2PascalGpu,
            HwTarget::AgxCarmelCpu,
        ],
        users: 900,
        rps: 300.0,
        workers,
        seed: 42,
        // Degrade from the first control window: the fleet fixture's
        // 3-second stream opens only a few windows per device, so the
        // default onset would leave the detector almost no evidence.
        gray: Some(hadas_suite::runtime::GrayFaultConfig {
            onset_window: 0,
            ..hadas_suite::runtime::GrayFaultConfig::new(kind, seed)
        }),
        detection: if detect {
            hadas_suite::fleet::DetectionConfig::enabled()
        } else {
            hadas_suite::fleet::DetectionConfig::default()
        },
        ..hadas_suite::fleet::FleetConfig::default()
    };
    hadas_suite::fleet::FleetEngine::new(planes, config)
        .expect("gray fleet config validates")
        .run()
        .expect("gray fleet run completes")
}

/// Ships mismatching gray-faulted reports as CI repro artifacts.
fn dump_gray_diff(tag: &str, base: &str, other: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(dir.join(format!("chaos_gray_base_{tag}.json")), base);
    let _ = std::fs::write(dir.join(format!("chaos_gray_other_{tag}.json")), other);
}

#[test]
fn gray_faulted_detecting_fleet_report_is_byte_identical_at_any_worker_count() {
    let planes = fleet_fixture();
    let seed = seed_matrix()[0];
    for kind in gray_kind_matrix() {
        let base = gray_run(&planes, &kind, seed, 1, true);
        assert!(base.report.accounting_balances(), "{kind}: accounting must balance");
        assert_eq!(base.report.dead_lettered, 0, "{kind}: gray devices degrade, not crash");
        let base_json = base.report.to_json().expect("fleet report serializes");
        for workers in [2usize, 8] {
            let run = gray_run(&planes, &kind, seed, workers, true);
            let json = run.report.to_json().expect("fleet report serializes");
            if json != base_json {
                dump_gray_diff(&format!("{kind}_{workers}w"), &base_json, &json);
            }
            assert_eq!(
                json, base_json,
                "{kind}: fleet worker count {workers} must not leak into the gray-faulted \
                 detecting report (mismatching reports written to results/)"
            );
        }
    }
}

#[test]
fn gray_detection_quarantines_probes_and_redispatches_without_loss() {
    let planes = fleet_fixture();
    let seed = seed_matrix()[0];
    for kind in gray_kind_matrix() {
        let run = gray_run(&planes, &kind, seed, 2, true);
        let det = &run.report.detection;
        assert!(det.enabled, "{kind}: the detector must run");
        assert!(
            det.quarantined_devices >= 1,
            "{kind}: the gray degradation must be caught and quarantined (seed {seed})"
        );
        assert!(!det.transitions.is_empty(), "{kind}: transitions must be recorded");
        assert_eq!(
            det.redispatch_dropped, 0,
            "{kind}: drained in-flight requests must all re-dispatch (zero-drop invariant)"
        );
        assert!(run.report.accounting_balances(), "{kind}: accounting must balance");
        assert_eq!(run.report.dead_lettered, 0, "{kind}: quarantine must not dead-letter");
        // The detector's final verdicts mirror into the per-unit health
        // reports byte-for-byte.
        assert_eq!(run.report.health.len(), det.final_states.len());
        for (unit, state) in run.report.health.iter().zip(&det.final_states) {
            assert_eq!(&unit.state, state, "{kind}: unit {} state must mirror", unit.device);
        }

        // The blind run over the same gray stream keeps serving but
        // never quarantines — the faults are truly silent without the
        // detector.
        let blind = gray_run(&planes, &kind, seed, 2, false);
        assert!(!blind.report.detection.enabled);
        assert_eq!(blind.report.detection.quarantined_devices, 0);
        assert!(blind.report.detection.transitions.is_empty());
        assert!(blind.report.accounting_balances(), "{kind}: blind accounting must balance");
    }
}

// ---------------------------------------------------------------------
// Training-plane chaos: kill/resume, data poison, NaN-fitness quarantine.
// ---------------------------------------------------------------------

/// The tiny supernet + matching dataset the CLI `hadas train` command
/// also uses: small enough for CI, real enough to exercise the full
/// guarded sandwich-rule loop.
fn train_fixture(seed: u64) -> (SupernetConfig, SyntheticDataset) {
    let net = SupernetConfig::tiny();
    let mut cfg = DatasetConfig::small();
    cfg.classes = net.classes;
    cfg.image_size = net.image_size;
    cfg.train_size = 96;
    cfg.test_size = 48;
    let data = SyntheticDataset::generate(&cfg, seed).expect("valid dataset config");
    (net, data)
}

#[test]
fn train_kill_at_epoch_then_resume_is_byte_identical() {
    for seed in seed_matrix() {
        let (net_cfg, data) = train_fixture(seed);
        let opts = TrainOptions::new(3, 16, 0.05, seed);

        // The uninterrupted reference run.
        let mut straight =
            MicroSupernet::new(&net_cfg, &mut StdRng::seed_from_u64(seed)).expect("net builds");
        let (ref_report, ref_tel) = straight.train_with(&data, &opts).expect("straight run");
        assert!(!ref_tel.interrupted);
        let ref_acc =
            straight.evaluate(&data, &SubnetChoice::max(&net_cfg)).expect("straight eval");

        // Kill at the epoch-1 boundary, checkpointing as we go.
        let path = scratch(&format!("train-{seed}"));
        let _ = std::fs::remove_file(&path);
        let mut killed =
            MicroSupernet::new(&net_cfg, &mut StdRng::seed_from_u64(seed)).expect("net builds");
        let (_, kill_tel) = killed
            .train_with(&data, &opts.clone().with_checkpoint(path.clone(), false).stop_after(1))
            .expect("killed run reaches its kill point");
        assert!(kill_tel.interrupted, "stopping early must be reported");
        assert!(kill_tel.checkpoints_written >= 1, "the kill point must be on disk");
        assert!(path.exists(), "checkpoint file must exist after the kill");

        // Resume into a FRESH model with a *different* init seed: every
        // weight, the SGD velocity, and the RNG stream must come from
        // the checkpoint, not from whatever the new process happened to
        // initialise.
        let mut resumed = MicroSupernet::new(&net_cfg, &mut StdRng::seed_from_u64(seed ^ 0xD00D))
            .expect("net builds");
        let (res_report, res_tel) = resumed
            .train_with(&data, &opts.clone().with_checkpoint(path.clone(), true))
            .expect("resumed run completes");
        assert_eq!(res_tel.resumed_from_epoch, Some(1), "resume must start at the kill epoch");
        assert!(!res_tel.interrupted, "the resumed run must run to completion");
        let res_acc = resumed.evaluate(&data, &SubnetChoice::max(&net_cfg)).expect("resumed eval");

        assert_eq!(
            ref_report.final_loss.to_bits(),
            res_report.final_loss.to_bits(),
            "kill-at-epoch-1 + resume must reproduce the final loss bit-for-bit (seed {seed}: \
             {} vs {})",
            ref_report.final_loss,
            res_report.final_loss
        );
        assert_eq!(ref_report.steps, res_report.steps, "step accounting must match (seed {seed})");
        assert_eq!(
            ref_acc.to_bits(),
            res_acc.to_bits(),
            "the trained weights themselves must match: test accuracy {ref_acc} vs {res_acc} \
             (seed {seed})"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn a_stale_train_checkpoint_is_refused_not_spliced() {
    let seed = seed_matrix()[0];
    let (net_cfg, data) = train_fixture(seed);
    let path = scratch(&format!("train-stale-{seed}"));
    let _ = std::fs::remove_file(&path);
    let mut net =
        MicroSupernet::new(&net_cfg, &mut StdRng::seed_from_u64(seed)).expect("net builds");
    net.train_with(
        &data,
        &TrainOptions::new(3, 16, 0.05, seed).with_checkpoint(path.clone(), false).stop_after(1),
    )
    .expect("interrupted run");

    // Resuming under a different schedule must fail loudly instead of
    // silently splicing two unrelated trajectories together.
    let mut fresh =
        MicroSupernet::new(&net_cfg, &mut StdRng::seed_from_u64(seed)).expect("net builds");
    let err = fresh.train_with(
        &data,
        &TrainOptions::new(3, 16, 0.1, seed).with_checkpoint(path.clone(), true),
    );
    assert!(err.is_err(), "a mismatched train checkpoint must be rejected");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn poisoned_training_quarantines_the_poison_and_stays_finite() {
    for seed in seed_matrix() {
        let (net_cfg, data) = train_fixture(seed);
        let (poisoned, report) =
            data.with_corruption(&CorruptionConfig::chaos(seed)).expect("chaos preset validates");
        assert!(report.detectable() > 0, "the preset must inject detectable poison (seed {seed})");

        let mut net =
            MicroSupernet::new(&net_cfg, &mut StdRng::seed_from_u64(seed)).expect("net builds");
        let (rep, tel) = net
            .train_with(&poisoned, &TrainOptions::new(2, 16, 0.05, seed))
            .expect("training on a quarantined split completes");
        assert_eq!(
            tel.quarantined,
            report.detectable(),
            "per-sample validation must catch exactly the detectable poison (seed {seed})"
        );
        assert!(
            rep.final_loss.is_finite(),
            "the final loss must be finite under data chaos (seed {seed}): {}",
            rep.final_loss
        );
        let acc = net.evaluate(&poisoned, &SubnetChoice::max(&net_cfg)).expect("eval");
        assert!(acc.is_finite() && acc >= 0.0, "accuracy must stay sane: {acc} (seed {seed})");
    }
}

#[test]
fn nan_fitness_never_perturbs_the_finite_fronts() {
    use hadas_suite::evo::{crowding_distance, fast_non_dominated_sort};

    // A two-front finite population...
    let finite: Vec<Vec<f64>> =
        vec![vec![4.0, 1.0], vec![1.0, 4.0], vec![3.0, 3.0], vec![2.0, 2.0], vec![0.5, 0.5]];
    let clean_fronts = fast_non_dominated_sort(&finite);
    let clean_serialized =
        serde_json::to_string(&serde_json::json!(clean_fronts)).expect("fronts serialize");

    // ...plus injected NaN/∞ fitness vectors, as a poisoned evaluation
    // would produce in release mode.
    let mut poisoned = finite.clone();
    poisoned.push(vec![f64::NAN, 9.0]);
    poisoned.push(vec![9.0, f64::INFINITY]);
    poisoned.push(vec![f64::NAN, f64::NAN]);
    let fronts = fast_non_dominated_sort(&poisoned);

    // The finite fronts — membership, order, serialization — are
    // unchanged; the poisoned points sink into one pure trailing front
    // where the diversity tiebreak can never favour them.
    let finite_fronts: Vec<Vec<usize>> = fronts[..fronts.len() - 1].to_vec();
    let serialized =
        serde_json::to_string(&serde_json::json!(finite_fronts)).expect("fronts serialize");
    assert_eq!(
        serialized, clean_serialized,
        "injected NaN fitness must not change the finite front serialization"
    );
    let trailing = fronts.last().expect("non-empty partition");
    let mut sunk = trailing.clone();
    sunk.sort_unstable();
    assert_eq!(sunk, vec![5, 6, 7], "poisoned points must sink into the trailing front");
    let d = crowding_distance(&poisoned, trailing);
    assert!(d.iter().all(|v| *v == 0.0), "poisoned points never win a diversity tiebreak");
}

#[test]
fn data_chaos_search_quarantines_and_yields_a_finite_deterministic_front() {
    for seed in seed_matrix() {
        let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
        let cfg = HadasConfig::smoke_test().with_seed(seed);
        let opts = SearchOptions { data_chaos: Some(seed), ..SearchOptions::default() };

        let out = hadas.run_with(&cfg, &opts).expect("chaotic search completes");
        assert!(
            out.telemetry().quarantined_evals > 0,
            "the chaos rate must actually poison measurements (seed {seed})"
        );
        for m in out.pareto_models() {
            assert!(
                m.dynamic.accuracy_pct.is_finite()
                    && m.dynamic.energy_mj.is_finite()
                    && m.dynamic.latency_ms.is_finite(),
                "poisoned fitness must never survive into the front (seed {seed})"
            );
        }

        // Quarantine is pure in (seed, index): the same chaotic search
        // twice is byte-identical, telemetry included.
        let again = hadas.run_with(&cfg, &opts).expect("chaotic search repeats");
        assert_eq!(front_json(&out, seed), front_json(&again, seed));
        assert_eq!(out.telemetry().quarantined_evals, again.telemetry().quarantined_evals);
    }
}

#[test]
fn policy_selection_is_in_range_and_monotone_in_soc() {
    // Satellite invariant: for every policy, state, and mode count the
    // selected index stays in range; and for the SoC governor, draining
    // the battery never selects a *faster* mode.
    let policies: Vec<Box<dyn ScalingPolicy>> = vec![
        Box::new(SocPolicy::thirds()),
        Box::new(StaticPolicy::new(7)),
        Box::new(DegradePolicy::from_fractions(vec![1.0, 0.7, 0.4], Box::new(SocPolicy::thirds()))),
    ];
    for policy in &policies {
        for num_modes in 1..=4 {
            let mut last_choice = 0usize;
            // Sweep SoC downwards: monotone non-decreasing mode index.
            for step in 0..=100 {
                let soc = 1.0 - f64::from(step) / 100.0;
                let state = PolicyState::healthy(soc, 10.0, 30.0);
                let choice = policy.select(&state, num_modes);
                assert!(choice < num_modes, "{} chose {choice} of {num_modes}", policy.name());
                assert!(
                    choice >= last_choice,
                    "{} un-degraded from {last_choice} to {choice} as SoC fell to {soc}",
                    policy.name()
                );
                last_choice = choice;
            }
        }
    }
}
