//! End-to-end training integration: the micro NN framework really learns,
//! both on raw synthetic images (`hadas-dataset`) and on simulated
//! backbone features (`hadas-exits`), tying together `hadas-tensor`,
//! `hadas-nn`, `hadas-dataset`, and `hadas-exits`.

use hadas_suite::dataset::{DatasetConfig, DifficultyDistribution, SyntheticDataset};
use hadas_suite::exits::{ExitHead, ExitTrainer, FeatureSimulator};
use hadas_suite::nn::{accuracy, nll_loss, Sgd};
use rand::{rngs::StdRng, SeedableRng};

/// A small CNN (the exit-head architecture applied to raw RGB images)
/// learns to classify easy synthetic samples well above chance.
#[test]
fn cnn_learns_synthetic_images() {
    let mut cfg = DatasetConfig::small();
    cfg.classes = 5;
    cfg.train_size = 120;
    cfg.test_size = 40;
    // Easy-skewed difficulty so a tiny model can learn quickly.
    cfg.difficulty = DifficultyDistribution::new(1.2, 6.0).expect("valid shape");
    let data = SyntheticDataset::generate(&cfg, 99).expect("valid config");

    let mut rng = StdRng::seed_from_u64(1);
    let mut head = ExitHead::new(&mut rng, 3, cfg.image_size, cfg.classes).expect("valid head");
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);

    let batch = 24;
    for epoch in 0..6 {
        for start in (0..cfg.train_size - batch + 1).step_by(batch) {
            let (images, labels) = data.train_batch(start, batch).expect("in range");
            let logits = head.forward(&images).expect("forward");
            let (_, grad) = nll_loss(&logits, &labels).expect("valid labels");
            head.net_mut().zero_grad();
            head.backward(&grad).expect("backward");
            opt.step(head.net_mut().params_mut());
        }
        let _ = epoch;
    }

    head.set_training(false);
    let (images, labels) = data.test_batch(0, cfg.test_size).expect("in range");
    let logits = head.forward(&images).expect("forward");
    let acc = accuracy(&logits, &labels).expect("valid");
    assert!(acc > 0.5, "test accuracy {acc} should be well above chance (0.2)");
}

/// The exit trainer's learned accuracy tracks the simulator's capability:
/// a capability sweep must produce a monotone accuracy trend.
#[test]
fn trained_exit_accuracy_tracks_capability() {
    let classes = 8;
    let difficulty = DifficultyDistribution::default();
    let mut accs = Vec::new();
    for (i, capability) in [0.25f64, 0.55, 0.9].into_iter().enumerate() {
        let sim = FeatureSimulator::new(5, classes, 10, 4, capability);
        let mut rng = StdRng::seed_from_u64(60 + i as u64);
        let mut head = ExitHead::new(&mut rng, 10, 4, classes).expect("valid head");
        let trainer = ExitTrainer::new(classes, difficulty, 0.9).with_schedule(4, 16, 16);
        let report = trainer.train(&mut head, &sim, 7).expect("training runs");
        accs.push(report.test_accuracy);
    }
    assert!(accs[2] > accs[0] + 0.1, "deep-prefix exits must clearly beat shallow ones: {accs:?}");
}

/// Knowledge distillation from the simulated final classifier must not
/// hurt relative to pure NLL (on this easy setup it typically helps).
#[test]
fn hybrid_loss_trains_successfully() {
    let classes = 6;
    let sim = FeatureSimulator::new(3, classes, 8, 4, 0.8);
    let difficulty = DifficultyDistribution::default();
    let mut rng = StdRng::seed_from_u64(8);
    let mut head = ExitHead::new(&mut rng, 8, 4, classes).expect("valid head");
    let trainer = ExitTrainer::new(classes, difficulty, 0.85).with_schedule(5, 16, 16);
    let report = trainer.train(&mut head, &sim, 3).expect("training runs");
    assert!(report.final_loss.is_finite());
    assert!(report.test_accuracy > 0.45, "accuracy {}", report.test_accuracy);
}
