//! Shape tests: the paper's headline qualitative results must hold at a
//! reduced search budget. These guard the calibration of the accuracy
//! surrogate and the hardware simulator against regressions.

use hadas_suite::core::{EngineBudget, Hadas, HadasConfig};
use hadas_suite::evo::{fast_non_dominated_sort, hypervolume_2d, ratio_of_dominance};
use hadas_suite::hw::{DeviceModel, HwTarget};
use hadas_suite::space::baselines;

fn mid() -> HadasConfig {
    let mut cfg = HadasConfig::paper();
    cfg.ooe = EngineBudget::new(16, 128);
    cfg.ioe = EngineBudget::new(24, 240);
    cfg
}

fn front(axes: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if axes.is_empty() {
        return Vec::new();
    }
    let fronts = fast_non_dominated_sort(axes);
    fronts[0].iter().map(|&i| axes[i].clone()).collect()
}

/// Table III anchors: a0 and a6 static energies on the TX2 Pascal GPU.
#[test]
fn tx2_energy_anchors_hold() {
    let dev = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
    let nets =
        baselines::attentive_nas_baselines(&hadas_suite::space::SearchSpace::attentive_nas())
            .expect("baselines");
    let dvfs = dev.default_dvfs();
    let a0 = dev.subnet_cost(&nets[0].1, &dvfs).expect("valid").energy_mj();
    let a6 = dev.subnet_cost(&nets[6].1, &dvfs).expect("valid").energy_mj();
    assert!((a0 - 173.78).abs() / 173.78 < 0.15, "a0 {a0} mJ vs paper 173.78");
    assert!((a6 - 335.48).abs() / 335.48 < 0.15, "a6 {a6} mJ vs paper 335.48");
}

/// Fig. 5 top: the OOE front dominates most baselines, including a6.
#[test]
fn ooe_front_dominates_baselines() {
    let hadas = Hadas::for_target(HwTarget::AgxVoltaGpu);
    let outcome = hadas.run(&mid()).expect("runs");
    let front: Vec<Vec<f64>> =
        outcome.static_pareto().iter().map(|b| b.fitness.to_plot_axes()).collect();
    let mut dominated = 0;
    for (name, subnet) in baselines::attentive_nas_baselines(hadas.space()).expect("baselines") {
        let cost =
            hadas.device().subnet_cost(&subnet, &hadas.device().default_dvfs()).expect("valid");
        let p = vec![hadas.accuracy().backbone_accuracy(&subnet), -cost.energy_mj()];
        if front.iter().any(|f| hadas_suite::evo::dominates(f, &p)) {
            dominated += 1;
        } else if name == "a6" {
            panic!("a6 must be dominated by the OOE front at this budget");
        }
    }
    assert!(dominated >= 4, "only {dominated}/7 baselines dominated");
}

/// Fig. 5 bottom + Fig. 6: HADAS's inner-search front beats the optimized
/// baselines on hypervolume and ratio of dominance.
#[test]
fn ioe_front_beats_optimized_baselines() {
    let cfg = mid();
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let outcome = hadas.run(&cfg).expect("runs");
    let mut hadas_axes = Vec::new();
    for b in outcome.backbones() {
        if let Some(ioe) = &b.ioe {
            hadas_axes.extend(ioe.history.iter().map(|s| s.fitness.to_plot_axes()));
        }
    }
    let mut base_axes = Vec::new();
    for (i, (_, subnet)) in baselines::attentive_nas_baselines(hadas.space())
        .expect("baselines")
        .into_iter()
        .enumerate()
    {
        let ioe = hadas.run_ioe(&subnet, &cfg, 1000 + i as u64).expect("IOE runs");
        base_axes.extend(ioe.history.iter().map(|s| s.fitness.to_plot_axes()));
    }
    let hf = front(&hadas_axes);
    let bf = front(&base_axes);
    let reference = [-0.5, 0.0];
    assert!(
        hypervolume_2d(&hf, &reference) > hypervolume_2d(&bf, &reference),
        "HADAS must win hypervolume"
    );
    assert!(
        ratio_of_dominance(&hf, &bf) > ratio_of_dominance(&bf, &hf),
        "HADAS must win ratio of dominance"
    );
}

/// Fig. 1 / Table III: energy improves monotonically across the three
/// optimisation stages (Static ≥ Dyn ≥ Dyn w/HW) for the searched models.
#[test]
fn optimisation_stages_are_monotone() {
    let cfg = mid();
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let outcome = hadas.run(&cfg).expect("runs");
    let mut checked = 0;
    for b in outcome.backbones() {
        let Some(ioe) = &b.ioe else { continue };
        let static_energy = b.fitness.energy_mj;
        for s in &ioe.pareto {
            // Dyn w/HW: the solution's own energy. It must beat static.
            if s.fitness.energy_gain > 0.0 {
                assert!(s.fitness.energy_mj < static_energy + 1e-9);
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "at least some solutions must show stage gains");
}

/// Fig. 7: the dissimilarity regularizer shifts the search toward
/// dissimilar exits (higher RoD against the unregularised run).
#[test]
fn dissimilarity_regularizer_helps() {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let subnet = hadas.space().decode(&baselines::baseline_genome(3)).expect("a3 decodes");
    let cfg = mid();
    // Individual runs are noisy (search-time N_i estimates are), so the
    // claim is statistical: averaged over ten seeds, the regularised fronts
    // dominate the unregularised ones more than vice versa. Five seeds is
    // not enough to separate the two conditions reliably.
    let mut rod_with = 0.0;
    let mut rod_without = 0.0;
    for seed in [41u64, 42, 43, 44, 45, 46, 47, 48, 49, 50] {
        let with =
            hadas.run_ioe(&subnet, &cfg.clone().with_dissimilarity(true, 0.5), seed).expect("runs");
        let without = hadas
            .run_ioe(&subnet, &cfg.clone().with_dissimilarity(false, 0.0), seed)
            .expect("runs");
        let wf = front(&with.history.iter().map(|s| s.fitness.to_plot_axes()).collect::<Vec<_>>());
        let of =
            front(&without.history.iter().map(|s| s.fitness.to_plot_axes()).collect::<Vec<_>>());
        rod_with += ratio_of_dominance(&wf, &of);
        rod_without += ratio_of_dominance(&of, &wf);
    }
    assert!(
        rod_with >= rod_without,
        "dissimilarity should improve dominance on average: {rod_with} vs {rod_without}"
    );
}
