//! Seed-determinism regression test (see DESIGN.md, "Static analysis &
//! invariants").
//!
//! The whole pipeline is driven by splittable seeded RNGs — `hadas-lint`'s
//! `seeded-rng-only` pass forbids every ambient entropy source — so two runs
//! with the same `HadasConfig::seed` must produce *byte-identical* results,
//! not merely statistically similar ones. This test pins that contract at
//! the coarsest observable level: the serialized OOE Pareto front.

use hadas::{Hadas, HadasConfig};
use hadas_hw::HwTarget;

/// Run the smoke-test OOE search and serialize its Pareto front with the
/// same JSON shape the `hadas search` CLI writes to `results/`.
fn pareto_json(seed: u64) -> String {
    let hadas = Hadas::for_target(HwTarget::Tx2PascalGpu);
    let outcome = hadas
        .run(&HadasConfig::smoke_test().with_seed(seed))
        .expect("smoke-test OOE run must succeed");
    let models: Vec<serde_json::Value> = outcome
        .pareto_models()
        .iter()
        .map(|m| {
            serde_json::json!({
                "genome": m.subnet.genome().genes(),
                "exits": m.placement.positions(),
                "dvfs": {"compute": m.dvfs.compute, "emc": m.dvfs.emc},
                "accuracy_pct": m.dynamic.accuracy_pct,
                "energy_mj": m.dynamic.energy_mj,
                "latency_ms": m.dynamic.latency_ms,
            })
        })
        .collect();
    serde_json::to_string(&serde_json::json!({ "seed": seed, "pareto": models }))
        .expect("pareto front serializes")
}

#[test]
fn same_seed_gives_byte_identical_pareto_fronts() {
    let first = pareto_json(5);
    let second = pareto_json(5);
    assert_eq!(first, second, "two OOE runs with the same seed must serialize to identical bytes");
    // The front must be non-trivial, otherwise the equality above is vacuous.
    assert!(first.contains("\"genome\""), "pareto front should not be empty: {first}");
}

#[test]
fn different_seeds_explore_differently() {
    // Not a strict requirement of the algorithm, but if two different seeds
    // ever produced byte-identical fronts on the smoke budget, the seed
    // plumbing would almost certainly be broken (e.g. a hard-coded seed).
    assert_ne!(pareto_json(5), pareto_json(6), "distinct seeds should differ somewhere");
}
