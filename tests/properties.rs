//! Cross-crate property-based tests (proptest): invariants of the genome
//! encoding, the hardware cost model, the dynamic-model evaluation, and
//! the Pareto machinery over randomly drawn inputs.

use hadas_suite::accuracy::AccuracyModel;
use hadas_suite::core::DynamicModel;
use hadas_suite::evo::{dominates, fast_non_dominated_sort};
use hadas_suite::exits::ExitPlacement;
use hadas_suite::hw::{DeviceModel, DvfsSetting, HwTarget};
use hadas_suite::space::{Genome, SearchSpace};
use proptest::prelude::*;

/// Strategy: a valid genome for the AttentiveNAS space.
fn genome_strategy() -> impl Strategy<Value = Genome> {
    let space = SearchSpace::attentive_nas();
    let cards = space.gene_cardinalities();
    cards.into_iter().map(|c| (0..c).boxed()).collect::<Vec<_>>().prop_map(Genome::from_genes)
}

/// Strategy: a DVFS setting valid on the TX2 Pascal GPU (13 × 11).
fn dvfs_strategy() -> impl Strategy<Value = DvfsSetting> {
    (0usize..13, 0usize..11).prop_map(|(c, m)| DvfsSetting::new(c, m))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every well-formed genome decodes, and the decoded subnet's layer
    /// chain is spatially and channel-consistent.
    #[test]
    fn any_genome_decodes_consistently(genome in genome_strategy()) {
        let space = SearchSpace::attentive_nas();
        let net = space.decode(&genome).expect("valid genome must decode");
        prop_assert!(net.total_flops() > 0.0);
        prop_assert!(net.total_params() > 0.0);
        for pair in net.layers().windows(2) {
            prop_assert_eq!(pair[0].out_size, pair[1].in_size);
        }
        let depth: usize = net.stages().iter().map(|s| s.depth).sum();
        prop_assert_eq!(net.num_mbconv_layers(), depth);
    }

    /// Hardware costs are positive, finite, and additive: the full subnet
    /// cost equals the last prefix plus the remaining layers.
    #[test]
    fn hw_costs_are_positive_and_consistent(
        genome in genome_strategy(),
        dvfs in dvfs_strategy(),
    ) {
        let space = SearchSpace::attentive_nas();
        let net = space.decode(&genome).expect("valid genome");
        let dev = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let total = dev.subnet_cost(&net, &dvfs).expect("valid dvfs");
        prop_assert!(total.latency_s > 0.0 && total.latency_s.is_finite());
        prop_assert!(total.energy_j > 0.0 && total.energy_j.is_finite());
        let n = net.num_mbconv_layers();
        let last_prefix = dev.prefix_cost(&net, n, &dvfs).expect("valid position");
        // Prefix through the last MBConv leaves only the head unpaid.
        prop_assert!(last_prefix.energy_j < total.energy_j);
        prop_assert!(last_prefix.latency_s < total.latency_s);
    }

    /// Exit fractions are probabilities and weakly increase front-to-back
    /// in quartile means for every architecture.
    #[test]
    fn exit_fractions_are_sane(genome in genome_strategy()) {
        let space = SearchSpace::attentive_nas();
        let net = space.decode(&genome).expect("valid genome");
        let model = AccuracyModel::cifar100();
        let curve = model.exit_fraction_curve(&net);
        prop_assert!(curve.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let n = curve.len();
        let q = (n / 4).max(1);
        let head: f64 = curve[..q].iter().sum::<f64>() / q as f64;
        let tail: f64 = curve[n - q..].iter().sum::<f64>() / q as f64;
        prop_assert!(tail >= head, "capability must grow with depth: {curve:?}");
    }

    /// A dynamic model's usage probabilities always form a distribution
    /// and its dynamic energy never exceeds the full model's
    /// (backbone + all heads) at the same DVFS setting.
    #[test]
    fn dynamic_evaluation_is_bounded(
        genome in genome_strategy(),
        dvfs in dvfs_strategy(),
        density in 0.1f64..0.6,
        seed in 0u64..1000,
    ) {
        let space = SearchSpace::attentive_nas();
        let net = space.decode(&genome).expect("valid genome");
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let placement = ExitPlacement::sample(&mut rng, net.num_mbconv_layers(), density);
        let model = DynamicModel::new(net, placement, dvfs);
        let acc = AccuracyModel::cifar100();
        let dev = DeviceModel::for_target(HwTarget::Tx2PascalGpu);
        let eval = model.evaluate(&acc, &dev, 1.0, true).expect("valid model");
        let total: f64 = eval.exit_usage.iter().sum::<f64>() + eval.final_usage;
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(eval.fitness.energy_mj > 0.0);
        // dissim_1 is always 1 (no predecessor).
        prop_assert!((eval.dissimilarities[0] - 1.0).abs() < 1e-12);
    }

    /// Non-dominated sorting: front 0 matches a brute-force Pareto filter.
    #[test]
    fn front_zero_matches_brute_force(
        points in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3),
            1..40,
        )
    ) {
        let fronts = fast_non_dominated_sort(&points);
        let mut front0 = fronts[0].clone();
        front0.sort_unstable();
        let mut brute: Vec<usize> = (0..points.len())
            .filter(|&i| !points.iter().any(|p| dominates(p, &points[i])))
            .collect();
        brute.sort_unstable();
        prop_assert_eq!(front0, brute);
    }

    /// Placement indicator encoding round-trips for arbitrary masks.
    #[test]
    fn placement_indicators_round_trip(
        total in 17usize..38,
        mask in proptest::collection::vec(any::<bool>(), 33),
    ) {
        let count = ExitPlacement::candidate_count(total);
        let indicators: Vec<bool> = mask.into_iter().take(count).collect();
        if indicators.iter().any(|&b| b) && indicators.len() == count {
            match ExitPlacement::from_indicators(&indicators, total) {
                Ok(p) => prop_assert_eq!(p.to_indicators(), indicators),
                Err(_) => {
                    // Only the nX upper bound can reject a non-empty mask.
                    let set = indicators.iter().filter(|&&b| b).count();
                    prop_assert!(set > total - 5);
                }
            }
        }
    }
}
