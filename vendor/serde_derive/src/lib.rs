//! Offline-vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available. Instead this crate walks the raw `proc_macro::TokenStream` of
//! the item definition with a small hand-rolled parser, then emits impls of
//! the vendored `serde::Serialize` / `serde::Deserialize` traits (which use
//! a JSON-shaped `Value` data model rather than upstream's visitor design).
//!
//! Supported shapes — exactly what the workspace derives on:
//! - structs with named fields (including generic structs, bounds added per
//!   type parameter),
//! - tuple / unit structs,
//! - enums with unit, tuple and struct variants, encoded with upstream
//!   serde's externally-tagged representation.
//!
//! `#[serde(...)]` attributes are not supported (the workspace uses none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Type-parameter identifiers, e.g. `["T"]` for `Experiment<T>`.
    generics: Vec<String>,
    kind: ItemKind,
}

enum ItemKind {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields.
    TupleStruct(usize),
    /// Unit struct (`struct X;`).
    UnitStruct,
    /// Enum with its variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token-level parsing helpers
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_str(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Advance past any leading `#[...]` outer attributes (doc comments included).
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() && is_punct(&toks[i], '#') {
        if matches!(&toks[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket) {
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Advance past `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && ident_str(&toks[i]).as_deref() == Some("pub") {
        i += 1;
        if i < toks.len()
            && matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Parse `ident: Type` pairs out of a brace-group token slice, skipping
/// attributes, visibility, and the type tokens (tracking `<...>` depth so
/// commas inside generic arguments don't split fields).
fn parse_named_fields(toks: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(toks, i);
        i = skip_visibility(toks, i);
        if i >= toks.len() {
            break;
        }
        let Some(name) = ident_str(&toks[i]) else {
            break; // malformed; bail out with what we have
        };
        i += 1;
        // Expect ':'
        if i < toks.len() && is_punct(&toks[i], ':') {
            i += 1;
        }
        // Skip the type until a top-level ','
        let mut angle = 0i32;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                angle += 1;
            } else if is_punct(&toks[i], '>') {
                angle -= 1;
            } else if is_punct(&toks[i], ',') && angle == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Count top-level comma-separated entries in a paren-group token slice.
fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_tokens_since_comma = true;
    for t in toks {
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle -= 1;
        } else if is_punct(t, ',') && angle == 0 {
            count += 1;
            saw_tokens_since_comma = false;
            continue;
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(toks: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(toks, i);
        if i >= toks.len() {
            break;
        }
        let Some(name) = ident_str(&toks[i]) else { break };
        i += 1;
        let kind = if i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    VariantKind::Tuple(count_tuple_fields(&inner))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    VariantKind::Struct(parse_named_fields(&inner))
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        // Skip an optional discriminant `= expr` and the separating ','.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        if i < toks.len() {
            i += 1; // the comma
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_visibility(&toks, i);

    let keyword = ident_str(toks.get(i).ok_or("unexpected end of input")?)
        .ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_str(toks.get(i).ok_or("missing item name")?).ok_or("missing item name")?;
    i += 1;

    // Generic parameters: collect top-level type-parameter idents, skip
    // bounds and lifetimes.
    let mut generics = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        i += 1;
        let mut depth = 1i32;
        let mut at_param_position = true;
        let mut prev_was_lifetime_quote = false;
        while i < toks.len() && depth > 0 {
            let t = &toks[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth -= 1;
            } else if is_punct(t, ',') && depth == 1 {
                at_param_position = true;
            } else if is_punct(t, '\'') {
                prev_was_lifetime_quote = true;
                i += 1;
                continue;
            } else if is_punct(t, ':') && depth == 1 {
                at_param_position = false;
            } else if let TokenTree::Ident(id) = t {
                if depth == 1 && at_param_position && !prev_was_lifetime_quote {
                    let s = id.to_string();
                    if s != "const" {
                        generics.push(s);
                    }
                    at_param_position = false;
                }
            }
            prev_was_lifetime_quote = false;
            i += 1;
        }
    }

    // Skip a `where` clause if present (none in this workspace).
    while i < toks.len() && !matches!(&toks[i], TokenTree::Group(_)) && !is_punct(&toks[i], ';') {
        i += 1;
    }

    let kind = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                ItemKind::Struct(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                ItemKind::TupleStruct(count_tuple_fields(&inner))
            }
            _ => ItemKind::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                ItemKind::Enum(parse_variants(&inner))
            }
            _ => return Err("enum without a body".to_string()),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    Ok(Item { name, generics, kind })
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<T: Bound, ...>` header + `Name<T, ...>` type, given a trait bound.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> = item.generics.iter().map(|g| format!("{g}: {bound}")).collect();
        (format!("<{}>", params.join(", ")), format!("{}<{}>", item.name, item.generics.join(", ")))
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec::Vec::from([{}]))", entries.join(", "))
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec::Vec::from([{}]))", items.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__a0) => ::serde::Value::Object(\
                             ::std::vec::Vec::from([(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__a0))])),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__a{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(\
                                 ::std::vec::Vec::from([(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec::Vec::from([{}])))])),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(\
                                 ::std::vec::Vec::from([(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec::Vec::from([{}])))])),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::__private::get_field(__obj, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __obj = ::serde::__private::as_object(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::__private::as_array(__v, \"{name}\")?;\n\
                 if __items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"expected {n} elements for {name}, got {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __items = ::serde::__private::as_array(\
                                 __inner, \"{name}::{vname}\")?;\n\
                                 if __items.len() != {n} {{\n\
                                     return ::std::result::Result::Err(\
                                     ::serde::DeError::custom(\
                                     format!(\"expected {n} elements for {name}::{vname}, \
                                     got {{}}\", __items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::__private::get_field(__vobj, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __vobj = ::serde::__private::as_object(\
                                 __inner, \"{name}::{vname}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"{name} variant\", __v)),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn expand(input: TokenStream, gen: fn(&Item) -> String, which: &str) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .unwrap_or_else(|e| panic!("serde_derive({which}): generated invalid code: {e}")),
        Err(msg) => panic!("serde_derive({which}): {msg}"),
    }
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize, "Serialize")
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize, "Deserialize")
}
