//! Offline-vendored, API-compatible subset of the `quote` crate.
//!
//! [`quote!`] builds a [`proc_macro2::TokenStream`] from literal Rust
//! tokens by stringifying and re-lexing them through the vendored
//! `proc-macro2` lexer. Unlike upstream there is **no `#var`
//! interpolation** — the macro is for constructing fixture token
//! streams (as `hadas-lint`'s tests do), not for code generation.

pub use proc_macro2;
use proc_macro2::{TokenStream, TokenTree};

/// Types that can append themselves to a [`TokenStream`].
pub trait ToTokens {
    /// Appends `self`'s tokens to the stream.
    fn to_tokens(&self, tokens: &mut TokenStream);

    /// Renders `self` as a fresh stream.
    fn to_token_stream(&self) -> TokenStream {
        let mut ts = TokenStream::new();
        self.to_tokens(&mut ts);
        ts
    }
}

impl ToTokens for TokenStream {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        tokens.extend(self.clone());
    }
}

impl ToTokens for TokenTree {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        tokens.extend(std::iter::once(self.clone()));
    }
}

impl<T: ToTokens + ?Sized> ToTokens for &T {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        (**self).to_tokens(tokens);
    }
}

/// Builds a [`TokenStream`] from the literal tokens given, by
/// stringify-then-relex. Panics (at test/build time, not runtime
/// library code) if the tokens do not re-lex, which for `stringify!`
/// output cannot happen with balanced input.
#[macro_export]
macro_rules! quote {
    () => { $crate::proc_macro2::TokenStream::new() };
    ($($tt:tt)*) => {
        stringify!($($tt)*)
            .parse::<$crate::proc_macro2::TokenStream>()
            .unwrap_or_default()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_produces_relexed_tokens() {
        let ts = quote! { fn f() { x.iter() } };
        assert!(ts.to_string().contains("iter"));
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn empty_quote_is_empty() {
        let ts = quote! {};
        assert!(ts.is_empty());
        assert!(ts.to_token_stream().is_empty());
    }
}
