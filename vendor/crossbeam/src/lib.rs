//! Offline-vendored subset of `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 call shape
//! (`scope.spawn(|_| ...)`, outer `Result`), implemented on top of
//! `std::thread::scope` (stable since Rust 1.63).

/// Scoped-thread API compatible with `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A handle allowing spawning of scoped threads, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (unused by
        /// this workspace, hence typically bound as `|_|`), matching the
        /// crossbeam signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which spawned threads are joined before
    /// returning. Returns `Err` if `f` itself or any spawned thread panicked,
    /// matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope propagates child panics by resuming the payload
        // on the spawning thread; catch it to reproduce crossbeam's
        // Result-based reporting.
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_threads_and_collects_results() {
            let data = vec![1, 2, 3, 4];
            let total = std::sync::atomic::AtomicUsize::new(0);
            let out = super::scope(|s| {
                for &x in &data {
                    let total = &total;
                    s.spawn(move |_| {
                        total.fetch_add(x, std::sync::atomic::Ordering::SeqCst);
                    });
                }
                42
            })
            .expect("no panics");
            assert_eq!(out, 42);
            assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 10);
        }

        #[test]
        fn panicking_child_surfaces_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("child panic"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let hits = std::sync::atomic::AtomicUsize::new(0);
            super::scope(|s| {
                s.spawn(|inner| {
                    inner.spawn(|_| {
                        hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    });
                });
            })
            .expect("no panics");
            assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
        }
    }
}
