//! Offline-vendored subset of `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 call shape
//! (`scope.spawn(|_| ...)`, outer `Result`), implemented on top of
//! `std::thread::scope` (stable since Rust 1.63), and
//! `crossbeam::channel` with the `crossbeam-channel` call shape
//! (cloneable multi-consumer `Receiver`, `recv(&self)`), implemented on
//! top of `std::sync::mpsc`.

/// Scoped-thread API compatible with `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A handle allowing spawning of scoped threads, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (unused by
        /// this workspace, hence typically bound as `|_|`), matching the
        /// crossbeam signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which spawned threads are joined before
    /// returning. Returns `Err` if `f` itself or any spawned thread panicked,
    /// matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope propagates child panics by resuming the payload
        // on the spawning thread; catch it to reproduce crossbeam's
        // Result-based reporting.
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_threads_and_collects_results() {
            let data = vec![1, 2, 3, 4];
            let total = std::sync::atomic::AtomicUsize::new(0);
            let out = super::scope(|s| {
                for &x in &data {
                    let total = &total;
                    s.spawn(move |_| {
                        total.fetch_add(x, std::sync::atomic::Ordering::SeqCst);
                    });
                }
                42
            })
            .expect("no panics");
            assert_eq!(out, 42);
            assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 10);
        }

        #[test]
        fn panicking_child_surfaces_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("child panic"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let hits = std::sync::atomic::AtomicUsize::new(0);
            super::scope(|s| {
                s.spawn(|inner| {
                    inner.spawn(|_| {
                        hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    });
                });
            })
            .expect("no panics");
            assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
        }
    }
}

/// Multi-producer multi-consumer channels compatible with the
/// `crossbeam-channel` API subset this workspace uses: `unbounded()`,
/// cloneable `Sender`/`Receiver`, `recv(&self)` and draining iteration.
///
/// Implemented over `std::sync::mpsc` with the single consumer endpoint
/// shared behind an `Arc<Mutex<..>>`; receive order across multiple
/// consumers is whatever the lock hands out (same as upstream crossbeam,
/// where cross-consumer ordering is unspecified). Workloads that need
/// deterministic results must therefore tag messages and reduce in a
/// fixed order — exactly the `hadas-serve` contract.
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message, matching crossbeam.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a channel. Cloneable; the channel disconnects
    /// when every `Sender` is dropped.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing only when every receiver has been dropped.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying `msg` back on disconnection.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a channel. Cloneable: clones share one queue,
    /// so messages are distributed (each is seen by exactly one receiver).
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            // A poisoned queue mutex means another consumer panicked
            // mid-recv; treat the channel as disconnected rather than
            // propagating the panic (non-poisoning, like parking_lot).
            let guard = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv().map_err(|_| RecvError)
        }

        /// A draining blocking iterator: yields messages until the channel
        /// disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages (see [`Receiver::iter`]).
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_round_trip_in_order_for_one_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn cloned_receivers_partition_the_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let n = 100usize;
            let total: usize = crate::thread::scope(|s| {
                let a = s.spawn(move |_| rx.iter().count());
                let b = s.spawn(move |_| rx2.iter().count());
                for i in 0..n {
                    tx.send(i).unwrap();
                }
                drop(tx);
                a.join().unwrap() + b.join().unwrap()
            })
            .unwrap();
            assert_eq!(total, n, "every message is seen exactly once");
        }

        #[test]
        fn send_fails_once_receivers_are_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn recv_fails_once_senders_are_gone_and_queue_drains() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
