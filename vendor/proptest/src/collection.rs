//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Anything that can describe how many elements to generate.
pub trait IntoSizeRange {
    /// Lower and inclusive upper bound.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "collection::vec: empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec`s with element strategy `S` and a size range.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`: a vector whose length is
/// drawn from `size` and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use rand::SeedableRng;

    #[test]
    fn fixed_len_vec() {
        let s = vec(0usize..7, 5usize);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let v = s.sample(&mut rng);
            assert_eq!(v.len(), 5);
            assert!(v.iter().all(|&x| x < 7));
        }
    }

    #[test]
    fn ranged_len_vec() {
        let s = vec(0.0f64..1.0, 0..8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 8);
            seen.insert(v.len());
        }
        assert!(seen.len() > 3, "lengths should vary, saw {seen:?}");
    }

    #[test]
    fn nested_vec_of_vec() {
        let s = vec(vec(0usize..3, 2usize), 1..4);
        let mut rng = StdRng::seed_from_u64(3);
        let v = s.sample(&mut rng);
        assert!((1..4).contains(&v.len()));
        assert!(v.iter().all(|inner| inner.len() == 2));
    }
}
