//! Sampling strategies (no shrinking): the subset of `proptest::strategy`
//! this workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking; `sample`
/// draws one value directly from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`; resamples up to an internal limit.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_sample(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy producing `T`.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.inner.dyn_sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate rejected 10000 consecutive samples ({})", self.whence)
    }
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty list of boxed strategies.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! requires at least one choice");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.choices.len());
        self.choices[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `any::<T>()`: uniform over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for a primitive type.
pub struct AnyPrim<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim { _marker: std::marker::PhantomData }
    }
}

impl Strategy for AnyPrim<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(-1e9f64..1e9)
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrim<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim { _marker: std::marker::PhantomData }
    }
}

// ---------------------------------------------------------------------------
// Composite strategies
// ---------------------------------------------------------------------------

/// A `Vec` of strategies samples element-wise (upstream proptest has the
/// same impl; the workspace builds `Vec<BoxedStrategy<usize>>` genomes).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

// ---------------------------------------------------------------------------
// String strategies from simple regex-like patterns
// ---------------------------------------------------------------------------

/// `&str` patterns act as string strategies, supporting the subset of regex
/// the workspace uses: literal characters, `[a-b...]` character classes, and
/// `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers (with bounded repetition
/// for `*` / `+`).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for elem in &elements {
            let n = rng.gen_range(elem.min..=elem.max);
            for _ in 0..n {
                let idx = rng.gen_range(0..elem.chars.len());
                out.push(elem.chars[idx]);
            }
        }
        out
    }
}

struct PatternElem {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternElem> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elems = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = if chars[i] == '[' {
            // Character class: singles and `a-b` ranges.
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    for c in lo..=hi {
                        set.push(c);
                    }
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            i += 1; // closing ']'
            set
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        // Quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
            let close = close.unwrap_or(chars.len().saturating_sub(1));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                (lo.trim().parse().unwrap_or(0), hi.trim().parse().unwrap_or(8))
            } else {
                let n = body.trim().parse().unwrap_or(1);
                (n, n)
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };
        if !set.is_empty() {
            elems.push(PatternElem { chars: set, min, max });
        }
    }
    elems
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn range_strategy_samples_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (5usize..9).sample(&mut r);
            assert!((5..9).contains(&x));
        }
    }

    #[test]
    fn vec_of_boxed_strategies_samples_elementwise() {
        let cards = [3usize, 5, 2];
        let strats: Vec<BoxedStrategy<usize>> = cards.iter().map(|&c| (0..c).boxed()).collect();
        let mut r = rng();
        for _ in 0..50 {
            let genes = strats.sample(&mut r);
            assert_eq!(genes.len(), 3);
            for (g, &c) in genes.iter().zip(cards.iter()) {
                assert!(*g < c);
            }
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (0usize..4).prop_map(|x| x * 10);
        let mut r = rng();
        for _ in 0..20 {
            assert_eq!(s.sample(&mut r) % 10, 0);
        }
    }

    #[test]
    fn pattern_with_class_and_counts() {
        let elems = parse_pattern("[ -~]{0,16}");
        assert_eq!(elems.len(), 1);
        assert_eq!(elems[0].min, 0);
        assert_eq!(elems[0].max, 16);
        assert_eq!(elems[0].chars.len(), (b'~' - b' ') as usize + 1);
    }

    #[test]
    fn filter_rejects_until_accepted() {
        let s = (0usize..100).prop_filter("even", |x| x % 2 == 0);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r) % 2, 0);
        }
    }

    #[test]
    fn flat_map_dependent_sampling() {
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..10, n));
        let mut r = rng();
        for _ in 0..50 {
            let v = s.sample(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }
}
