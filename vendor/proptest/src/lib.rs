//! Offline-vendored, API-compatible subset of `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use, with two simplifications relative to upstream:
//!
//! - **Deterministic sampling**: each `proptest!` test derives its RNG seed
//!   from the test function's name, so failures reproduce exactly without a
//!   persistence file (`.proptest-regressions` files are ignored).
//! - **No shrinking**: a failing case reports the panic message from the
//!   first failing input rather than a minimized one.
//!
//! Supported surface: range strategies over ints/floats, `Just`, `any::<T>()`,
//! tuples, `prop_map` / `prop_flat_map` / `prop_filter` / `.boxed()`,
//! `collection::vec`, simple `[a-b]{m,n}` string regex strategies,
//! `prop_oneof!`, `proptest!`, `prop_assert*!`, `prop_assume!`, and
//! `ProptestConfig::with_cases`.

pub mod strategy;

pub mod collection;

/// Re-export used by macro expansions so test crates don't need their own
/// `rand` dependency. Not a public API.
#[doc(hidden)]
pub use rand as __rand;

/// Test-runner types used by the `proptest!` expansion.
pub mod test_runner {
    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected (assumption-failed) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Self::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single test case did not succeed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input; try another.
        Reject(String),
        /// `prop_assert*!` failed; the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a rejection (assumption failure).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// True if this is a rejection rather than a failure.
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Deterministic per-test seed: FNV-1a over the test path.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Upstream re-exports `proptest` itself as `prop` in the prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Run property tests: `proptest! { #[test] fn name(x in strategy) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(
                            let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(e) if e.is_reject() => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest: too many rejected inputs ({} rejects, {} passes)",
                                rejected, passed
                            );
                        }
                    }
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case #{} failed: {}", passed + 1, e);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure reports the condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject the current input (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_boxed_compose(v in crate::collection::vec((0usize..5).boxed(), 4)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_picks_from_all(x in prop_oneof![Just(1usize), Just(2usize)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn string_regex_shape(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_test_seed() {
        assert_eq!(
            crate::test_runner::seed_for("a::b::c"),
            crate::test_runner::seed_for("a::b::c")
        );
        assert_ne!(
            crate::test_runner::seed_for("a::b::c"),
            crate::test_runner::seed_for("a::b::d")
        );
    }
}
