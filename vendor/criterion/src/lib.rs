//! Offline-vendored, API-compatible subset of `criterion`.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` call surface the
//! workspace benches use, with a simple wall-clock measurement loop instead
//! of upstream's statistical machinery: each benchmark is warmed up briefly,
//! then timed over `sample_size` batches, and the median per-iteration time
//! is printed.

use std::time::{Duration, Instant};

/// How batched inputs are sized in `iter_batched`; accepted for
/// compatibility, all variants behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher { samples: Vec::new(), iters_per_sample: 1, sample_count }
    }

    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so one sample takes ≳1ms, capped to keep benches fast.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
        self.iters_per_sample = 1;
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let per_iter = median.as_nanos() as f64 / self.iters_per_sample as f64;
        println!("{name:<40} {:>12} /iter  ({} samples)", fmt_ns(per_iter), self.samples.len());
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level bench context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name.into()));
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Define a bench group: `criterion_group!(benches, fn_a, fn_b)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        Criterion::default().sample_size(2).bench_function("t", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0usize;
        Criterion::default().sample_size(3).bench_function("t", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups, 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut n = 0;
        g.bench_function("inner", |b| b.iter(|| n += 1));
        g.finish();
        assert!(n > 0);
    }
}
