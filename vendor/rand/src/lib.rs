//! Offline-vendored, API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies are vendored as small, deterministic
//! stand-ins (see `vendor/README.md`). This crate reimplements exactly the
//! surface the workspace uses:
//!
//! - [`RngCore`] / [`SeedableRng`] / [`Rng`] traits,
//! - [`rngs::StdRng`], a xoshiro256** generator seeded via SplitMix64,
//! - `Rng::gen_range` over integer and float ranges, and `Rng::gen_bool`.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` yields a stream that is a
//! pure function of `s` on every platform. The workspace's seed-determinism
//! tests rely on this.
//!
//! Note this is NOT the upstream `rand` stream: numbers differ from the real
//! crates.io `rand`, but all statistical and determinism properties the
//! workspace relies on hold.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be reproducibly constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 exactly like
    /// upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling from a range; mirrors `rand::distributions::uniform::SampleRange`.
///
/// Implemented as blanket impls over [`SampleUniform`] types so type
/// inference behaves exactly like upstream (`R` determines `T`).
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a low/high pair; mirrors
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Sample from `[low, high)` (`inclusive = false`) or `[low, high]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_between(rng, low, high, true)
    }
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire-style widening
/// multiply with rejection).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "uniform_u64_below: empty span");
    // Widening multiply; reject the biased low region.
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty inclusive range");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Whole-domain range: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                    let off = uniform_u64_below(rng, span as u64);
                    ((low as i128) + off as i128) as $t
                } else {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u64;
                    let off = uniform_u64_below(rng, span);
                    ((low as i128) + off as i128) as $t
                }
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty float range");
                } else {
                    assert!(low < high, "gen_range: empty float range");
                }
                let u = $unit(rng);
                low + u * (high - low)
            }
        }
    )*};
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_float_sample_uniform!(f64, unit_f64; f32, unit_f32);

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    ///
    /// Not cryptographically secure; excellent statistical quality and a
    /// platform-independent stream, which is what the workspace's
    /// seed-determinism contract needs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Snapshot of the internal xoshiro256** state.
        ///
        /// Together with [`StdRng::from_state`], this lets callers
        /// checkpoint and resume a generator mid-stream (e.g. the HADAS
        /// search checkpoints). Upstream `rand` hides the state; our
        /// stand-in exposes it because resumable search is a workspace
        /// requirement and the state is just four words.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from a [`StdRng::state`] snapshot,
        /// continuing the stream exactly where the snapshot was taken.
        ///
        /// An all-zero state (a xoshiro fixed point, unreachable from any
        /// seed) is nudged to a valid state just like `from_seed`.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1],
                };
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, lane) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *lane = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            a.next_u64();
        }
        let snapshot = a.state();
        let tail: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snapshot);
        let resumed: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed, "from_state must continue the exact stream");
        // The all-zero fixed point is nudged, not propagated.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(11);
        // Must not hang or panic on the whole-u64 domain.
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }
}
