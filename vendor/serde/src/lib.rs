//! Offline-vendored, API-compatible subset of `serde`.
//!
//! The real `serde` streams values through `Serializer`/`Deserializer`
//! visitors. This stand-in collapses the data model to a JSON-shaped
//! [`Value`] tree, which is all the workspace needs (`serde_json` is the
//! only format in use):
//!
//! - [`Serialize`] renders a value into a [`Value`],
//! - [`Deserialize`] reconstructs a value from a [`Value`],
//! - `#[derive(Serialize, Deserialize)]` (from the vendored `serde_derive`)
//!   generates field-by-field impls with the same externally-tagged enum
//!   representation as upstream serde.
//!
//! Struct serialization preserves field declaration order, so serialized
//! output is byte-deterministic — a property the workspace's
//! seed-determinism tests assert on.

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{Number, Value};

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }

    /// Type-mismatch helper used by the derive expansion.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into the JSON-shaped [`Value`] data model.
pub trait Serialize {
    /// Convert to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the JSON-shaped [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_de_int {
    ($($t:ty => $variant:ident as $repr:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$variant(*self as $repr))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_int_lossless::<$t>()
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

ser_de_int!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64
);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // serde_json encodes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

// 128-bit integers: used for `Duration::as_millis` timings. Values that fit
// in 64 bits (all realistic timings) round-trip losslessly.
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(x) => Value::Number(Number::U64(x)),
            Err(_) => Value::Number(Number::F64(*self as f64)),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(Number::U64(x)) => Ok(*x as u128),
            Value::Number(Number::I64(x)) if *x >= 0 => Ok(*x as u128),
            Value::Number(Number::F64(x)) if *x >= 0.0 && x.fract() == 0.0 => Ok(*x as u128),
            _ => Err(DeError::expected("u128", v)),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(x) => Value::Number(Number::I64(x)),
            Err(_) => Value::Number(Number::F64(*self as f64)),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(Number::U64(x)) => Ok(*x as i128),
            Value::Number(Number::I64(x)) => Ok(*x as i128),
            Value::Number(Number::F64(x)) if x.fract() == 0.0 => Ok(*x as i128),
            _ => Err(DeError::expected("i128", v)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => {
                s.chars().next().ok_or_else(|| DeError::expected("char", v))
            }
            _ => Err(DeError::expected("char", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($idx),+].len();
                        if items.len() != expect {
                            return Err(DeError::custom(format!(
                                "expected {expect}-tuple, got array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("tuple (array)", v)),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output (upstream serde_json's default
        // BTreeMap-backed Map behaves the same way).
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Support machinery for the derive expansion. Not a public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Value};

    /// Look up a field in an object, by key.
    pub fn get_field<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::custom(format!("missing field `{key}`")))
    }

    /// Object accessor with a type-mismatch error.
    pub fn as_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
        match v {
            Value::Object(entries) => Ok(entries),
            _ => Err(DeError::custom(format!("expected object for {ty}, got {}", v.kind()))),
        }
    }

    /// Array accessor with a type-mismatch error.
    pub fn as_array<'a>(v: &'a Value, ty: &str) -> Result<&'a [Value], DeError> {
        match v {
            Value::Array(items) => Ok(items),
            _ => Err(DeError::custom(format!("expected array for {ty}, got {}", v.kind()))),
        }
    }
}
