//! JSON-shaped value tree shared by the vendored `serde` and `serde_json`.

/// A JSON number: integers keep full 64-bit precision (so `u64` seeds
/// round-trip losslessly), floats are `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Negative or signed integer.
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating point.
    F64(f64),
}

/// Numeric equality: `I64(1) == U64(1)` (the same JSON text parses to either
/// depending on provenance), while integers and floats stay distinct, like
/// upstream serde_json.
impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (I64(a), U64(b)) | (U64(b), I64(a)) => a >= 0 && a as u64 == b,
            (F64(_), _) | (_, F64(_)) => false,
        }
    }
}

impl Number {
    /// Lossy view as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(x) => x as f64,
            Number::U64(x) => x as f64,
            Number::F64(x) => x,
        }
    }

    /// Lossless conversion into an integer type, if representable.
    pub fn as_int_lossless<T: TryFrom<i64> + TryFrom<u64>>(&self) -> Option<T> {
        match *self {
            Number::I64(x) => T::try_from(x).ok(),
            Number::U64(x) => T::try_from(x).ok(),
            Number::F64(x) => {
                if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
                    if x < 0.0 {
                        T::try_from(x as i64).ok()
                    } else {
                        T::try_from(x as u64).ok()
                    }
                } else {
                    None
                }
            }
        }
    }
}

/// A JSON value. Objects preserve insertion order, which makes struct
/// serialization byte-deterministic in field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (see [`Number`]).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map of string keys to values.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow as an object's entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow as an array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// View as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// View as `u64`, if this is a losslessly-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_int_lossless::<u64>(),
            _ => None,
        }
    }

    /// Look up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

macro_rules! value_from_int {
    ($($t:ty => $variant:ident as $repr:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Self {
                Value::Number(Number::$variant(x as $repr))
            }
        }
    )*};
}

value_from_int!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64
);

impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::Number(Number::F64(x as f64))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(Number::F64(x))
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(items: &[T]) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&Vec<T>> for Value {
    fn from(items: &Vec<T>) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}
