//! Offline-vendored, API-compatible subset of the `syn` crate.
//!
//! [`parse_file`] lexes source text through the vendored `proc-macro2`
//! and parses it into a [`File`] of [`Item`]s: functions (with their
//! attribute lists, signatures, and body token streams), modules
//! (recursively), impl and trait blocks (whose methods are parsed as
//! nested items), structs/enums (with field tokens), and everything
//! else as verbatim items. Expression-level constructs stay as token
//! trees — deliberate: the consumers in this workspace (the
//! `hadas-lint` determinism audit) walk spanned token trees under an
//! item-level map of attributes and `#[cfg(test)]` scopes, which is the
//! subset of upstream `syn` they need.
//!
//! Differences from upstream (see `vendor/README.md`): no expression
//! AST, no generics model, no visitor traits; item payloads expose raw
//! [`TokenStream`]s plus idents/attrs/spans.

use proc_macro2::{Delimiter, Ident, Span, TokenStream, TokenTree};
use std::fmt;

/// A parse failure, with the span it was detected at when known.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    span: Option<Span>,
}

impl Error {
    /// Creates an error message anchored at `span`.
    pub fn new(span: Span, message: impl fmt::Display) -> Error {
        Error { message: message.to_string(), span: Some(span) }
    }

    /// The span the error was detected at, if known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => {
                write!(f, "{} at line {} column {}", self.message, s.start().line, s.start().column)
            }
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Parse result alias, as upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// One `#[…]` (or inner `#![…]`) attribute: the tokens between the
/// brackets, plus the span of the whole attribute.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Tokens inside the brackets, e.g. `cfg ( test )`.
    pub tokens: TokenStream,
    /// Span of the attribute.
    pub span: Span,
}

impl Attribute {
    /// The attribute's leading path ident (`cfg`, `derive`, `allow`, …),
    /// if it starts with one.
    pub fn path_ident(&self) -> Option<String> {
        match self.tokens.iter().next() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    /// Whether this is `#[cfg(test)]` (or any `cfg(…)` whose arguments
    /// mention `test`, covering `cfg(any(test, feature = "…"))`).
    pub fn is_cfg_test(&self) -> bool {
        if self.path_ident().as_deref() != Some("cfg") {
            return false;
        }
        fn mentions_test(ts: &TokenStream) -> bool {
            ts.iter().any(|t| match t {
                TokenTree::Ident(i) => *i == "test",
                TokenTree::Group(g) => mentions_test(&g.stream()),
                _ => false,
            })
        }
        mentions_test(&self.tokens)
    }
}

/// A named function item (free, impl method, or trait default method).
#[derive(Debug, Clone)]
pub struct ItemFn {
    /// Attributes on the function.
    pub attrs: Vec<Attribute>,
    /// The function's signature.
    pub sig: Signature,
    /// The body's token stream (empty for bodiless trait methods).
    pub block: TokenStream,
    /// Span of the `fn` keyword.
    pub span: Span,
}

/// The parsed parts of a function signature.
#[derive(Debug, Clone)]
pub struct Signature {
    /// The function name.
    pub ident: Ident,
    /// Every signature token after the name (generics, args, return
    /// type, where-clause) up to the body or `;`.
    pub tokens: TokenStream,
}

/// A `mod` item.
#[derive(Debug, Clone)]
pub struct ItemMod {
    /// Attributes on the module.
    pub attrs: Vec<Attribute>,
    /// The module name.
    pub ident: Ident,
    /// Parsed items for an inline `mod m { … }`; `None` for `mod m;`.
    pub content: Option<Vec<Item>>,
    /// Span of the `mod` keyword.
    pub span: Span,
}

/// An `impl` or `trait` block; methods are parsed as nested items.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    /// Attributes on the block.
    pub attrs: Vec<Attribute>,
    /// Header tokens (`impl<'a> Trait for Type` / `trait Name: Bound`).
    pub header: TokenStream,
    /// The block's items (methods parse as [`Item::Fn`]).
    pub items: Vec<Item>,
    /// Span of the `impl`/`trait` keyword.
    pub span: Span,
}

/// A `struct`, `enum`, or `union` definition.
#[derive(Debug, Clone)]
pub struct ItemStruct {
    /// Attributes on the type.
    pub attrs: Vec<Attribute>,
    /// The type name.
    pub ident: Ident,
    /// Field/variant tokens: the `{ … }` or `( … )` body contents
    /// (empty for unit structs).
    pub fields: TokenStream,
    /// Span of the defining keyword.
    pub span: Span,
}

/// Any other item (use, const, static, type alias, macro definition,
/// extern block…), kept verbatim.
#[derive(Debug, Clone)]
pub struct ItemVerbatim {
    /// Attributes on the item.
    pub attrs: Vec<Attribute>,
    /// The item's defining keyword (`use`, `const`, `macro_rules`, …)
    /// when one was recognized.
    pub keyword: Option<String>,
    /// The raw tokens of the item (excluding attributes).
    pub tokens: TokenStream,
    /// Span of the first token.
    pub span: Span,
}

/// One top-level (or nested) item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `fn`.
    Fn(ItemFn),
    /// `mod`.
    Mod(ItemMod),
    /// `impl` or `trait` block.
    Impl(ItemImpl),
    /// `struct` / `enum` / `union`.
    Struct(ItemStruct),
    /// Everything else, verbatim.
    Verbatim(ItemVerbatim),
}

impl Item {
    /// The attributes on the item, whichever variant it is.
    pub fn attrs(&self) -> &[Attribute] {
        match self {
            Item::Fn(i) => &i.attrs,
            Item::Mod(i) => &i.attrs,
            Item::Impl(i) => &i.attrs,
            Item::Struct(i) => &i.attrs,
            Item::Verbatim(i) => &i.attrs,
        }
    }

    /// The item's anchoring span.
    pub fn span(&self) -> Span {
        match self {
            Item::Fn(i) => i.span,
            Item::Mod(i) => i.span,
            Item::Impl(i) => i.span,
            Item::Struct(i) => i.span,
            Item::Verbatim(i) => i.span,
        }
    }
}

/// A parsed source file: inner attributes plus items.
#[derive(Debug, Clone)]
pub struct File {
    /// Inner (`#![…]`) attributes.
    pub attrs: Vec<Attribute>,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Parses a whole source file.
///
/// # Errors
///
/// Returns an [`Error`] on lexing failures (unbalanced delimiters,
/// unterminated literals) or on a malformed item frame.
pub fn parse_file(src: &str) -> Result<File> {
    let stream: TokenStream = src
        .parse()
        .map_err(|e: proc_macro2::LexError| Error { message: e.to_string(), span: None })?;
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut p = Parser { tokens, pos: 0 };
    let attrs = p.inner_attributes();
    let items = p.items()?;
    Ok(File { attrs, items })
}

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&TokenTree> {
        self.tokens.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_ident(&self) -> Option<String> {
        match self.peek() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    /// Leading `#![…]` inner attributes (file or module level).
    fn inner_attributes(&mut self) -> Vec<Attribute> {
        let mut attrs = Vec::new();
        while self.peek_punct('#') {
            let Some(TokenTree::Punct(bang)) = self.peek_at(1) else { break };
            if bang.as_char() != '!' {
                break;
            }
            let Some(TokenTree::Group(g)) = self.peek_at(2) else { break };
            if g.delimiter() != Delimiter::Bracket {
                break;
            }
            let span = g.span();
            let tokens = g.stream();
            attrs.push(Attribute { tokens, span });
            self.pos += 3;
        }
        attrs
    }

    /// Leading `#[…]` outer attributes before an item.
    fn outer_attributes(&mut self) -> Vec<Attribute> {
        let mut attrs = Vec::new();
        while self.peek_punct('#') {
            let Some(TokenTree::Group(g)) = self.peek_at(1) else { break };
            if g.delimiter() != Delimiter::Bracket {
                break;
            }
            attrs.push(Attribute { tokens: g.stream(), span: g.span() });
            self.pos += 2;
        }
        attrs
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, …).
    fn visibility(&mut self) {
        if self.peek_ident().as_deref() == Some("pub") {
            self.bump();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.bump();
                }
            }
        }
    }

    fn items(&mut self) -> Result<Vec<Item>> {
        let mut items = Vec::new();
        while self.peek().is_some() {
            items.push(self.item()?);
        }
        Ok(items)
    }

    fn item(&mut self) -> Result<Item> {
        let attrs = self.outer_attributes();
        self.visibility();

        let span = self.peek().map_or_else(Span::call_site, TokenTree::span);
        // Qualifier keywords that may precede the defining keyword.
        let mut keyword = None;
        let mut qualifier_budget = 4usize; // const/async/unsafe/extern "C"
        while let Some(word) = self.peek_ident() {
            match word.as_str() {
                "fn" | "mod" | "impl" | "trait" | "struct" | "enum" | "union" | "use"
                | "static" | "type" | "macro_rules" | "macro" => {
                    keyword = Some(word);
                    break;
                }
                "const" => {
                    // `const fn` is a qualifier; `const NAME` is an item.
                    if matches!(self.peek_at(1), Some(TokenTree::Ident(i)) if *i == "fn") {
                        self.bump();
                    } else {
                        keyword = Some(word);
                        break;
                    }
                }
                "async" | "unsafe" | "extern" | "auto" | "default" => {
                    self.bump();
                    // `extern "C"` carries a literal.
                    if matches!(self.peek(), Some(TokenTree::Literal(_))) {
                        self.bump();
                    }
                }
                _ => break,
            }
            qualifier_budget -= 1;
            if qualifier_budget == 0 {
                break;
            }
        }

        match keyword.as_deref() {
            Some("fn") => self.item_fn(attrs, span),
            Some("mod") => self.item_mod(attrs, span),
            Some("impl") | Some("trait") => self.item_impl(attrs, span),
            Some("struct") | Some("enum") | Some("union") => self.item_struct(attrs, span),
            _ => self.item_verbatim(attrs, keyword, span),
        }
    }

    fn item_fn(&mut self, attrs: Vec<Attribute>, span: Span) -> Result<Item> {
        self.bump(); // `fn`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i,
            other => {
                return Err(Error {
                    message: format!("expected function name, found {other:?}"),
                    span: Some(span),
                })
            }
        };
        // Signature tokens up to the body brace or a `;` (trait method).
        let mut sig_tokens = TokenStream::new();
        loop {
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let block = g.stream();
                    self.bump();
                    return Ok(Item::Fn(ItemFn {
                        attrs,
                        sig: Signature { ident, tokens: sig_tokens },
                        block,
                        span,
                    }));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    self.bump();
                    return Ok(Item::Fn(ItemFn {
                        attrs,
                        sig: Signature { ident, tokens: sig_tokens },
                        block: TokenStream::new(),
                        span,
                    }));
                }
                Some(_) => {
                    let t = self.bump().into_iter();
                    sig_tokens.extend(t);
                }
                None => {
                    return Err(Error {
                        message: "function signature with no body".into(),
                        span: Some(span),
                    })
                }
            }
        }
    }

    fn item_mod(&mut self, attrs: Vec<Attribute>, span: Span) -> Result<Item> {
        self.bump(); // `mod`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i,
            other => {
                return Err(Error {
                    message: format!("expected module name, found {other:?}"),
                    span: Some(span),
                })
            }
        };
        match self.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                self.bump();
                let mut inner = Parser { tokens: body, pos: 0 };
                let mut mod_attrs = attrs;
                mod_attrs.extend(inner.inner_attributes());
                let content = inner.items()?;
                Ok(Item::Mod(ItemMod { attrs: mod_attrs, ident, content: Some(content), span }))
            }
            _ => {
                // `mod name;` — consume the semicolon if present.
                if self.peek_punct(';') {
                    self.bump();
                }
                Ok(Item::Mod(ItemMod { attrs, ident, content: None, span }))
            }
        }
    }

    fn item_impl(&mut self, attrs: Vec<Attribute>, span: Span) -> Result<Item> {
        self.bump(); // `impl` / `trait`
        let mut header = TokenStream::new();
        loop {
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    self.bump();
                    let mut inner = Parser { tokens: body, pos: 0 };
                    let items = inner.items()?;
                    return Ok(Item::Impl(ItemImpl { attrs, header, items, span }));
                }
                Some(_) => {
                    let t = self.bump().into_iter();
                    header.extend(t);
                }
                None => {
                    return Err(Error {
                        message: "impl/trait with no body".into(),
                        span: Some(span),
                    })
                }
            }
        }
    }

    fn item_struct(&mut self, attrs: Vec<Attribute>, span: Span) -> Result<Item> {
        self.bump(); // `struct` / `enum` / `union`
        let ident = match self.bump() {
            Some(TokenTree::Ident(i)) => i,
            other => {
                return Err(Error {
                    message: format!("expected type name, found {other:?}"),
                    span: Some(span),
                })
            }
        };
        let mut fields = TokenStream::new();
        loop {
            match self.peek() {
                // `struct S { … }` / `enum E { … }` field or variant body.
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    fields = g.stream();
                    self.bump();
                    return Ok(Item::Struct(ItemStruct { attrs, ident, fields, span }));
                }
                // Tuple struct `struct S(…)` — body then `;`.
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    fields = g.stream();
                    self.bump();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    self.bump();
                    return Ok(Item::Struct(ItemStruct { attrs, ident, fields, span }));
                }
                // Generics / where-clause tokens.
                Some(_) => {
                    self.bump();
                }
                None => return Ok(Item::Struct(ItemStruct { attrs, ident, fields, span })),
            }
        }
    }

    /// Everything else: consume to the first top-level `;`, or — for
    /// macro definitions and extern blocks — a trailing brace group.
    fn item_verbatim(
        &mut self,
        attrs: Vec<Attribute>,
        keyword: Option<String>,
        span: Span,
    ) -> Result<Item> {
        let mut tokens = TokenStream::new();
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    self.bump();
                    return Ok(Item::Verbatim(ItemVerbatim { attrs, keyword, tokens, span }));
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let t = self.bump().into_iter();
                    tokens.extend(t);
                    // A brace group ends items like `macro_rules! m { … }`
                    // unless a `;` immediately follows (e.g. `= { … };`).
                    if self.peek_punct(';') {
                        self.bump();
                    }
                    return Ok(Item::Verbatim(ItemVerbatim { attrs, keyword, tokens, span }));
                }
                Some(_) => {
                    let t = self.bump().into_iter();
                    tokens.extend(t);
                }
                None => return Ok(Item::Verbatim(ItemVerbatim { attrs, keyword, tokens, span })),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_functions_with_attrs_and_bodies() {
        let file = parse_file("//! doc\n#[inline]\npub fn f(x: u32) -> u32 { x + 1 }\nfn g() {}\n")
            .expect("parses");
        assert_eq!(file.items.len(), 2);
        let Item::Fn(f) = &file.items[0] else { panic!("expected fn") };
        assert!(f.sig.ident == "f");
        assert_eq!(f.attrs.len(), 1);
        assert_eq!(f.attrs[0].path_ident().as_deref(), Some("inline"));
        assert!(f.block.to_string().contains("x + 1"));
        assert_eq!(f.span.start().line, 3);
    }

    #[test]
    fn cfg_test_modules_parse_recursively() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { assert!(true); }\n}\n";
        let file = parse_file(src).expect("parses");
        assert_eq!(file.items.len(), 2);
        let Item::Mod(m) = &file.items[1] else { panic!("expected mod") };
        assert!(m.attrs.iter().any(Attribute::is_cfg_test));
        let content = m.content.as_ref().expect("inline");
        assert_eq!(content.len(), 2, "{content:?}");
        assert!(matches!(&content[1], Item::Fn(f) if f.sig.ident == "t"));
    }

    #[test]
    fn impl_and_trait_methods_are_nested_items() {
        let src = "struct S { map: u32 }\nimpl S {\n    pub fn m(&self) -> u32 { self.map }\n}\ntrait T {\n    fn required(&self);\n    fn provided(&self) -> u32 { 7 }\n}\n";
        let file = parse_file(src).expect("parses");
        assert_eq!(file.items.len(), 3);
        let Item::Impl(i) = &file.items[1] else { panic!("expected impl") };
        assert_eq!(i.items.len(), 1);
        let Item::Impl(t) = &file.items[2] else { panic!("expected trait") };
        assert_eq!(t.items.len(), 2);
        let Item::Fn(req) = &t.items[0] else { panic!("fn") };
        assert!(req.block.is_empty(), "bodiless trait method");
    }

    #[test]
    fn structs_enums_and_verbatim_items() {
        let src = "use std::collections::HashMap;\npub struct P(pub u32);\npub enum E { A, B(u32) }\npub const N: usize = 3;\nstatic S: u32 = 1;\npub type Alias = u32;\n";
        let file = parse_file(src).expect("parses");
        assert_eq!(file.items.len(), 6);
        assert!(matches!(&file.items[0], Item::Verbatim(v) if v.keyword.as_deref() == Some("use")));
        assert!(matches!(&file.items[1], Item::Struct(s) if s.ident == "P"));
        assert!(matches!(&file.items[2], Item::Struct(e) if e.ident == "E"));
        assert!(
            matches!(&file.items[3], Item::Verbatim(v) if v.keyword.as_deref() == Some("const"))
        );
    }

    #[test]
    fn const_fn_and_generics_parse() {
        let src = "pub const fn zero<T: Default>() -> T where T: Clone { T::default() }\n";
        let file = parse_file(src).expect("parses");
        let Item::Fn(f) = &file.items[0] else { panic!("fn") };
        assert!(f.sig.ident == "zero");
        assert!(f.sig.tokens.to_string().contains("where"));
    }

    #[test]
    fn macro_rules_definitions_are_verbatim() {
        let src = "macro_rules! m { ($x:expr) => { $x + 1 }; }\nfn after() {}\n";
        let file = parse_file(src).expect("parses");
        assert_eq!(file.items.len(), 2);
        assert!(matches!(
            &file.items[0],
            Item::Verbatim(v) if v.keyword.as_deref() == Some("macro_rules")
        ));
        assert!(matches!(&file.items[1], Item::Fn(_)));
    }

    #[test]
    fn lex_errors_surface_as_parse_errors() {
        assert!(parse_file("fn broken( {").is_err());
    }
}
