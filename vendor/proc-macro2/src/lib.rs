//! Offline-vendored, API-compatible subset of the `proc-macro2` crate.
//!
//! Provides a standalone Rust lexer: [`TokenStream::from_str`] turns
//! source text into a tree of [`TokenTree`]s ([`Group`] / [`Ident`] /
//! [`Punct`] / [`Literal`]) whose [`Span`]s carry real line/column
//! positions. This is the substrate `syn` (also vendored) parses items
//! from and the substrate `hadas-lint`'s determinism audit resolves
//! findings to `file:line` with.
//!
//! Differences from upstream (see `vendor/README.md`):
//! - spans always carry line/column (upstream needs the `span-locations`
//!   feature);
//! - doc comments are skipped like ordinary comments instead of being
//!   converted to `#[doc = "…"]` attributes;
//! - no interning, no `proc_macro` bridging, no `Span::join`.

use std::fmt;
use std::str::FromStr;

/// A line/column position in the lexed source.
///
/// `line` is 1-based; `column` is a 0-based UTF-8 character offset,
/// matching upstream's `span-locations` behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LineColumn {
    /// 1-based source line.
    pub line: usize,
    /// 0-based character column.
    pub column: usize,
}

/// A region of source code attached to every token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    start: LineColumn,
    end: LineColumn,
}

impl Span {
    /// A span pointing at nothing in particular (line 1, column 0) —
    /// used for synthesized tokens.
    pub fn call_site() -> Span {
        Span { start: LineColumn { line: 1, column: 0 }, end: LineColumn { line: 1, column: 0 } }
    }

    /// Position of the first character of the spanned region.
    pub fn start(&self) -> LineColumn {
        self.start
    }

    /// Position one past the last character of the spanned region.
    pub fn end(&self) -> LineColumn {
        self.end
    }
}

/// Which bracket pair delimits a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( … )`
    Parenthesis,
    /// `{ … }`
    Brace,
    /// `[ … ]`
    Bracket,
    /// An invisible delimiter (never produced by the lexer; kept for
    /// API-shape compatibility).
    None,
}

/// Whether a [`Punct`] is immediately followed by another punctuation
/// character (`Joint`) or not (`Alone`) — upstream's model for
/// multi-character operators like `::` and `->`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Followed by whitespace, an identifier, a literal, or a delimiter.
    Alone,
    /// Glued to the next punctuation character.
    Joint,
}

/// A delimited token sequence, e.g. a function body's `{ … }`.
#[derive(Debug, Clone)]
pub struct Group {
    delimiter: Delimiter,
    stream: TokenStream,
    span: Span,
}

impl Group {
    /// Creates a group from parts (used by tests and `quote`).
    pub fn new(delimiter: Delimiter, stream: TokenStream) -> Group {
        Group { delimiter, stream, span: Span::call_site() }
    }

    /// The delimiter surrounding this group.
    pub fn delimiter(&self) -> Delimiter {
        self.delimiter
    }

    /// The tokens between the delimiters.
    pub fn stream(&self) -> TokenStream {
        self.stream.clone()
    }

    /// The span from the opening to the closing delimiter.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// A word: identifier or keyword.
#[derive(Debug, Clone)]
pub struct Ident {
    sym: String,
    span: Span,
}

impl Ident {
    /// Creates an identifier with the given span.
    pub fn new(sym: &str, span: Span) -> Ident {
        Ident { sym: sym.to_string(), span }
    }

    /// The identifier's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sym)
    }
}

impl<T: AsRef<str>> PartialEq<T> for Ident {
    fn eq(&self, other: &T) -> bool {
        self.sym == other.as_ref()
    }
}

/// A single punctuation character with its [`Spacing`].
#[derive(Debug, Clone)]
pub struct Punct {
    ch: char,
    spacing: Spacing,
    span: Span,
}

impl Punct {
    /// Creates a punctuation token.
    pub fn new(ch: char, spacing: Spacing) -> Punct {
        Punct { ch, spacing, span: Span::call_site() }
    }

    /// The punctuation character.
    pub fn as_char(&self) -> char {
        self.ch
    }

    /// Whether the next token is glued punctuation.
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// The token's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// A literal: string, raw string, byte string, char, byte, or number.
/// The original source text is kept verbatim in the repr.
#[derive(Debug, Clone)]
pub struct Literal {
    repr: String,
    span: Span,
}

impl Literal {
    /// The token's span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A single token tree: the lexer's unit of output.
#[derive(Debug, Clone)]
pub enum TokenTree {
    /// A delimited subsequence of tokens.
    Group(Group),
    /// An identifier or keyword.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// The span of this token (for groups, opening to closing delimiter).
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span(),
            TokenTree::Ident(i) => i.span(),
            TokenTree::Punct(p) => p.span(),
            TokenTree::Literal(l) => l.span(),
        }
    }
}

/// A sequence of [`TokenTree`]s.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    trees: Vec<TokenTree>,
}

impl TokenStream {
    /// An empty stream.
    pub fn new() -> TokenStream {
        TokenStream::default()
    }

    /// Whether the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Number of top-level token trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Iterates over the top-level token trees without consuming.
    pub fn iter(&self) -> std::slice::Iter<'_, TokenTree> {
        self.trees.iter()
    }
}

impl IntoIterator for TokenStream {
    type Item = TokenTree;
    type IntoIter = std::vec::IntoIter<TokenTree>;

    fn into_iter(self) -> Self::IntoIter {
        self.trees.into_iter()
    }
}

impl<'a> IntoIterator for &'a TokenStream {
    type Item = &'a TokenTree;
    type IntoIter = std::slice::Iter<'a, TokenTree>;

    fn into_iter(self) -> Self::IntoIter {
        self.trees.iter()
    }
}

impl FromIterator<TokenTree> for TokenStream {
    fn from_iter<I: IntoIterator<Item = TokenTree>>(iter: I) -> TokenStream {
        TokenStream { trees: iter.into_iter().collect() }
    }
}

impl Extend<TokenTree> for TokenStream {
    fn extend<I: IntoIterator<Item = TokenTree>>(&mut self, iter: I) {
        self.trees.extend(iter);
    }
}

impl fmt::Display for TokenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for tree in &self.trees {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            match tree {
                TokenTree::Group(g) => {
                    let (open, close) = match g.delimiter() {
                        Delimiter::Parenthesis => ("(", ")"),
                        Delimiter::Brace => ("{", "}"),
                        Delimiter::Bracket => ("[", "]"),
                        Delimiter::None => ("", ""),
                    };
                    write!(f, "{open} {} {close}", g.stream)?;
                }
                TokenTree::Ident(i) => write!(f, "{i}")?,
                TokenTree::Punct(p) => write!(f, "{}", p.as_char())?,
                TokenTree::Literal(l) => write!(f, "{l}")?,
            }
        }
        Ok(())
    }
}

/// A lexing failure with the position it occurred at.
#[derive(Debug, Clone)]
pub struct LexError {
    message: String,
    at: LineColumn,
}

impl LexError {
    /// The position the lexer stopped at.
    pub fn position(&self) -> LineColumn {
        self.at
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {} column {}", self.message, self.at.line, self.at.column)
    }
}

impl std::error::Error for LexError {}

impl FromStr for TokenStream {
    type Err = LexError;

    fn from_str(src: &str) -> Result<TokenStream, LexError> {
        Lexer::new(src).lex_all()
    }
}

/// The character classes the lexer distinguishes at a glance.
fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_punct_char(c: char) -> bool {
    matches!(
        c,
        '~' | '!'
            | '@'
            | '#'
            | '$'
            | '%'
            | '^'
            | '&'
            | '*'
            | '-'
            | '='
            | '+'
            | '|'
            | ';'
            | ':'
            | ','
            | '<'
            | '>'
            | '.'
            | '?'
            | '/'
            | '\''
    )
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { chars: src.chars().peekable(), line: 1, column: 0 }
    }

    fn here(&self) -> LineColumn {
        LineColumn { line: self.line, column: self.column }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn peek2(&mut self) -> Option<char> {
        let mut c = self.chars.clone();
        c.next();
        c.next()
    }

    fn peek3(&mut self) -> Option<char> {
        let mut c = self.chars.clone();
        c.next();
        c.next();
        c.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        match c {
            Some('\n') => {
                self.line += 1;
                self.column = 0;
            }
            Some(_) => self.column += 1,
            None => {}
        }
        c
    }

    fn error(&self, message: &str) -> LexError {
        LexError { message: message.to_string(), at: self.here() }
    }

    fn lex_all(&mut self) -> Result<TokenStream, LexError> {
        let (stream, closer) = self.lex_until(None)?;
        if closer.is_some() {
            return Err(self.error("unbalanced closing delimiter"));
        }
        Ok(stream)
    }

    /// Lexes tokens until end of input or the closing delimiter matching
    /// `open`. Returns the stream and the closing char consumed (if any).
    fn lex_until(&mut self, open: Option<char>) -> Result<(TokenStream, Option<char>), LexError> {
        let mut trees = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('/') if self.peek2() == Some('/') => {
                        while let Some(c) = self.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    Some('/') if self.peek2() == Some('*') => {
                        self.bump();
                        self.bump();
                        let mut depth = 1usize;
                        while depth > 0 {
                            match (self.peek(), self.peek2()) {
                                (Some('/'), Some('*')) => {
                                    self.bump();
                                    self.bump();
                                    depth += 1;
                                }
                                (Some('*'), Some('/')) => {
                                    self.bump();
                                    self.bump();
                                    depth -= 1;
                                }
                                (Some(_), _) => {
                                    self.bump();
                                }
                                (None, _) => return Err(self.error("unterminated block comment")),
                            }
                        }
                    }
                    _ => break,
                }
            }

            let start = self.here();
            let Some(c) = self.peek() else {
                if open.is_some() {
                    return Err(self.error("unexpected end of input inside delimiters"));
                }
                return Ok((TokenStream { trees }, None));
            };

            match c {
                '(' | '[' | '{' => {
                    self.bump();
                    let (inner, closer) = self.lex_until(Some(c))?;
                    let expected = match c {
                        '(' => ')',
                        '[' => ']',
                        _ => '}',
                    };
                    if closer != Some(expected) {
                        return Err(self.error("mismatched delimiter"));
                    }
                    let delimiter = match c {
                        '(' => Delimiter::Parenthesis,
                        '[' => Delimiter::Bracket,
                        _ => Delimiter::Brace,
                    };
                    trees.push(TokenTree::Group(Group {
                        delimiter,
                        stream: inner,
                        span: Span { start, end: self.here() },
                    }));
                }
                ')' | ']' | '}' => {
                    self.bump();
                    if open.is_none() {
                        return Err(self.error("unbalanced closing delimiter"));
                    }
                    return Ok((TokenStream { trees }, Some(c)));
                }
                '"' => trees.push(self.lex_string(start, String::new())?),
                'r' | 'b' if self.raw_or_byte_prefix() => {
                    trees.push(self.lex_prefixed_literal(start)?);
                }
                '\'' => trees.push(self.lex_quote(start)?),
                c if c.is_ascii_digit() => trees.push(self.lex_number(start)),
                c if is_ident_start(c) => {
                    let mut sym = String::new();
                    while let Some(c) = self.peek() {
                        if is_ident_continue(c) {
                            sym.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    trees.push(TokenTree::Ident(Ident {
                        sym,
                        span: Span { start, end: self.here() },
                    }));
                }
                c if is_punct_char(c) => {
                    self.bump();
                    let joint = self.peek().is_some_and(|n| is_punct_char(n) && n != '\'');
                    trees.push(TokenTree::Punct(Punct {
                        ch: c,
                        spacing: if joint { Spacing::Joint } else { Spacing::Alone },
                        span: Span { start, end: self.here() },
                    }));
                }
                _ => return Err(self.error("unexpected character")),
            }
        }
    }

    /// Whether the upcoming `r`/`b` starts a raw string, byte string,
    /// byte char, or raw identifier prefix rather than a plain ident.
    fn raw_or_byte_prefix(&mut self) -> bool {
        match (self.peek(), self.peek2()) {
            (Some('r'), Some('"')) | (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
            (Some('r'), Some('#')) => {
                // r#" raw string (r#ident raw identifiers fall through
                // and lex as `r` + `#` + ident).
                matches!(self.peek3(), Some('"') | Some('#'))
            }
            // `br"…"` / `br#"…"#`, but NOT identifiers like `branch`.
            (Some('b'), Some('r')) => matches!(self.peek3(), Some('"') | Some('#')),
            _ => false,
        }
    }

    /// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` after seeing
    /// the prefix start.
    fn lex_prefixed_literal(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        let mut repr = String::new();
        let mut raw = false;
        while let Some(c) = self.peek() {
            match c {
                'b' => {
                    repr.push(c);
                    self.bump();
                }
                'r' => {
                    raw = true;
                    repr.push(c);
                    self.bump();
                }
                _ => break,
            }
        }
        if !raw {
            return match self.peek() {
                Some('"') => self.lex_string(start, repr),
                Some('\'') => {
                    // Byte char: b'x', b'\n', b'\x41'.
                    repr.push('\'');
                    self.bump();
                    if self.peek() == Some('\\') {
                        repr.push('\\');
                        self.bump();
                        // The escaped char, then anything up to the close
                        // (covers multi-char escapes like \x41).
                        match self.bump() {
                            Some(c) => repr.push(c),
                            None => return Err(self.error("unterminated byte escape")),
                        }
                        loop {
                            match self.bump() {
                                Some('\'') => break,
                                Some(c) => repr.push(c),
                                None => return Err(self.error("unterminated byte literal")),
                            }
                        }
                        repr.push('\'');
                        return Ok(TokenTree::Literal(Literal {
                            repr,
                            span: Span { start, end: self.here() },
                        }));
                    }
                    match self.bump() {
                        Some(c) => repr.push(c),
                        None => return Err(self.error("unterminated byte literal")),
                    }
                    if self.bump() != Some('\'') {
                        return Err(self.error("unterminated byte literal"));
                    }
                    repr.push('\'');
                    Ok(TokenTree::Literal(Literal { repr, span: Span { start, end: self.here() } }))
                }
                _ => Err(self.error("malformed byte literal")),
            };
        }
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            repr.push('#');
            self.bump();
        }
        if self.peek() != Some('"') {
            return Err(self.error("malformed raw string"));
        }
        repr.push('"');
        self.bump();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated raw string")),
                Some('"') => {
                    let mut trailing = 0usize;
                    while trailing < hashes && self.peek() == Some('#') {
                        trailing += 1;
                        self.bump();
                    }
                    if trailing == hashes {
                        repr.push('"');
                        for _ in 0..hashes {
                            repr.push('#');
                        }
                        return Ok(TokenTree::Literal(Literal {
                            repr,
                            span: Span { start, end: self.here() },
                        }));
                    }
                    repr.push('"');
                    for _ in 0..trailing {
                        repr.push('#');
                    }
                }
                Some(c) => repr.push(c),
            }
        }
    }

    /// Lexes a `"…"` string (escape-aware), appending to `repr` which may
    /// already hold a `b` prefix.
    fn lex_string(&mut self, start: LineColumn, mut repr: String) -> Result<TokenTree, LexError> {
        repr.push('"');
        self.bump();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some('\\') => {
                    repr.push('\\');
                    match self.bump() {
                        Some(c) => repr.push(c),
                        None => return Err(self.error("unterminated string escape")),
                    }
                }
                Some('"') => {
                    repr.push('"');
                    return Ok(TokenTree::Literal(Literal {
                        repr,
                        span: Span { start, end: self.here() },
                    }));
                }
                Some(c) => repr.push(c),
            }
        }
    }

    /// Lexes a `'` token: a char literal (`'x'`, `'\n'`) or a lifetime
    /// (`'a` — emitted, as upstream does, as a joint `'` punct followed
    /// by an ident).
    fn lex_quote(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        // Decide char-literal vs lifetime by lookahead.
        let next = self.peek2();
        let after = self.peek3();
        let is_char = match next {
            Some('\\') => true,
            Some(c) if is_ident_start(c) => after == Some('\''),
            Some(_) => after == Some('\''),
            None => false,
        };
        if is_char {
            let mut repr = String::from("'");
            self.bump();
            if self.peek() == Some('\\') {
                repr.push('\\');
                self.bump();
                // The escaped char first (it may itself be a quote, as in
                // '\''), then anything up to the close — covering the
                // multi-char escapes \x41 and \u{10FFFF}.
                match self.bump() {
                    Some(c) => repr.push(c),
                    None => return Err(self.error("unterminated char escape")),
                }
                loop {
                    match self.bump() {
                        None => return Err(self.error("unterminated char escape")),
                        Some('\'') => {
                            repr.push('\'');
                            return Ok(TokenTree::Literal(Literal {
                                repr,
                                span: Span { start, end: self.here() },
                            }));
                        }
                        Some(c) => repr.push(c),
                    }
                }
            }
            match self.bump() {
                Some(c) => repr.push(c),
                None => return Err(self.error("unterminated char literal")),
            }
            if self.bump() != Some('\'') {
                return Err(self.error("unterminated char literal"));
            }
            repr.push('\'');
            return Ok(TokenTree::Literal(Literal {
                repr,
                span: Span { start, end: self.here() },
            }));
        }
        // Lifetime: joint quote + ident.
        self.bump();
        Ok(TokenTree::Punct(Punct {
            ch: '\'',
            spacing: Spacing::Joint,
            span: Span { start, end: self.here() },
        }))
    }

    /// Lexes a numeric literal: decimal, float (with exponent), hex,
    /// octal, binary, underscores, and type suffixes.
    fn lex_number(&mut self, start: LineColumn) -> TokenTree {
        let mut repr = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                repr.push(c);
                self.bump();
            } else if c == '.' {
                // A dot continues the number only for `1.`, `1.0`, never
                // for `1..x` (range) or `1.method()` (call on int).
                match self.peek2() {
                    Some('.') => break,
                    Some(c2) if is_ident_start(c2) => break,
                    _ => {
                        repr.push('.');
                        self.bump();
                    }
                }
            } else if (c == '+' || c == '-')
                && (repr.ends_with('e') || repr.ends_with('E'))
                && repr.starts_with(|d: char| d.is_ascii_digit())
                && !repr.starts_with("0x")
                && !repr.starts_with("0b")
                && !repr.starts_with("0o")
            {
                // Signed float exponent: 1e-3.
                repr.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenTree::Literal(Literal { repr, span: Span { start, end: self.here() } })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> TokenStream {
        src.parse().expect("lexes")
    }

    fn flat_text(ts: &TokenStream) -> String {
        ts.to_string()
    }

    #[test]
    fn lexes_idents_puncts_and_groups() {
        let ts = lex("fn f(x: u32) -> u32 { x + 1 }");
        assert_eq!(ts.len(), 7, "{ts:?}");
        let TokenTree::Ident(first) = &ts.iter().next().expect("first") else {
            panic!("expected ident");
        };
        assert!(*first == "fn");
        assert!(flat_text(&ts).contains("x + 1"));
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let ts = lex("a\n  bc\n");
        let trees: Vec<_> = ts.iter().collect();
        assert_eq!(trees[0].span().start(), LineColumn { line: 1, column: 0 });
        assert_eq!(trees[1].span().start(), LineColumn { line: 2, column: 2 });
        assert_eq!(trees[1].span().end(), LineColumn { line: 2, column: 4 });
    }

    #[test]
    fn comments_and_strings_do_not_produce_code_tokens() {
        let ts = lex("let x = \"HashMap :: new ( )\"; // HashMap\n/* Instant::now() */ let y = 1;");
        let text = flat_text(&ts);
        assert!(!text.contains("Instant"));
        // The string literal keeps its repr but is a single Literal token.
        let literals = ts.iter().filter(|t| matches!(t, TokenTree::Literal(_))).count();
        assert_eq!(literals, 2);
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let ts = lex("/* outer /* inner */ still */ let r = r#\"quote \" inside\"#;");
        let literals: Vec<_> = ts.iter().filter(|t| matches!(t, TokenTree::Literal(_))).collect();
        assert_eq!(literals.len(), 1);
        let TokenTree::Literal(l) = literals[0] else { unreachable!() };
        assert!(l.to_string().starts_with("r#\""));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ts = lex("fn f<'a>(s: &'a str) -> char { 'x' }");
        let quotes = count_puncts(&ts, '\'');
        assert_eq!(quotes, 2, "two lifetime quotes");
        let chars: Vec<String> = collect_literals(&ts);
        assert!(chars.contains(&"'x'".to_string()));
    }

    fn count_puncts(ts: &TokenStream, ch: char) -> usize {
        let mut n = 0;
        for t in ts {
            match t {
                TokenTree::Punct(p) if p.as_char() == ch => n += 1,
                TokenTree::Group(g) => n += count_puncts(&g.stream(), ch),
                _ => {}
            }
        }
        n
    }

    fn collect_literals(ts: &TokenStream) -> Vec<String> {
        let mut out = Vec::new();
        for t in ts {
            match t {
                TokenTree::Literal(l) => out.push(l.to_string()),
                TokenTree::Group(g) => out.extend(collect_literals(&g.stream())),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn numbers_with_suffixes_floats_and_ranges() {
        let ts = lex("let a = 0.0f64; let b = 1e-3; let c = 0xFF_u8; for i in 0..10 {}");
        let lits = collect_literals(&ts);
        assert!(lits.contains(&"0.0f64".to_string()));
        assert!(lits.contains(&"1e-3".to_string()));
        assert!(lits.contains(&"0xFF_u8".to_string()));
        assert!(lits.contains(&"0".to_string()) && lits.contains(&"10".to_string()));
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        let ts = lex("let y = x.0 + z.1.2;");
        let lits = collect_literals(&ts);
        assert!(lits.contains(&"0".to_string()));
    }

    #[test]
    fn spacing_distinguishes_joint_puncts() {
        let ts = lex("a::b -> c");
        let mut spacings = Vec::new();
        for t in &ts {
            if let TokenTree::Punct(p) = t {
                spacings.push((p.as_char(), p.spacing()));
            }
        }
        assert_eq!(spacings[0], (':', Spacing::Joint));
        assert_eq!(spacings[1], (':', Spacing::Alone));
        assert_eq!(spacings[2], ('-', Spacing::Joint));
        assert_eq!(spacings[3], ('>', Spacing::Alone));
    }

    #[test]
    fn unbalanced_delimiters_error_with_position() {
        let err = "fn f() {".parse::<TokenStream>().expect_err("unbalanced");
        assert!(err.to_string().contains("line 1"));
        assert!("}".parse::<TokenStream>().is_err());
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ts = lex("let a = b\"bytes\"; let b = b'x'; let c = br#\"raw\"#;");
        let lits = collect_literals(&ts);
        assert!(lits.contains(&"b\"bytes\"".to_string()));
        assert!(lits.contains(&"b'x'".to_string()));
        assert!(lits.contains(&"br#\"raw\"#".to_string()));
    }
}
