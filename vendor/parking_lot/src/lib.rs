//! Offline-vendored subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API: a
//! panicked holder does not poison the lock, `lock()` returns the guard
//! directly. Performance characteristics are std's, which is fine for the
//! workspace's coarse-grained caches.

use std::sync::{self, TryLockError};

/// Non-poisoning mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_not_poisoned_by_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
