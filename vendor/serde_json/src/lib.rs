//! Offline-vendored, API-compatible subset of `serde_json`.
//!
//! Works over the vendored `serde`'s JSON-shaped [`Value`] data model:
//! [`to_string`] / [`to_string_pretty`] render a `Value` tree to JSON text,
//! [`from_str`] parses JSON text back into any `Deserialize` type, and
//! [`json!`] builds `Value` literals.
//!
//! Output is byte-deterministic: struct fields serialize in declaration
//! order and maps sort their keys, so equal inputs always produce equal
//! JSON — the property the workspace's seed-determinism tests compare on.

pub use serde::{Number, Value};

mod parse;

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent,
/// matching upstream `serde_json`).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::I64(x) => {
            out.push_str(&x.to_string());
        }
        Number::U64(x) => {
            out.push_str(&x.to_string());
        }
        Number::F64(x) => {
            if x.is_finite() {
                if x == x.trunc() && x.abs() < 1e16 {
                    // Keep float-ness visible, like upstream serde_json.
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                // Upstream serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build a [`Value`] from a JSON-like literal.
///
/// Supports `null`, booleans, nested arrays and objects, and arbitrary Rust
/// expressions that convert via `Into<Value>`. Values are token-munched, so
/// method-call chains and nested braces work, e.g.
/// `json!({"genome": g.genes(), "dvfs": {"compute": c}})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => { $crate::Value::Object($crate::json_internal!(@object [] $($tt)+)) };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Recursive helper behind [`json!`]. Not a public API.
///
/// Values that are JSON container literals (`{...}` / `[...]`) or `null`
/// are matched structurally *before* the general `expr` arms, because they
/// are not valid Rust expressions; everything else (method chains, numeric
/// literals, `true`/`false`) parses as a single `expr` fragment, whose
/// grammar naturally stops at the entry-separating comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- objects: accumulate (key, value) entries -----
    (@object [$($done:expr,)*]) => {
        ::std::vec::Vec::from([$($done,)*])
    };
    (@object [$($done:expr,)*] $key:literal : null , $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($done,)* (::std::string::String::from($key), $crate::Value::Null),] $($rest)*)
    };
    (@object [$($done:expr,)*] $key:literal : null) => {
        $crate::json_internal!(@object
            [$($done,)* (::std::string::String::from($key), $crate::Value::Null),])
    };
    (@object [$($done:expr,)*] $key:literal : {$($map:tt)*} , $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($done,)* (::std::string::String::from($key), $crate::json!({$($map)*})),]
            $($rest)*)
    };
    (@object [$($done:expr,)*] $key:literal : {$($map:tt)*}) => {
        $crate::json_internal!(@object
            [$($done,)* (::std::string::String::from($key), $crate::json!({$($map)*})),])
    };
    (@object [$($done:expr,)*] $key:literal : [$($arr:tt)*] , $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($done,)* (::std::string::String::from($key), $crate::json!([$($arr)*])),]
            $($rest)*)
    };
    (@object [$($done:expr,)*] $key:literal : [$($arr:tt)*]) => {
        $crate::json_internal!(@object
            [$($done,)* (::std::string::String::from($key), $crate::json!([$($arr)*])),])
    };
    (@object [$($done:expr,)*] $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($done,)* (::std::string::String::from($key), $crate::Value::from($val)),]
            $($rest)*)
    };
    (@object [$($done:expr,)*] $key:literal : $val:expr) => {
        $crate::json_internal!(@object
            [$($done,)* (::std::string::String::from($key), $crate::Value::from($val)),])
    };

    // ----- arrays: accumulate elements -----
    (@array [$($done:expr,)*]) => {
        ::std::vec::Vec::from([$($done,)*])
    };
    (@array [$($done:expr,)*] null , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($done,)* $crate::Value::Null,] $($rest)*)
    };
    (@array [$($done:expr,)*] null) => {
        $crate::json_internal!(@array [$($done,)* $crate::Value::Null,])
    };
    (@array [$($done:expr,)*] {$($map:tt)*} , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!({$($map)*}),] $($rest)*)
    };
    (@array [$($done:expr,)*] {$($map:tt)*}) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!({$($map)*}),])
    };
    (@array [$($done:expr,)*] [$($arr:tt)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!([$($arr)*]),] $($rest)*)
    };
    (@array [$($done:expr,)*] [$($arr:tt)*]) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!([$($arr)*]),])
    };
    (@array [$($done:expr,)*] $val:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($done,)* $crate::Value::from($val),] $($rest)*)
    };
    (@array [$($done:expr,)*] $val:expr) => {
        $crate::json_internal!(@array [$($done,)* $crate::Value::from($val),])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip_value() {
        let v = json!({
            "a": 1,
            "b": [true, null, 2.5],
            "c": "hi\n",
        });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[true,null,2.5],"c":"hi\n"}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({"x": [1, 2]});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"x\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn u64_seed_roundtrips_losslessly() {
        let big: u64 = u64::MAX - 1;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn floats_keep_floatness() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.125f64).unwrap(), "0.125");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{invalid").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::String("quote\" slash\\ ctrl\u{01}".to_string());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
