//! Recursive-descent JSON parser producing the vendored `serde::Value`.

use crate::Error;
use serde::{Number, Value};

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling for completeness.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bytes[self.pos..].starts_with(b"\\u") {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(cp)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(b) => {
                    // Re-assemble UTF-8 multi-byte sequences from raw bytes.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::F64(f)))
                .map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|i| Value::Number(Number::I64(i)))
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(|u| Value::Number(Number::U64(u)))
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
